//! The end-to-end link budget for one reader-antenna/tag pair.

use crate::antenna::{Pattern, Polarization};
use crate::{path_loss, Db, Dbm, Material, TagChip};
use rfid_geom::{Pose, Vec3};
use serde::{Deserialize, Serialize};

/// A reader antenna, placed in the world and driven by a reader port.
///
/// Frame convention: boresight along local `+y`, up along local `+z`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReaderAntenna {
    /// World pose of the antenna.
    pub pose: Pose,
    /// Radiation pattern.
    pub pattern: Pattern,
    /// Polarization (commercial portal antennas are circular).
    pub polarization: Polarization,
    /// Conducted transmit power at the reader port.
    pub tx_power: Dbm,
    /// One-way loss of the cable between reader and antenna.
    pub cable_loss: Db,
    /// Receiver sensitivity for decoding tag backscatter.
    pub sensitivity: Dbm,
}

impl ReaderAntenna {
    /// A typical portal setup: 6 dBi circular patch, 30 dBm (1 W, the
    /// paper's reader default and the FCC conducted limit), 1 dB of cable,
    /// -80 dBm receive sensitivity.
    #[must_use]
    pub fn portal_default(pose: Pose) -> Self {
        Self {
            pose,
            pattern: Pattern::patch(6.0),
            polarization: Polarization::Circular,
            tx_power: Dbm::new(30.0),
            cable_loss: Db::new(1.0),
            sensitivity: Dbm::new(-80.0),
        }
    }
}

/// A tag antenna placed in the world.
///
/// Frame convention: dipole axis along local `+x`, face normal along
/// local `+y`. The radiation pattern is a half-wave dipole.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagAntenna {
    /// World pose of the tag.
    pub pose: Pose,
    /// Chip electrical parameters.
    pub chip: TagChip,
}

impl TagAntenna {
    /// The tag's dipole axis in world coordinates.
    #[must_use]
    pub fn axis_world(&self) -> Vec3 {
        self.pose.transform_dir(Vec3::X)
    }

    /// The tag's face normal in world coordinates.
    #[must_use]
    pub fn normal_world(&self) -> Vec3 {
        self.pose.transform_dir(Vec3::Y)
    }
}

/// A slab of material on the line of sight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstruction {
    /// The material.
    pub material: Material,
    /// Path length through the material, in meters.
    pub thickness_m: f64,
    /// Characteristic size of the obstructing object (bounding-sphere
    /// diameter), in meters. Channel models use it to decide whether
    /// diffraction around the object can fill in its shadow.
    pub extent_m: f64,
}

impl Obstruction {
    /// Creates an obstruction whose extent equals its thickness (an
    /// isolated slab).
    #[must_use]
    pub fn new(material: Material, thickness_m: f64) -> Self {
        Self {
            material,
            thickness_m,
            extent_m: thickness_m,
        }
    }

    /// One-way bulk loss of this obstruction (uncapped).
    #[must_use]
    pub fn loss(&self) -> Db {
        self.material.penetration_loss(self.thickness_m)
    }
}

/// Link-budget calculator for a fixed carrier frequency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkBudget {
    frequency_hz: f64,
}

impl LinkBudget {
    /// Creates a calculator for the given carrier frequency.
    ///
    /// # Panics
    ///
    /// Panics if the frequency is not strictly positive.
    #[must_use]
    pub fn new(frequency_hz: f64) -> Self {
        assert!(frequency_hz > 0.0, "frequency must be positive");
        Self { frequency_hz }
    }

    /// The carrier frequency in Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Evaluates the full forward and reverse budget.
    ///
    /// `extra_loss` carries the situational one-way losses computed by the
    /// simulator: mounting detuning, inter-tag coupling, shadowing, and
    /// fast fading (gains enter as negative losses). It is applied on both
    /// the forward and reverse paths, as those mechanisms are reciprocal.
    #[must_use]
    pub fn evaluate(
        &self,
        reader: &ReaderAntenna,
        tag: &TagAntenna,
        obstructions: &[Obstruction],
        extra_loss: Db,
    ) -> LinkReport {
        let reader_pos = reader.pose.translation();
        let tag_pos = tag.pose.translation();
        let distance = reader_pos.distance(tag_pos);
        let los = (tag_pos - reader_pos).normalized().unwrap_or(Vec3::Y);

        // Antenna gains toward each other.
        let reader_gain = reader.pattern.gain(reader.pose.inverse_transform_dir(los));
        let tag_gain = tag
            .chip
            .antenna_pattern
            .gain(tag.pose.inverse_transform_dir(-los));

        // Polarization mismatch between reader field and tag antenna.
        // A dual-dipole tag captures both transverse polarization
        // components through its orthogonal elements, so it sees the
        // fixed ~3 dB combining split against any reader polarization
        // rather than the single-dipole projection loss.
        let pol_loss = if tag.chip.antenna_pattern == Pattern::DualDipole {
            Db::new(3.0)
        } else {
            let reader_axis_world = match reader.polarization {
                Polarization::Linear { axis } => reader.pose.transform_dir(axis),
                Polarization::Circular => reader.pose.transform_dir(Vec3::Z),
            };
            reader
                .polarization
                .mismatch_loss(los, reader_axis_world, tag.axis_world())
        };

        let obstruction_loss: Db = obstructions.iter().map(Obstruction::loss).sum();
        let one_way = reader_gain + tag_gain
            - pol_loss
            - path_loss(self.frequency_hz, distance)
            - obstruction_loss
            - extra_loss;

        let forward_power = reader.tx_power - reader.cable_loss + one_way;
        let backscatter_power =
            forward_power - tag.chip.backscatter_loss + one_way - reader.cable_loss;

        LinkReport {
            distance_m: distance,
            forward_power,
            forward_margin: forward_power - tag.chip.sensitivity,
            backscatter_power,
            reverse_margin: backscatter_power - reader.sensitivity,
            one_way_gain: one_way,
        }
    }
}

/// The outcome of a link-budget evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Reader-to-tag distance in meters.
    pub distance_m: f64,
    /// Power delivered to the tag chip.
    pub forward_power: Dbm,
    /// Forward power above chip sensitivity (negative: tag stays dark).
    pub forward_margin: Db,
    /// Backscatter power arriving at the reader receiver.
    pub backscatter_power: Dbm,
    /// Backscatter power above reader sensitivity.
    pub reverse_margin: Db,
    /// Total one-way gain (negative), for diagnostics.
    pub one_way_gain: Db,
}

impl LinkReport {
    /// Whether the tag powers up *and* its reply is decodable: the binding
    /// margin is the smaller of the two.
    #[must_use]
    pub fn responds(&self) -> bool {
        self.forward_margin.value() >= 0.0 && self.reverse_margin.value() >= 0.0
    }

    /// The binding (smaller) margin.
    #[must_use]
    pub fn limiting_margin(&self) -> Db {
        if self.forward_margin <= self.reverse_margin {
            self.forward_margin
        } else {
            self.reverse_margin
        }
    }

    /// Signal-to-interference margin of the reply against an interfering
    /// power level at the reader (e.g. another reader's carrier). The reply
    /// is decodable in interference when the backscatter exceeds the
    /// interferer by the required protection ratio.
    #[must_use]
    pub fn reverse_sir(&self, interference: Dbm) -> Db {
        self.backscatter_power - interference
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::Rotation;
    use std::f64::consts::FRAC_PI_2;

    const F: f64 = 915.0e6;

    fn boresight_tag(distance: f64) -> TagAntenna {
        // Tag straight ahead of the antenna (boresight +y), dipole along x
        // (broadside to the line of sight), facing back toward the antenna.
        TagAntenna {
            pose: Pose::from_translation(Vec3::new(0.0, distance, 0.0)),
            chip: TagChip::default(),
        }
    }

    #[test]
    fn close_tag_responds_far_tag_does_not() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let near = budget.evaluate(&reader, &boresight_tag(1.0), &[], Db::ZERO);
        assert!(near.responds(), "margin at 1 m: {}", near.forward_margin);
        let far = budget.evaluate(&reader, &boresight_tag(50.0), &[], Db::ZERO);
        assert!(!far.responds());
    }

    #[test]
    fn free_space_read_range_is_a_few_meters() {
        // The paper's Figure 2 shows reliable reads out to a couple of
        // meters and a gradual decline to ~9 m. The deterministic (no
        // fading) crossover should sit inside 2-9 m.
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let mut crossover = None;
        for tenths in 10..120 {
            let d = tenths as f64 / 10.0;
            if !budget
                .evaluate(&reader, &boresight_tag(d), &[], Db::ZERO)
                .responds()
            {
                crossover = Some(d);
                break;
            }
        }
        let crossover = crossover.expect("range should be finite");
        assert!(
            (2.0..=9.0).contains(&crossover),
            "deterministic range = {crossover} m"
        );
    }

    #[test]
    fn forward_link_limits_passive_tags() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let report = budget.evaluate(&reader, &boresight_tag(3.0), &[], Db::ZERO);
        assert!(
            report.forward_margin < report.reverse_margin,
            "forward {} vs reverse {}",
            report.forward_margin,
            report.reverse_margin
        );
        assert_eq!(report.limiting_margin(), report.forward_margin);
    }

    #[test]
    fn end_on_tag_loses_badly() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let broadside = budget.evaluate(&reader, &boresight_tag(1.0), &[], Db::ZERO);
        // Rotate the tag so its dipole axis points along the line of sight.
        let end_on = TagAntenna {
            pose: Pose::new(
                Vec3::new(0.0, 1.0, 0.0),
                Rotation::from_axis_angle(Vec3::Z, FRAC_PI_2).unwrap(),
            ),
            chip: TagChip::default(),
        };
        let report = budget.evaluate(&reader, &end_on, &[], Db::ZERO);
        assert!(
            report.forward_power.value() < broadside.forward_power.value() - 20.0,
            "end-on should cost tens of dB"
        );
    }

    #[test]
    fn obstructions_and_extra_losses_stack() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let clear = budget.evaluate(&reader, &boresight_tag(1.0), &[], Db::ZERO);
        let blocked = budget.evaluate(
            &reader,
            &boresight_tag(1.0),
            &[Obstruction::new(Material::Flesh, 0.3)],
            Db::new(5.0),
        );
        let expected_drop = Material::Flesh.penetration_loss(0.3) + Db::new(5.0);
        let actual_drop = clear.forward_power - blocked.forward_power;
        assert!((actual_drop.value() - expected_drop.value()).abs() < 1e-9);
        // The reverse path pays the obstruction twice (out and back).
        let reverse_drop = clear.backscatter_power - blocked.backscatter_power;
        assert!((reverse_drop.value() - 2.0 * expected_drop.value()).abs() < 1e-9);
    }

    #[test]
    fn fading_gain_can_rescue_a_marginal_link() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        // Find a distance with a slightly negative margin.
        let d = (10..100)
            .map(|t| t as f64 / 10.0)
            .find(|&d| {
                let m = budget
                    .evaluate(&reader, &boresight_tag(d), &[], Db::ZERO)
                    .forward_margin;
                m.value() < 0.0 && m.value() > -3.0
            })
            .expect("some distance has a small negative margin");
        let faded_up = budget.evaluate(&reader, &boresight_tag(d), &[], Db::new(-4.0));
        assert!(faded_up.responds(), "a +4 dB fade should rescue the link");
    }

    #[test]
    fn dual_dipole_ignores_linear_reader_polarization() {
        // A cross-polarized single dipole loses the cross-pol floor; a
        // dual-dipole tag in the same attitude captures the field through
        // its other element and pays only the ~3 dB split.
        let budget = LinkBudget::new(F);
        let mut reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        reader.polarization = Polarization::linear_vertical();
        // Tag dipole along world x (cross-polarized to the vertical reader).
        let pose = Pose::new(
            Vec3::new(0.0, 1.0, 0.0),
            Rotation::from_axis_angle(Vec3::Y, std::f64::consts::PI).unwrap(),
        );
        let single = budget.evaluate(
            &reader,
            &TagAntenna {
                pose,
                chip: TagChip::default(),
            },
            &[],
            Db::ZERO,
        );
        let dual = budget.evaluate(
            &reader,
            &TagAntenna {
                pose,
                chip: TagChip::dual_dipole(),
            },
            &[],
            Db::ZERO,
        );
        assert!(
            dual.forward_power.value() > single.forward_power.value() + 15.0,
            "dual {} vs single {}",
            dual.forward_power,
            single.forward_power
        );
        assert!(dual.responds(), "dual-dipole must survive a linear reader");
    }

    #[test]
    fn reverse_sir_compares_backscatter_to_interference() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let report = budget.evaluate(&reader, &boresight_tag(1.0), &[], Db::ZERO);
        let sir = report.reverse_sir(Dbm::new(-30.0));
        assert!((sir.value() - (report.backscatter_power.value() + 30.0)).abs() < 1e-12);
    }

    #[test]
    fn doubling_distance_costs_twelve_db_on_reverse() {
        let budget = LinkBudget::new(F);
        let reader = ReaderAntenna::portal_default(Pose::IDENTITY);
        let at1 = budget.evaluate(&reader, &boresight_tag(1.0), &[], Db::ZERO);
        let at2 = budget.evaluate(&reader, &boresight_tag(2.0), &[], Db::ZERO);
        let forward_drop = at1.forward_power - at2.forward_power;
        let reverse_drop = at1.backscatter_power - at2.backscatter_power;
        assert!((forward_drop.value() - 6.02).abs() < 0.3);
        assert!((reverse_drop.value() - 12.04).abs() < 0.6);
    }
}
