//! Tag chip (IC) parameters.

use crate::{Db, Dbm, Pattern};
use serde::{Deserialize, Serialize};

/// Electrical parameters of a passive tag IC.
///
/// Defaults model a 2006-era EPC Gen 2 chip like those in the paper's Symbol
/// tags: roughly -13 dBm power-up sensitivity and a ~6 dB backscatter
/// modulation loss. Forward-link powering is the binding constraint for
/// passive tags, exactly as in the paper's read-range measurements.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagChip {
    /// Minimum incident power required to energize the chip.
    pub sensitivity: Dbm,
    /// Loss between absorbed power and re-radiated backscatter power.
    pub backscatter_loss: Db,
    /// The tag's antenna pattern (single dipole for the paper's Symbol
    /// tags; [`Pattern::DualDipole`] for orientation-insensitive designs).
    pub antenna_pattern: Pattern,
}

impl TagChip {
    /// A chip with the given sensitivity and the default backscatter loss.
    #[must_use]
    pub fn with_sensitivity(sensitivity: Dbm) -> Self {
        Self {
            sensitivity,
            ..Self::default()
        }
    }

    /// A battery-assisted (semi-active) tag: the battery powers the chip
    /// logic, so the forward-link power-up threshold drops dramatically
    /// (about -35 dBm for 2000s-era BAP chips) while backscatter physics
    /// stay the same — the reverse link becomes the binding constraint.
    /// This is the closest passive-protocol stand-in for the paper's
    /// "experimenting with active tags" future work.
    #[must_use]
    pub fn battery_assisted() -> Self {
        Self {
            sensitivity: Dbm::new(-35.0),
            ..Self::default()
        }
    }

    /// A tag built on orthogonal dual dipoles: no orientation null, at
    /// the cost of splitting power between the two elements.
    #[must_use]
    pub fn dual_dipole() -> Self {
        Self {
            antenna_pattern: Pattern::DualDipole,
            ..Self::default()
        }
    }

    /// Applies a manufacturing-spread offset to the sensitivity (positive
    /// offsets make the chip *less* sensitive). Used for failure-injection
    /// experiments with weak tag populations.
    #[must_use]
    pub fn detuned_by(self, offset: Db) -> Self {
        Self {
            sensitivity: self.sensitivity + offset,
            ..self
        }
    }
}

impl Default for TagChip {
    fn default() -> Self {
        Self {
            sensitivity: Dbm::new(-13.0),
            backscatter_loss: Db::new(6.0),
            antenna_pattern: Pattern::HalfWaveDipole,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_2006_era_chip() {
        let chip = TagChip::default();
        assert!((chip.sensitivity.value() + 13.0).abs() < 1e-12);
        assert!(chip.backscatter_loss.value() > 0.0);
    }

    #[test]
    fn detuning_reduces_sensitivity() {
        let weak = TagChip::default().detuned_by(Db::new(3.0));
        assert!(weak.sensitivity > TagChip::default().sensitivity);
        assert_eq!(weak.backscatter_loss, TagChip::default().backscatter_loss);
    }

    #[test]
    fn with_sensitivity_overrides_only_sensitivity() {
        let chip = TagChip::with_sensitivity(Dbm::new(-18.0));
        assert_eq!(chip.sensitivity, Dbm::new(-18.0));
        assert_eq!(chip.backscatter_loss, TagChip::default().backscatter_loss);
        assert_eq!(chip.antenna_pattern, Pattern::HalfWaveDipole);
    }

    #[test]
    fn battery_assist_lowers_the_powerup_threshold() {
        let bap = TagChip::battery_assisted();
        assert!(bap.sensitivity < TagChip::default().sensitivity);
        assert_eq!(bap.backscatter_loss, TagChip::default().backscatter_loss);
    }

    #[test]
    fn dual_dipole_changes_only_the_pattern() {
        let dual = TagChip::dual_dipole();
        assert_eq!(dual.antenna_pattern, Pattern::DualDipole);
        assert_eq!(dual.sensitivity, TagChip::default().sensitivity);
    }
}
