//! Inter-tag mutual coupling.
//!
//! Dipole tags placed within a few centimeters of each other detune one
//! another: each antenna sits in the near field of its neighbors, shifting
//! its resonance and stealing incident power. The paper's Figure 4 measures
//! this directly — tags spaced 0.3-10 mm apart read poorly, and 20-40 mm is
//! needed before they behave independently. The coupling model here is the
//! standard empirical exponential in spacing, scaled by how strongly the
//! dipole axes are aligned (parallel dipoles couple most).

use crate::Db;
use rfid_geom::Vec3;
use serde::{Deserialize, Serialize};

/// The position and dipole axis of one tag, for coupling computations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagCoupling {
    /// Tag center in world coordinates.
    pub position: Vec3,
    /// Unit dipole axis in world coordinates.
    pub axis: Vec3,
}

/// Parameters of the empirical coupling model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CouplingParams {
    /// Loss from a touching, perfectly parallel neighbor (dB).
    pub peak_db: f64,
    /// Exponential decay length of the coupling with spacing (m).
    pub decay_m: f64,
    /// Fraction of the peak that remains for orthogonal dipoles, in `[0, 1]`
    /// (orthogonal dipoles still couple weakly through their feed loops).
    pub cross_axis_fraction: f64,
    /// Spacing beyond which neighbors are ignored entirely (m).
    pub cutoff_m: f64,
    /// Cap on the total coupling loss from all neighbors (dB).
    pub max_total_db: f64,
}

impl Default for CouplingParams {
    /// Defaults calibrated against the paper's Figure 4: heavy interference
    /// at 0.3-10 mm spacing, near-independence by 20-40 mm.
    fn default() -> Self {
        Self {
            peak_db: 28.0,
            decay_m: 0.009,
            cross_axis_fraction: 0.35,
            cutoff_m: 0.10,
            max_total_db: 40.0,
        }
    }
}

/// Total detuning loss inflicted on `geometry[own]` by every other entry
/// of `geometry`.
///
/// The population is passed as one slice plus the index of the victim tag
/// — rather than a pre-filtered neighbor list — so the caller does not
/// have to allocate per evaluation; the simulator's hot loop hands the
/// same shared geometry slice to every tag in a round. Each neighbor
/// contributes `peak * alignment * exp(-gap / decay)` where `gap` is the
/// *edge-to-edge* spacing (center distance minus `tag_extent`) and
/// `alignment` interpolates between `cross_axis_fraction` and 1 with the
/// squared cosine of the axis angle. Contributions add in decibels
/// (multiplicative power loss), in slice order, and are capped at
/// `max_total_db`.
///
/// `tag_extent_m` is the center-to-center distance at which two parallel
/// tags touch (the paper's tags are stacked face-to-face, so this is
/// essentially the tag thickness, near zero).
///
/// # Examples
///
/// ```
/// use rfid_geom::Vec3;
/// use rfid_phys::{coupling_loss, CouplingParams, TagCoupling};
///
/// let params = CouplingParams::default();
/// let me = TagCoupling { position: Vec3::ZERO, axis: Vec3::X };
/// let close = TagCoupling { position: Vec3::new(0.0, 0.004, 0.0), axis: Vec3::X };
/// let far = TagCoupling { position: Vec3::new(0.0, 0.04, 0.0), axis: Vec3::X };
/// let near_loss = coupling_loss(&[me, close], 0, 0.0, &params);
/// let far_loss = coupling_loss(&[me, far], 0, 0.0, &params);
/// assert!(near_loss.value() > 15.0);
/// assert!(far_loss.value() < 1.0);
/// ```
///
/// # Panics
///
/// Panics if `own` is out of range for `geometry`.
#[must_use]
pub fn coupling_loss(
    geometry: &[TagCoupling],
    own: usize,
    tag_extent_m: f64,
    params: &CouplingParams,
) -> Db {
    let me = &geometry[own];
    let mut total = 0.0;
    for (i, other) in geometry.iter().enumerate() {
        if i == own {
            continue;
        }
        let gap = (me.position.distance(other.position) - tag_extent_m).max(0.0);
        if gap > params.cutoff_m {
            continue;
        }
        let alignment = match (me.axis.normalized(), other.axis.normalized()) {
            (Some(a), Some(b)) => {
                let cos2 = a.dot(b).powi(2);
                params.cross_axis_fraction + (1.0 - params.cross_axis_fraction) * cos2
            }
            _ => params.cross_axis_fraction,
        };
        total += params.peak_db * alignment * (-gap / params.decay_m).exp();
    }
    Db::new(total.min(params.max_total_db))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tag(x: f64, y: f64, axis: Vec3) -> TagCoupling {
        TagCoupling {
            position: Vec3::new(x, y, 0.0),
            axis,
        }
    }

    /// Loss on `own` from `neighbors`, phrased in the pre-slice API for
    /// test readability.
    fn loss_on(own: TagCoupling, neighbors: &[TagCoupling], extent: f64) -> Db {
        let mut geometry = vec![own];
        geometry.extend_from_slice(neighbors);
        coupling_loss(&geometry, 0, extent, &CouplingParams::default())
    }

    #[test]
    fn no_neighbors_no_loss() {
        assert_eq!(loss_on(tag(0.0, 0.0, Vec3::X), &[], 0.0), Db::ZERO);
    }

    #[test]
    fn skip_index_excludes_only_the_victim() {
        // The victim's own entry never contributes, wherever it sits.
        let params = CouplingParams::default();
        let geometry = [
            tag(0.0, 0.0, Vec3::X),
            tag(0.0, 0.005, Vec3::X),
            tag(0.0, 0.010, Vec3::X),
        ];
        let middle = coupling_loss(&geometry, 1, 0.0, &params);
        let expected = loss_on(geometry[1], &[geometry[0], geometry[2]], 0.0);
        assert_eq!(middle, expected);
    }

    #[test]
    fn paper_spacings_reproduce_the_threshold() {
        // Figure 4: 0.3 mm and 4 mm spacing interfere badly; 20-40 mm is the
        // minimum safe spacing. A single-digit-dB link margin dies under
        // >10 dB coupling loss and survives a couple of dB.
        let me = tag(0.0, 0.0, Vec3::X);
        let loss_at = |mm: f64| loss_on(me, &[tag(0.0, mm / 1000.0, Vec3::X)], 0.0).value();
        assert!(loss_at(0.3) > 20.0, "0.3 mm: {}", loss_at(0.3));
        assert!(loss_at(4.0) > 15.0, "4 mm: {}", loss_at(4.0));
        assert!(loss_at(20.0) < 4.0, "20 mm: {}", loss_at(20.0));
        assert!(loss_at(40.0) < 0.5, "40 mm: {}", loss_at(40.0));
    }

    #[test]
    fn parallel_couples_more_than_orthogonal() {
        let me = tag(0.0, 0.0, Vec3::X);
        let parallel = loss_on(me, &[tag(0.0, 0.01, Vec3::X)], 0.0);
        let orthogonal = loss_on(me, &[tag(0.0, 0.01, Vec3::Z)], 0.0);
        assert!(parallel.value() > orthogonal.value());
        assert!(
            orthogonal.value() > 0.0,
            "orthogonal tags still couple a little"
        );
    }

    #[test]
    fn neighbors_beyond_cutoff_are_ignored() {
        let params = CouplingParams::default();
        let me = tag(0.0, 0.0, Vec3::X);
        let far = tag(0.0, params.cutoff_m + 0.01, Vec3::X);
        assert_eq!(loss_on(me, &[far], 0.0), Db::ZERO);
    }

    #[test]
    fn total_loss_is_capped() {
        let params = CouplingParams::default();
        let me = tag(0.0, 0.0, Vec3::X);
        let swarm: Vec<TagCoupling> = (0..20)
            .map(|i| tag(0.0, 0.0003 * (i + 1) as f64, Vec3::X))
            .collect();
        let loss = loss_on(me, &swarm, 0.0);
        assert!((loss.value() - params.max_total_db).abs() < 1e-9);
    }

    #[test]
    fn tag_extent_reduces_effective_gap() {
        let me = tag(0.0, 0.0, Vec3::X);
        let other = [tag(0.0, 0.02, Vec3::X)];
        let thin = loss_on(me, &other, 0.0);
        let thick = loss_on(me, &other, 0.015);
        assert!(thick.value() > thin.value());
    }

    proptest! {
        #[test]
        fn loss_is_monotone_decreasing_in_spacing(s1 in 0.0005f64..0.09, s2 in 0.0005f64..0.09) {
            let (near, far) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
            let me = tag(0.0, 0.0, Vec3::X);
            let near_loss = loss_on(me, &[tag(0.0, near, Vec3::X)], 0.0);
            let far_loss = loss_on(me, &[tag(0.0, far, Vec3::X)], 0.0);
            prop_assert!(near_loss >= far_loss);
        }

        #[test]
        fn more_neighbors_never_reduce_loss(n in 1usize..8) {
            let me = tag(0.0, 0.0, Vec3::X);
            let neighbors: Vec<TagCoupling> =
                (0..n).map(|i| tag(0.0, 0.01 * (i + 1) as f64, Vec3::X)).collect();
            let fewer = loss_on(me, &neighbors[..n - 1], 0.0);
            let more = loss_on(me, &neighbors, 0.0);
            prop_assert!(more >= fewer);
        }
    }
}
