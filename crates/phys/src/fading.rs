//! Shadowing and small-scale fading.
//!
//! Two stochastic components sit on top of the deterministic link budget:
//!
//! * **Log-normal shadowing** — slow, per-pass gain offsets from the large
//!   scale environment (cart load, exact mounting, room clutter). Sampled
//!   once per (tag, pass) and *shared* across a reader's antennas, which is
//!   what makes antenna-level redundancy fall short of the independence
//!   model in the paper's Table 3.
//! * **Rician fast fading** — multipath self-interference that decorrelates
//!   roughly every half wavelength of motion. [`FadingProcess`] exposes it
//!   as a deterministic piecewise-constant function of time, so that a tag
//!   moving through a portal sees a realistic, finite number of independent
//!   fades rather than a fresh draw per protocol slot.

use crate::Db;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Log-normal shadowing with the given standard deviation in dB.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Shadowing {
    /// Standard deviation of the gain offset, in dB.
    pub sigma_db: f64,
}

impl Shadowing {
    /// Creates a shadowing model.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_db` is negative.
    #[must_use]
    pub fn new(sigma_db: f64) -> Self {
        assert!(sigma_db >= 0.0, "sigma must be non-negative");
        Self { sigma_db }
    }

    /// Draws one shadowing offset (zero-mean normal in dB).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Db {
        Db::new(self.sigma_db * standard_normal(rng))
    }
}

/// A deterministic Rician fast-fading process, piecewise-constant over
/// coherence intervals.
///
/// The value at time `t` depends only on the seed and the interval index
/// `floor(t / coherence_s)`, so simulations are reproducible and two
/// queries inside one coherence interval see the same fade — the property
/// that keeps a marginal tag from being "saved" by thousands of protocol
/// retries within one fade.
///
/// # Examples
///
/// ```
/// use rfid_phys::FadingProcess;
///
/// // 1 m/s motion at 915 MHz decorrelates about every 0.16 s.
/// let fading = FadingProcess::new(6.0, 0.16, 42);
/// let a = fading.value_at(0.05);
/// let b = fading.value_at(0.10);      // same coherence interval
/// let c = fading.value_at(0.30);      // different interval
/// assert_eq!(a, b);
/// assert_ne!(a, c);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FadingProcess {
    /// Rician K-factor in dB (ratio of line-of-sight to scattered power).
    pub k_factor_db: f64,
    /// Coherence time in seconds.
    pub coherence_s: f64,
    /// Process seed; different links should use different seeds.
    pub seed: u64,
}

impl FadingProcess {
    /// Creates a fading process.
    ///
    /// # Panics
    ///
    /// Panics if `coherence_s` is not strictly positive.
    #[must_use]
    pub fn new(k_factor_db: f64, coherence_s: f64, seed: u64) -> Self {
        assert!(coherence_s > 0.0, "coherence time must be positive");
        Self {
            k_factor_db,
            coherence_s,
            seed,
        }
    }

    /// Coherence time for motion at `speed_mps` and carrier `frequency_hz`
    /// (half-wavelength decorrelation distance).
    ///
    /// # Panics
    ///
    /// Panics if the speed is not strictly positive.
    #[must_use]
    pub fn coherence_from_speed(speed_mps: f64, frequency_hz: f64) -> f64 {
        assert!(speed_mps > 0.0, "speed must be positive");
        crate::wavelength(frequency_hz) / 2.0 / speed_mps
    }

    /// The fading gain (dB, usually negative) at time `t` seconds.
    #[must_use]
    pub fn value_at(&self, t: f64) -> Db {
        let interval = (t / self.coherence_s).floor() as i64;
        self.value_in_interval(interval)
    }

    /// The fading gain in a specific coherence interval.
    #[must_use]
    pub fn value_in_interval(&self, interval: i64) -> Db {
        let mut state = splitmix(self.seed ^ (interval as u64).wrapping_mul(0x9E37_79B9));
        let u1 = next_unit(&mut state);
        let u2 = next_unit(&mut state);
        let u3 = next_unit(&mut state);
        let u4 = next_unit(&mut state);
        Db::new(rician_power_db(self.k_factor_db, u1, u2, u3, u4))
    }

    /// Number of independent fades in a window of `duration_s` seconds.
    #[must_use]
    pub fn independent_fades(&self, duration_s: f64) -> usize {
        (duration_s / self.coherence_s).ceil().max(1.0) as usize
    }
}

/// Rician power fade relative to the mean, in dB, from four uniforms.
///
/// The complex envelope is `nu + X + jY` with `X, Y ~ N(0, sigma^2)`,
/// `K = nu^2 / (2 sigma^2)`, normalized so the mean power is one.
fn rician_power_db(k_factor_db: f64, u1: f64, u2: f64, u3: f64, u4: f64) -> f64 {
    let k = 10f64.powf(k_factor_db / 10.0);
    let sigma = (1.0 / (2.0 * (k + 1.0))).sqrt();
    let nu = (k / (k + 1.0)).sqrt();
    let x = nu + sigma * box_muller(u1, u2);
    let y = sigma * box_muller(u3, u4);
    let power = x * x + y * y;
    10.0 * power.max(1e-12).log10()
}

fn box_muller(u1: f64, u2: f64) -> f64 {
    let r = (-2.0 * u1.max(1e-12).ln()).sqrt();
    r * (2.0 * std::f64::consts::PI * u2).cos()
}

fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    box_muller(rng.gen::<f64>(), rng.gen::<f64>())
}

fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn next_unit(state: &mut u64) -> f64 {
    *state = splitmix(*state);
    (*state >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shadowing_is_zero_mean_with_right_spread() {
        let model = Shadowing::new(4.0);
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| model.sample(&mut rng).value())
            .collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!(mean.abs() < 0.15, "mean = {mean}");
        assert!((var.sqrt() - 4.0).abs() < 0.15, "std = {}", var.sqrt());
    }

    #[test]
    fn zero_sigma_is_deterministic() {
        let model = Shadowing::new(0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(model.sample(&mut rng), Db::ZERO);
    }

    #[test]
    fn fading_is_deterministic_per_seed() {
        let a = FadingProcess::new(6.0, 0.1, 99);
        let b = FadingProcess::new(6.0, 0.1, 99);
        for i in 0..10 {
            assert_eq!(a.value_in_interval(i), b.value_in_interval(i));
        }
        let c = FadingProcess::new(6.0, 0.1, 100);
        assert_ne!(a.value_in_interval(0), c.value_in_interval(0));
    }

    #[test]
    fn fading_is_constant_within_an_interval() {
        let f = FadingProcess::new(6.0, 0.25, 5);
        assert_eq!(f.value_at(0.01), f.value_at(0.24));
        assert_ne!(f.value_at(0.01), f.value_at(0.26));
    }

    #[test]
    fn mean_fade_power_is_near_unity() {
        let f = FadingProcess::new(6.0, 1.0, 3);
        let mean_power: f64 = (0..20_000)
            .map(|i| Db::new(f.value_in_interval(i).value()).ratio())
            .sum::<f64>()
            / 20_000.0;
        assert!((mean_power - 1.0).abs() < 0.05, "mean power = {mean_power}");
    }

    #[test]
    fn high_k_fades_less_deeply() {
        let spread = |k: f64| {
            let f = FadingProcess::new(k, 1.0, 11);
            let vals: Vec<f64> = (0..5000).map(|i| f.value_in_interval(i).value()).collect();
            let mean = vals.iter().sum::<f64>() / vals.len() as f64;
            (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
        };
        assert!(
            spread(12.0) < spread(0.0),
            "LOS-dominated fading is shallower"
        );
    }

    #[test]
    fn coherence_from_speed_matches_half_wavelength() {
        let coherence = FadingProcess::coherence_from_speed(1.0, 915.0e6);
        assert!((coherence - 0.1638).abs() < 1e-3, "coherence = {coherence}");
        // Faster motion decorrelates sooner.
        assert!(FadingProcess::coherence_from_speed(2.0, 915.0e6) < coherence);
    }

    #[test]
    fn independent_fades_counts_intervals() {
        let f = FadingProcess::new(6.0, 0.16, 0);
        assert_eq!(f.independent_fades(0.01), 1);
        assert_eq!(f.independent_fades(1.6), 10);
    }

    #[test]
    #[should_panic(expected = "coherence time must be positive")]
    fn zero_coherence_panics() {
        let _ = FadingProcess::new(6.0, 0.0, 0);
    }
}
