//! Decibel quantity newtypes.
//!
//! Two distinct types keep absolute power levels ([`Dbm`]) from being
//! confused with relative gains/losses ([`Db`]) — adding two absolute powers
//! in decibel space is a bug the type system rules out.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A relative power ratio in decibels (gain when positive, loss when
/// negative, by convention of the using site).
///
/// # Examples
///
/// ```
/// use rfid_phys::{Db, Dbm};
///
/// let tx = Dbm::new(30.0);
/// let path = Db::new(-41.7);
/// let gain = Db::new(6.0);
/// let rx = tx + path + gain;
/// assert!((rx.value() - (-5.7)).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(f64);

impl Db {
    /// Zero decibels (unity ratio).
    pub const ZERO: Db = Db(0.0);

    /// Creates a ratio from a decibel value.
    #[must_use]
    pub const fn new(db: f64) -> Self {
        Db(db)
    }

    /// The decibel value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts a linear power ratio to decibels.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive.
    #[must_use]
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(ratio > 0.0, "power ratio must be positive");
        Db(10.0 * ratio.log10())
    }

    /// Converts to a linear power ratio.
    #[must_use]
    pub fn ratio(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Clamps the decibel value into `[min, max]`.
    #[must_use]
    pub fn clamp(self, min: f64, max: f64) -> Self {
        Db(self.0.clamp(min, max))
    }
}

impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}

impl AddAssign for Db {
    fn add_assign(&mut self, rhs: Db) {
        self.0 += rhs.0;
    }
}

impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}

impl SubAssign for Db {
    fn sub_assign(&mut self, rhs: Db) {
        self.0 -= rhs.0;
    }
}

impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}

impl Mul<f64> for Db {
    type Output = Db;
    fn mul(self, s: f64) -> Db {
        Db(self.0 * s)
    }
}

impl Sum for Db {
    fn sum<I: Iterator<Item = Db>>(iter: I) -> Db {
        Db(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dB", self.0)
    }
}

/// An absolute power level in decibel-milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dbm(f64);

impl Dbm {
    /// Creates a power level from a dBm value.
    #[must_use]
    pub const fn new(dbm: f64) -> Self {
        Dbm(dbm)
    }

    /// The dBm value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// Converts milliwatts to dBm.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not strictly positive.
    #[must_use]
    pub fn from_milliwatts(mw: f64) -> Self {
        assert!(mw > 0.0, "power must be positive");
        Dbm(10.0 * mw.log10())
    }

    /// Converts to milliwatts.
    #[must_use]
    pub fn milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
}

/// Applying a gain/loss to an absolute level yields an absolute level.
impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.value())
    }
}

impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.value())
    }
}

/// The difference of two absolute levels is a ratio.
impl Sub for Dbm {
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db::new(self.0 - rhs.0)
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn one_watt_is_30_dbm() {
        assert!((Dbm::from_milliwatts(1000.0).value() - 30.0).abs() < 1e-12);
        assert!((Dbm::new(30.0).milliwatts() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn three_db_is_a_factor_of_two() {
        assert!((Db::new(3.0103).ratio() - 2.0).abs() < 1e-3);
        assert!((Db::from_ratio(2.0).value() - 3.0103).abs() < 1e-3);
    }

    #[test]
    fn level_arithmetic() {
        let margin = (Dbm::new(-5.0) + Db::new(2.0)) - Dbm::new(-13.0);
        assert!((margin.value() - 10.0).abs() < 1e-12);
        let attenuated = Dbm::new(0.0) - Db::new(7.0);
        assert!((attenuated.value() + 7.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_losses() {
        let total: Db = [Db::new(1.0), Db::new(2.5), Db::new(-0.5)]
            .into_iter()
            .sum();
        assert!((total.value() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Db::new(-3.25).to_string(), "-3.2 dB");
        assert_eq!(Dbm::new(30.0).to_string(), "30.0 dBm");
    }

    #[test]
    #[should_panic(expected = "power must be positive")]
    fn from_milliwatts_validates() {
        let _ = Dbm::from_milliwatts(0.0);
    }

    proptest! {
        #[test]
        fn db_ratio_round_trip(db in -100.0f64..100.0) {
            let round = Db::from_ratio(Db::new(db).ratio()).value();
            prop_assert!((round - db).abs() < 1e-9);
        }

        #[test]
        fn dbm_milliwatt_round_trip(dbm in -120.0f64..60.0) {
            let round = Dbm::from_milliwatts(Dbm::new(dbm).milliwatts()).value();
            prop_assert!((round - dbm).abs() < 1e-9);
        }

        #[test]
        fn adding_db_adds_linearly(dbm in -50.0f64..50.0, db in -50.0f64..50.0) {
            let out = Dbm::new(dbm) + Db::new(db);
            let linear = Dbm::new(dbm).milliwatts() * Db::new(db).ratio();
            prop_assert!((out.milliwatts() - linear).abs() / linear < 1e-9);
        }
    }
}
