//! Physical-layer models for passive UHF RFID links.
//!
//! This crate reproduces, in simulation, every physical factor the DSN 2007
//! measurement study identifies as driving read reliability:
//!
//! * **tag-antenna distance** — Friis free-space path loss ([`path_loss`]),
//! * **tag orientation** — dipole radiation pattern and polarization
//!   mismatch ([`Pattern`], [`Polarization`]),
//! * **inter-tag distance** — near-field mutual-coupling detuning
//!   ([`coupling_loss`]),
//! * **materials around the tag** — through-material attenuation
//!   ([`Material`]) and metal/body *backing* (grounding-plate) loss
//!   ([`mounting_loss`]),
//! * **multipath** — log-normal shadowing and Rician fast fading with a
//!   motion-derived coherence time ([`Shadowing`], [`FadingProcess`]).
//!
//! The [`LinkBudget`] combines all of these into forward (reader-to-tag
//! powering) and reverse (backscatter decode) margins; a passive tag
//! responds only when both are non-negative.
//!
//! # Examples
//!
//! ```
//! use rfid_geom::{Pose, Vec3};
//! use rfid_phys::{
//!     Dbm, LinkBudget, Pattern, Polarization, ReaderAntenna, TagAntenna, TagChip,
//! };
//!
//! let reader = ReaderAntenna {
//!     pose: Pose::IDENTITY, // boresight along +y
//!     pattern: Pattern::patch(6.0),
//!     polarization: Polarization::Circular,
//!     tx_power: Dbm::new(30.0),
//!     cable_loss: rfid_phys::Db::new(1.0),
//!     sensitivity: Dbm::new(-80.0),
//! };
//! let tag = TagAntenna {
//!     pose: Pose::from_translation(Vec3::new(0.0, 1.0, 0.0)),
//!     chip: TagChip::default(),
//! };
//! let budget = LinkBudget::new(915.0e6);
//! let report = budget.evaluate(&reader, &tag, &[], rfid_phys::Db::ZERO);
//! assert!(report.responds(), "a tag 1 m away on boresight should respond");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod antenna;
mod chip;
mod coupling;
mod fading;
mod link;
mod materials;
mod mounting;
mod pathloss;
mod units;

pub use antenna::{Pattern, Polarization};
pub use chip::TagChip;
pub use coupling::{coupling_loss, CouplingParams, TagCoupling};
pub use fading::{FadingProcess, Shadowing};
pub use link::{LinkBudget, LinkReport, Obstruction, ReaderAntenna, TagAntenna};
pub use materials::Material;
pub use mounting::{mounting_loss, Mounting};
pub use pathloss::{path_loss, wavelength, SPEED_OF_LIGHT};
pub use units::{Db, Dbm};
