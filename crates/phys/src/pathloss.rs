//! Free-space propagation.

use crate::Db;

/// Speed of light in vacuum, m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Wavelength in meters at the given frequency.
///
/// # Panics
///
/// Panics if `frequency_hz` is not strictly positive.
///
/// # Examples
///
/// ```
/// let lambda = rfid_phys::wavelength(915.0e6);
/// assert!((lambda - 0.3276).abs() < 1e-3); // about 33 cm in the US UHF band
/// ```
#[must_use]
pub fn wavelength(frequency_hz: f64) -> f64 {
    assert!(frequency_hz > 0.0, "frequency must be positive");
    SPEED_OF_LIGHT / frequency_hz
}

/// One-way free-space path loss (Friis) as a positive decibel quantity.
///
/// `20 log10(4 pi d / lambda)`. Distances below a centimeter are clamped to
/// avoid the near-field singularity; the far-field formula is not meaningful
/// there anyway.
///
/// # Panics
///
/// Panics if `frequency_hz` is not strictly positive or `distance_m` is
/// negative.
///
/// # Examples
///
/// ```
/// use rfid_phys::path_loss;
///
/// let at_1m = path_loss(915.0e6, 1.0);
/// let at_2m = path_loss(915.0e6, 2.0);
/// // Doubling the distance costs 6 dB.
/// assert!((at_2m.value() - at_1m.value() - 6.02).abs() < 0.01);
/// ```
#[must_use]
pub fn path_loss(frequency_hz: f64, distance_m: f64) -> Db {
    assert!(distance_m >= 0.0, "distance must be non-negative");
    let lambda = wavelength(frequency_hz);
    let d = distance_m.max(0.01);
    Db::new(20.0 * (4.0 * std::f64::consts::PI * d / lambda).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn known_loss_at_uhf() {
        // FSPL at 915 MHz, 1 m is about 31.7 dB.
        let loss = path_loss(915.0e6, 1.0);
        assert!((loss.value() - 31.7).abs() < 0.1, "loss = {loss}");
    }

    #[test]
    fn near_field_is_clamped() {
        assert_eq!(path_loss(915.0e6, 0.0), path_loss(915.0e6, 0.01));
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn wavelength_validates() {
        let _ = wavelength(0.0);
    }

    proptest! {
        #[test]
        fn loss_is_monotone_in_distance(d1 in 0.02f64..100.0, d2 in 0.02f64..100.0) {
            let (near, far) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(path_loss(915.0e6, near) <= path_loss(915.0e6, far));
        }

        #[test]
        fn loss_is_monotone_in_frequency(f1 in 100.0e6f64..10.0e9, f2 in 100.0e6f64..10.0e9) {
            let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
            prop_assert!(path_loss(lo, 5.0) <= path_loss(hi, 5.0));
        }

        #[test]
        fn inverse_square_law(d in 0.1f64..50.0) {
            let one = path_loss(915.0e6, d);
            let ten = path_loss(915.0e6, d * 10.0);
            prop_assert!((ten.value() - one.value() - 20.0).abs() < 1e-9);
        }
    }
}
