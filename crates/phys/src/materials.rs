//! Bulk material attenuation at UHF.
//!
//! Per-meter attenuation constants are representative values for the
//! 860-960 MHz band. Exact numbers vary with density and water content; the
//! reproduction only needs the ordering the paper relies on: cardboard and
//! plastic are nearly transparent, bodies and liquids are strongly lossy,
//! and metal is effectively opaque.

use crate::Db;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A bulk material a line of sight can pass through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Material {
    /// Free space / air: no attenuation.
    Air,
    /// Corrugated cardboard packaging.
    Cardboard,
    /// Solid plastic.
    Plastic,
    /// Wood (pallets).
    Wood,
    /// Human or animal tissue — the dominant blocker in the paper's human
    /// tracking experiments.
    Flesh,
    /// Water-based liquids (bottled goods).
    Liquid,
    /// Sheet or bulk metal — blocks the signal and, when close behind a tag,
    /// detunes it (see [`crate::mounting_loss`]).
    Metal,
}

impl Material {
    /// One-way attenuation per meter of material thickness.
    #[must_use]
    pub fn attenuation_per_meter(&self) -> Db {
        let db_per_m = match self {
            Material::Air => 0.0,
            // Averaged over a carton: thin corrugate walls + air + packing
            // material, not solid pressed board.
            Material::Cardboard => 1.5,
            Material::Plastic => 6.0,
            Material::Wood => 12.0,
            Material::Flesh => 90.0,
            Material::Liquid => 70.0,
            Material::Metal => 2000.0,
        };
        Db::new(db_per_m)
    }

    /// Additional fixed loss at each air-material interface (reflection).
    #[must_use]
    pub fn surface_loss(&self) -> Db {
        let db = match self {
            Material::Air => 0.0,
            Material::Cardboard => 0.1,
            Material::Plastic => 0.3,
            Material::Wood => 0.5,
            Material::Flesh => 3.0,
            Material::Liquid => 3.0,
            Material::Metal => 20.0,
        };
        Db::new(db)
    }

    /// Total one-way penetration loss through the given thickness.
    ///
    /// # Panics
    ///
    /// Panics if `thickness_m` is negative.
    #[must_use]
    pub fn penetration_loss(&self, thickness_m: f64) -> Db {
        assert!(thickness_m >= 0.0, "thickness must be non-negative");
        if thickness_m == 0.0 {
            return Db::ZERO;
        }
        self.attenuation_per_meter() * thickness_m + self.surface_loss()
    }

    /// Whether the material is a good conductor (reflects rather than
    /// absorbs; relevant for backing detuning and multipath bonuses).
    #[must_use]
    pub fn is_conductor(&self) -> bool {
        matches!(self, Material::Metal)
    }

    /// Whether the material significantly reflects UHF energy, making nearby
    /// objects of it act as scatterers (the paper's "reflections off the
    /// farther subject").
    #[must_use]
    pub fn is_reflective(&self) -> bool {
        matches!(self, Material::Metal | Material::Flesh | Material::Liquid)
    }
}

impl fmt::Display for Material {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Material::Air => "air",
            Material::Cardboard => "cardboard",
            Material::Plastic => "plastic",
            Material::Wood => "wood",
            Material::Flesh => "flesh",
            Material::Liquid => "liquid",
            Material::Metal => "metal",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Material; 7] = [
        Material::Air,
        Material::Cardboard,
        Material::Plastic,
        Material::Wood,
        Material::Flesh,
        Material::Liquid,
        Material::Metal,
    ];

    #[test]
    fn air_is_transparent() {
        assert_eq!(Material::Air.penetration_loss(10.0), Db::ZERO);
    }

    #[test]
    fn ordering_matches_physics() {
        let loss = |m: Material| m.penetration_loss(0.1).value();
        assert!(loss(Material::Cardboard) < loss(Material::Wood));
        assert!(loss(Material::Wood) < loss(Material::Flesh));
        assert!(loss(Material::Flesh) < loss(Material::Metal));
    }

    #[test]
    fn a_torso_thickness_of_flesh_blocks_the_link() {
        // 30 cm of tissue: tens of dB — enough to defeat a passive tag's
        // single-digit link margins, matching the paper's 10% far-side reads.
        let loss = Material::Flesh.penetration_loss(0.3);
        assert!(loss.value() > 25.0, "loss = {loss}");
    }

    #[test]
    fn metal_is_effectively_opaque() {
        let loss = Material::Metal.penetration_loss(0.001);
        assert!(loss.value() > 20.0);
    }

    #[test]
    fn zero_thickness_is_free() {
        for m in ALL {
            assert_eq!(m.penetration_loss(0.0), Db::ZERO);
        }
    }

    #[test]
    fn losses_are_monotone_in_thickness() {
        for m in ALL {
            assert!(m.penetration_loss(0.2) >= m.penetration_loss(0.1));
        }
    }

    #[test]
    fn conductors_and_reflectors() {
        assert!(Material::Metal.is_conductor());
        assert!(!Material::Flesh.is_conductor());
        assert!(Material::Flesh.is_reflective());
        assert!(!Material::Cardboard.is_reflective());
    }

    #[test]
    #[should_panic(expected = "thickness must be non-negative")]
    fn negative_thickness_panics() {
        let _ = Material::Wood.penetration_loss(-0.1);
    }

    #[test]
    fn display_is_lowercase() {
        for m in ALL {
            let s = m.to_string();
            assert_eq!(s, s.to_lowercase());
        }
    }
}
