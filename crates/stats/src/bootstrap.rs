//! Bootstrap resampling for small-sample interval estimates.
//!
//! The paper's cells use as few as 10-12 repetitions; the percentile
//! bootstrap gives distribution-free uncertainty bands for such samples.

use crate::proportion::Interval;
use crate::StatsError;

/// Configuration for bootstrap interval estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of bootstrap resamples to draw.
    pub resamples: usize,
    /// Two-sided confidence level in `(0, 1)`.
    pub confidence: f64,
    /// Seed for the deterministic resampling RNG.
    pub seed: u64,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        Self {
            resamples: 2000,
            confidence: 0.95,
            seed: 0x005E_ED0F_B007,
        }
    }
}

/// Percentile-bootstrap confidence interval for the sample mean.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty sample and
/// [`StatsError::OutOfRange`] for a confidence level outside `(0, 1)` or a
/// zero resample count.
///
/// # Examples
///
/// ```
/// use rfid_stats::{bootstrap_mean_interval, BootstrapConfig};
///
/// let data = [18.0, 19.0, 20.0, 20.0, 17.0, 20.0];
/// let ci = bootstrap_mean_interval(&data, &BootstrapConfig::default())?;
/// assert!(ci.low <= 19.0 && 19.0 <= ci.high);
/// # Ok::<(), rfid_stats::StatsError>(())
/// ```
pub fn bootstrap_mean_interval(
    samples: &[f64],
    config: &BootstrapConfig,
) -> Result<Interval, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0 < config.confidence && config.confidence < 1.0) {
        return Err(StatsError::OutOfRange {
            value: format!("{}", config.confidence),
        });
    }
    if config.resamples == 0 {
        return Err(StatsError::OutOfRange {
            value: "0 resamples".to_owned(),
        });
    }

    let n = samples.len();
    let mut rng = SplitMix64::new(config.seed);
    let mut means = Vec::with_capacity(config.resamples);
    for _ in 0..config.resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            let idx = (rng.next_u64() % n as u64) as usize;
            sum += samples[idx];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.partial_cmp(b).expect("means are finite"));
    let alpha = (1.0 - config.confidence) / 2.0;
    Ok(Interval {
        low: crate::quantile::quantile_sorted(&means, alpha),
        high: crate::quantile::quantile_sorted(&means, 1.0 - alpha),
    })
}

/// SplitMix64: a tiny, high-quality, deterministic PRNG.
///
/// Kept private to this crate so the statistics layer has no dependency on
/// the `rand` ecosystem (the simulator uses `rand` with explicit seeding).
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0];
        let cfg = BootstrapConfig::default();
        let a = bootstrap_mean_interval(&data, &cfg).unwrap();
        let b = bootstrap_mean_interval(&data, &cfg).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let data = [1.0, 5.0, 2.0, 8.0, 3.0, 9.0, 0.5];
        let a = bootstrap_mean_interval(&data, &BootstrapConfig::default()).unwrap();
        let b = bootstrap_mean_interval(
            &data,
            &BootstrapConfig {
                seed: 42,
                ..BootstrapConfig::default()
            },
        )
        .unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn constant_sample_gives_degenerate_interval() {
        let ci = bootstrap_mean_interval(&[4.0; 10], &BootstrapConfig::default()).unwrap();
        assert_eq!(ci.low, 4.0);
        assert_eq!(ci.high, 4.0);
    }

    #[test]
    fn validation_errors() {
        let cfg = BootstrapConfig::default();
        assert_eq!(
            bootstrap_mean_interval(&[], &cfg),
            Err(StatsError::EmptyInput)
        );
        assert!(bootstrap_mean_interval(
            &[1.0],
            &BootstrapConfig {
                confidence: 1.5,
                ..cfg
            }
        )
        .is_err());
        assert!(bootstrap_mean_interval(
            &[1.0],
            &BootstrapConfig {
                resamples: 0,
                ..cfg
            }
        )
        .is_err());
    }

    #[test]
    fn splitmix_reference_sequence_is_stable() {
        let mut rng = SplitMix64::new(1234567);
        let first = rng.next_u64();
        let second = rng.next_u64();
        let mut rng2 = SplitMix64::new(1234567);
        assert_eq!(rng2.next_u64(), first);
        assert_eq!(rng2.next_u64(), second);
        assert_ne!(first, second);
    }

    proptest! {
        #[test]
        fn interval_brackets_sample_range(data in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
            let ci = bootstrap_mean_interval(&data, &BootstrapConfig {
                resamples: 200,
                ..BootstrapConfig::default()
            }).unwrap();
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(ci.low >= min - 1e-9);
            prop_assert!(ci.high <= max + 1e-9);
            prop_assert!(ci.low <= ci.high);
        }
    }
}
