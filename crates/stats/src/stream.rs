//! Streaming summary statistics with an associative, bit-reproducible
//! merge.
//!
//! The campaign engine folds millions of trial metrics without ever
//! materializing a per-trial `Vec`, and the fold must replay
//! bit-identically for any chunking of the sample stream and any shape
//! of the merge tree. Classic streaming estimators fail that bar:
//! Welford's parallel merge ([`crate::OnlineStats::merge`]) is
//! order-sensitive in the last ulp, and compactor-based quantile
//! sketches (GK, KLL) make data-dependent compaction decisions that
//! differ between merge orders. This module therefore builds the
//! [`StreamSummary`] from two primitives whose merges are *exactly*
//! associative and commutative:
//!
//! - [`ExactSum`]: a fixed-point superaccumulator holding the exact
//!   (error-free) sum of every pushed `f64`. Push and merge are integer
//!   additions; [`ExactSum::value`] rounds the exact total to the
//!   nearest `f64` once, so the result depends only on the *multiset*
//!   of pushed values — not on chunking, merge shape, or thread count.
//! - [`QuantileSketch`]: a log-binned sketch in the DDSketch family.
//!   A sample's bucket is a pure function of its value, and merging is
//!   unsigned bucket-count addition, so the sketch too depends only on
//!   the multiset of samples. Quantiles carry a proven relative error
//!   bound of [`QUANTILE_ALPHA`] inside the representable range.
//!
//! Both primitives count non-finite inputs in dedicated sticky
//! counters instead of poisoning internal state, so NaN/±inf handling
//! is documented and deterministic rather than accidental.

use crate::{Quartiles, StatsError};
use std::collections::BTreeMap;

// ---------------------------------------------------------------------
// ExactSum
// ---------------------------------------------------------------------

/// Number of 32-bit limbs (stored one per `u64` so carries accumulate
/// lazily). Bit 0 of limb 0 has weight 2^-1088, so every finite `f64`
/// (down to the smallest subnormal at 2^-1074) lands at a non-negative
/// bit position, and the top of the array (bit 2240) leaves headroom
/// for 2^64 summands of the largest finite magnitude (< 2^1088 total,
/// i.e. bit 2176 biased).
const LIMBS: usize = 70;

/// Bias added to a value's binary exponent to get its limb-array bit
/// position: position = exponent + `BIAS_BITS`.
const BIAS_BITS: i64 = 1088;

/// Lazy-carry cadence: limbs are renormalized to `< 2^32` after this
/// many pushes, keeping every limb comfortably below `u64` overflow
/// (each push adds at most `2^32 - 1` per limb).
const CARRY_EVERY: u32 = 1 << 30;

/// An exact (error-free) accumulator for `f64` sums.
///
/// Internally a pair of multi-precision fixed-point magnitudes (one for
/// positive summands, one for negative), so pushing and merging are
/// exact integer additions and the represented total is the true
/// mathematical sum. [`ExactSum::value`] performs the one and only
/// rounding, making the result independent of summation order, merge
/// tree shape, and thread count — the property `ordered_sum` can only
/// provide by pinning a single canonical order.
///
/// Non-finite inputs never enter the fixed-point state: NaN and ±inf
/// pushes are counted in sticky counters, and [`ExactSum::value`]
/// reproduces IEEE semantics from the counts (any NaN ⇒ NaN, both
/// infinities ⇒ NaN, one infinity ⇒ that infinity).
///
/// An exactly-zero total returns `+0.0` even if every summand was
/// `-0.0` (the fixed-point form has a single zero); this is the one
/// documented divergence from a literal IEEE left fold.
///
/// # Examples
///
/// ```
/// use rfid_stats::ExactSum;
///
/// let mut a = ExactSum::new();
/// for x in [1e100, 1.0, -1e100] {
///     a.push(x);
/// }
/// // A naive f64 fold loses the 1.0; the exact sum does not.
/// assert_eq!(a.value(), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExactSum {
    pos: [u64; LIMBS],
    neg: [u64; LIMBS],
    pending: u32,
    pos_inf: u64,
    neg_inf: u64,
    nan: u64,
}

impl Default for ExactSum {
    fn default() -> Self {
        Self::new()
    }
}

impl ExactSum {
    /// An empty accumulator (value `+0.0`).
    #[must_use]
    pub fn new() -> Self {
        Self {
            pos: [0; LIMBS],
            neg: [0; LIMBS],
            pending: 0,
            pos_inf: 0,
            neg_inf: 0,
            nan: 0,
        }
    }

    /// Adds one value, exactly.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        if x.is_infinite() {
            if x > 0.0 {
                self.pos_inf += 1;
            } else {
                self.neg_inf += 1;
            }
            return;
        }
        let bits = x.to_bits();
        let exp_field = ((bits >> 52) & 0x7FF) as i64;
        let frac = bits & ((1u64 << 52) - 1);
        let (mantissa, lsb_exp) = if exp_field == 0 {
            (frac, -1074i64)
        } else {
            (frac | (1u64 << 52), exp_field - 1075)
        };
        if mantissa == 0 {
            return; // ±0.0 contributes nothing.
        }
        let target = if bits >> 63 == 1 {
            &mut self.neg
        } else {
            &mut self.pos
        };
        // lsb_exp ∈ [-1074, 971] so the biased position is in [14, 2059]
        // and the 85-bit shifted mantissa fits below limb 66 of 70.
        let p = (lsb_exp + BIAS_BITS) as u64;
        let limb = (p / 32) as usize;
        let sh = (p % 32) as u32;
        let wide = u128::from(mantissa) << sh;
        target[limb] += (wide & 0xFFFF_FFFF) as u64;
        target[limb + 1] += ((wide >> 32) & 0xFFFF_FFFF) as u64;
        target[limb + 2] += (wide >> 64) as u64;
        self.pending += 1;
        if self.pending >= CARRY_EVERY {
            self.normalize();
        }
    }

    /// Merges another accumulator into this one. Exact, associative,
    /// and commutative: the result represents the combined multiset of
    /// pushed values.
    pub fn merge(&mut self, other: &ExactSum) {
        self.normalize();
        let mut o = other.clone();
        o.normalize();
        for i in 0..LIMBS {
            self.pos[i] += o.pos[i];
            self.neg[i] += o.neg[i];
        }
        self.normalize();
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
        self.nan += other.nan;
    }

    /// Propagates lazy carries so every limb is `< 2^32` again.
    fn normalize(&mut self) {
        for arr in [&mut self.pos, &mut self.neg] {
            let mut carry = 0u64;
            for limb in arr.iter_mut() {
                let v = *limb + carry;
                *limb = v & 0xFFFF_FFFF;
                carry = v >> 32;
            }
            debug_assert_eq!(carry, 0, "exact sum exceeded its limb range");
        }
        self.pending = 0;
    }

    /// The canonical signed difference `pos - neg`: `(sign, magnitude)`
    /// with sign ∈ {-1, 0, +1}. Depends only on the represented value,
    /// not on which side absorbed which summand.
    fn canonical(&self) -> (i8, [u64; LIMBS]) {
        let mut p = self.pos;
        let mut n = self.neg;
        carry_normalize(&mut p);
        carry_normalize(&mut n);
        match cmp_limbs(&p, &n) {
            std::cmp::Ordering::Equal => (0, [0; LIMBS]),
            std::cmp::Ordering::Greater => (1, sub_limbs(&p, &n)),
            std::cmp::Ordering::Less => (-1, sub_limbs(&n, &p)),
        }
    }

    /// The exact total, rounded once to the nearest `f64` (ties to
    /// even). This is the *only* rounding in the accumulator's life.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.nan > 0 || (self.pos_inf > 0 && self.neg_inf > 0) {
            return f64::NAN;
        }
        if self.pos_inf > 0 {
            return f64::INFINITY;
        }
        if self.neg_inf > 0 {
            return f64::NEG_INFINITY;
        }
        let (sign, mag) = self.canonical();
        if sign == 0 {
            return 0.0;
        }
        let h = highest_bit(&mag).expect("nonzero canonical magnitude has a set bit");
        if h - BIAS_BITS > 1023 {
            // The exact total overflows f64 range (requires ~2^53
            // max-magnitude summands); saturate like IEEE would.
            return if sign > 0 {
                f64::INFINITY
            } else {
                f64::NEG_INFINITY
            };
        }
        // Mantissa window: the 53 bits below the leader, floored at the
        // subnormal base (biased bit 14 == 2^-1074). Below the floor
        // nothing can be set, so guard/sticky are exact.
        let lo = (h - 52).max(14);
        let mut m = extract_bits(&mag, lo, h);
        let guard = lo > 14 && get_bit(&mag, lo - 1);
        let sticky = lo > 14 && any_bits_below(&mag, lo - 1);
        if guard && (sticky || (m & 1) == 1) {
            m += 1;
        }
        let val = compose(m, lo - BIAS_BITS);
        if sign > 0 {
            val
        } else {
            -val
        }
    }

    /// Count of NaN pushes.
    #[must_use]
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Serializes the canonical form (little-endian, deterministic).
    pub fn encode(&self, out: &mut Vec<u8>) {
        let (sign, mag) = self.canonical();
        out.push(sign as u8);
        let nonzero: Vec<(u16, u32)> = mag
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (i as u16, v as u32))
            .collect();
        out.extend_from_slice(&(nonzero.len() as u16).to_le_bytes());
        for (idx, val) in nonzero {
            out.extend_from_slice(&idx.to_le_bytes());
            out.extend_from_slice(&val.to_le_bytes());
        }
        for c in [self.pos_inf, self.neg_inf, self.nan] {
            out.extend_from_slice(&c.to_le_bytes());
        }
    }

    /// Decodes an accumulator previously written by [`ExactSum::encode`],
    /// advancing `cur` past the consumed bytes.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadEncoding`] on truncated or malformed
    /// input (never panics).
    pub fn decode(buf: &[u8], cur: &mut usize) -> Result<Self, StatsError> {
        let sign = take_u8(buf, cur)? as i8;
        if !(-1..=1).contains(&sign) {
            return Err(bad("exact-sum sign byte out of range"));
        }
        let k = take_u16(buf, cur)?;
        let mut mag = [0u64; LIMBS];
        for _ in 0..k {
            let idx = take_u16(buf, cur)? as usize;
            let val = take_u32(buf, cur)?;
            if idx >= LIMBS {
                return Err(bad("exact-sum limb index out of range"));
            }
            mag[idx] = u64::from(val);
        }
        if sign == 0 && mag.iter().any(|&v| v != 0) {
            return Err(bad("exact-sum zero sign with nonzero magnitude"));
        }
        let mut sum = ExactSum::new();
        match sign {
            1 => sum.pos = mag,
            -1 => sum.neg = mag,
            _ => {}
        }
        sum.pos_inf = take_u64(buf, cur)?;
        sum.neg_inf = take_u64(buf, cur)?;
        sum.nan = take_u64(buf, cur)?;
        Ok(sum)
    }
}

impl PartialEq for ExactSum {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
            && self.pos_inf == other.pos_inf
            && self.neg_inf == other.neg_inf
            && self.nan == other.nan
    }
}

/// Carry-normalizes a copied limb array in place.
fn carry_normalize(arr: &mut [u64; LIMBS]) {
    let mut carry = 0u64;
    for limb in arr.iter_mut() {
        let v = *limb + carry;
        *limb = v & 0xFFFF_FFFF;
        carry = v >> 32;
    }
    debug_assert_eq!(carry, 0, "exact sum exceeded its limb range");
}

fn cmp_limbs(a: &[u64; LIMBS], b: &[u64; LIMBS]) -> std::cmp::Ordering {
    for i in (0..LIMBS).rev() {
        match a[i].cmp(&b[i]) {
            std::cmp::Ordering::Equal => {}
            other => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// `a - b` over carry-normalized limbs; requires `a >= b`.
fn sub_limbs(a: &[u64; LIMBS], b: &[u64; LIMBS]) -> [u64; LIMBS] {
    let mut out = [0u64; LIMBS];
    let mut borrow = 0u64;
    for i in 0..LIMBS {
        let lhs = a[i];
        let rhs = b[i] + borrow;
        if lhs >= rhs {
            out[i] = lhs - rhs;
            borrow = 0;
        } else {
            out[i] = lhs + (1u64 << 32) - rhs;
            borrow = 1;
        }
    }
    debug_assert_eq!(borrow, 0, "sub_limbs requires a >= b");
    out
}

fn highest_bit(mag: &[u64; LIMBS]) -> Option<i64> {
    for i in (0..LIMBS).rev() {
        if mag[i] != 0 {
            return Some(i as i64 * 32 + (63 - i64::from(mag[i].leading_zeros())));
        }
    }
    None
}

fn get_bit(mag: &[u64; LIMBS], bit: i64) -> bool {
    let limb = (bit / 32) as usize;
    let sh = (bit % 32) as u32;
    (mag[limb] >> sh) & 1 == 1
}

/// Gathers bits `lo..=hi` (at most 53 of them) into a `u64`.
fn extract_bits(mag: &[u64; LIMBS], lo: i64, hi: i64) -> u64 {
    let mut out = 0u64;
    for b in lo..=hi {
        if get_bit(mag, b) {
            out |= 1 << (b - lo);
        }
    }
    out
}

/// Whether any bit strictly below `below` is set.
fn any_bits_below(mag: &[u64; LIMBS], below: i64) -> bool {
    if below <= 0 {
        return false;
    }
    let limb = (below / 32) as usize;
    let sh = (below % 32) as u32;
    if mag[..limb].iter().any(|&v| v != 0) {
        return true;
    }
    sh > 0 && (mag[limb] & ((1u64 << sh) - 1)) != 0
}

/// `m * 2^exp` exactly, for `m <= 2^53` and the exponents reachable
/// from the rounding window (`exp ∈ [-1074, 971]`).
fn compose(m: u64, exp: i64) -> f64 {
    let mf = m as f64; // exact: m <= 2^53
    if exp >= -1022 {
        mf * f64::from_bits(((exp + 1023) as u64) << 52)
    } else {
        // Subnormal scale: 2^exp itself is subnormal but exact, and the
        // window construction guarantees the product is representable.
        mf * f64::from_bits(1u64 << (exp + 1074))
    }
}

// ---------------------------------------------------------------------
// QuantileSketch
// ---------------------------------------------------------------------

/// Relative accuracy of [`QuantileSketch`]: a quantile estimate `q̂`
/// for true quantile `q` satisfies `|q̂ - q| <= QUANTILE_ALPHA * |q|`
/// whenever `|q|` lies in `[MIN_TRACKED_ABS, MAX_TRACKED_ABS]`.
pub const QUANTILE_ALPHA: f64 = 0.01;

/// Magnitudes at or below this collapse into the sketch's zero bucket
/// (estimate `0.0`, absolute error at most this bound).
pub const MIN_TRACKED_ABS: f64 = 1e-12;

/// Magnitudes above this saturate into the top bucket (estimates clamp
/// near this bound; the relative error guarantee stops applying).
pub const MAX_TRACKED_ABS: f64 = 1e12;

/// A deterministic log-binned quantile sketch with an exactly
/// associative merge.
///
/// A sample's bucket index is a pure function of its value
/// (`⌈ln|x| / ln γ⌉` with `γ = (1+α)/(1-α)`, mirrored for negatives,
/// with a dedicated zero bucket), and merging adds bucket counts, so —
/// unlike compactor sketches — the state depends only on the *multiset*
/// of pushed samples, never on push order or merge-tree shape. That is
/// the property the campaign engine's bit-replay contract needs, and
/// why the merge requires no order pinning at all (contrast
/// [`crate::ordered_sum`], which buys determinism by pinning order).
///
/// Size is bounded by the fixed index range (±⌈ln(10^12)·(1/ln γ)⌉ ≈
/// 1382 buckets per sign, ≈ 66 KiB absolute worst case; real metric
/// streams touch a few dozen buckets).
///
/// Quantiles use the nearest-rank convention (rank `⌈p·n⌉` of the
/// sorted multiset). NaN pushes are excluded from quantiles and held in
/// a sticky counter; ±inf sort to the extremes and are returned
/// verbatim when a rank lands on them. ±0.0 both land in the zero
/// bucket and are reported as `+0.0`.
///
/// # Examples
///
/// ```
/// use rfid_stats::QuantileSketch;
///
/// let mut s = QuantileSketch::new();
/// for i in 1..=1000 {
///     s.push(f64::from(i));
/// }
/// let p95 = s.quantile(0.95).unwrap();
/// assert!((p95 - 950.0).abs() <= 950.0 * rfid_stats::QUANTILE_ALPHA);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QuantileSketch {
    pos: BTreeMap<i32, u64>,
    neg: BTreeMap<i32, u64>,
    zero: u64,
    pos_inf: u64,
    neg_inf: u64,
    nan: u64,
    /// Finite + infinite samples (everything rankable; excludes NaN).
    count: u64,
}

/// `γ` for [`QUANTILE_ALPHA`]: adjacent bucket boundaries differ by
/// this factor.
fn gamma() -> f64 {
    (1.0 + QUANTILE_ALPHA) / (1.0 - QUANTILE_ALPHA)
}

/// Bucket index for a magnitude in `(MIN_TRACKED_ABS, ∞)`, clamped at
/// the top of the tracked range.
fn bucket_index(abs: f64) -> i32 {
    let g = gamma();
    let max_idx = (MAX_TRACKED_ABS.ln() / g.ln()).ceil() as i32;
    let idx = (abs.ln() / g.ln()).ceil();
    // The lower clamp is unreachable (abs > MIN_TRACKED_ABS routes to
    // the zero bucket before indexing) but keeps the range explicit.
    let min_idx = (MIN_TRACKED_ABS.ln() / g.ln()).ceil() as i32;
    (idx as i32).clamp(min_idx, max_idx)
}

/// Midpoint representative of bucket `i`: the value minimizing the
/// worst-case relative error over the bucket `(γ^(i-1), γ^i]`.
fn bucket_value(i: i32) -> f64 {
    let g = gamma();
    2.0 * g.powi(i) / (g + 1.0)
}

impl QuantileSketch {
    /// An empty sketch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn push(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        self.count += 1;
        if x == f64::INFINITY {
            self.pos_inf += 1;
            return;
        }
        if x == f64::NEG_INFINITY {
            self.neg_inf += 1;
            return;
        }
        let abs = x.abs();
        if abs <= MIN_TRACKED_ABS {
            self.zero += 1; // includes ±0.0
            return;
        }
        let idx = bucket_index(abs);
        let map = if x > 0.0 {
            &mut self.pos
        } else {
            &mut self.neg
        };
        *map.entry(idx).or_insert(0) += 1;
    }

    /// Merges another sketch into this one (bucket-count addition:
    /// exactly associative and commutative).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&i, &c) in &other.pos {
            *self.pos.entry(i).or_insert(0) += c;
        }
        for (&i, &c) in &other.neg {
            *self.neg.entry(i).or_insert(0) += c;
        }
        self.zero += other.zero;
        self.pos_inf += other.pos_inf;
        self.neg_inf += other.neg_inf;
        self.nan += other.nan;
        self.count += other.count;
    }

    /// Rankable samples recorded (excludes NaN).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no rankable sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Count of NaN pushes (excluded from quantiles).
    #[must_use]
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// The `p`-quantile estimate (nearest-rank over the sorted
    /// multiset), within [`QUANTILE_ALPHA`] relative error inside the
    /// tracked range.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no rankable sample was pushed;
    /// [`StatsError::OutOfRange`] if `p` is NaN or outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        if self.count == 0 {
            return Err(StatsError::EmptyInput);
        }
        if !(0.0..=1.0).contains(&p) {
            return Err(StatsError::OutOfRange {
                value: format!("{p}"),
            });
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        seen += self.neg_inf;
        if rank <= seen {
            return Ok(f64::NEG_INFINITY);
        }
        // Negative buckets: larger magnitude index = more negative, so
        // ascending value order walks indices downward.
        for (&i, &c) in self.neg.iter().rev() {
            seen += c;
            if rank <= seen {
                return Ok(-bucket_value(i));
            }
        }
        seen += self.zero;
        if rank <= seen {
            return Ok(0.0);
        }
        for (&i, &c) in &self.pos {
            seen += c;
            if rank <= seen {
                return Ok(bucket_value(i));
            }
        }
        Ok(f64::INFINITY)
    }

    /// Serializes the sketch (little-endian, deterministic: `BTreeMap`
    /// iteration is key-ordered).
    pub fn encode(&self, out: &mut Vec<u8>) {
        for c in [self.zero, self.pos_inf, self.neg_inf, self.nan, self.count] {
            out.extend_from_slice(&c.to_le_bytes());
        }
        for map in [&self.pos, &self.neg] {
            out.extend_from_slice(&(map.len() as u32).to_le_bytes());
            for (&i, &c) in map {
                out.extend_from_slice(&i.to_le_bytes());
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
    }

    /// Decodes a sketch written by [`QuantileSketch::encode`],
    /// advancing `cur`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadEncoding`] on truncated or malformed
    /// input (never panics).
    pub fn decode(buf: &[u8], cur: &mut usize) -> Result<Self, StatsError> {
        let zero = take_u64(buf, cur)?;
        let pos_inf = take_u64(buf, cur)?;
        let neg_inf = take_u64(buf, cur)?;
        let nan = take_u64(buf, cur)?;
        let count = take_u64(buf, cur)?;
        let mut maps = [BTreeMap::new(), BTreeMap::new()];
        for map in &mut maps {
            let k = take_u32(buf, cur)?;
            for _ in 0..k {
                let i = take_u32(buf, cur)? as i32;
                let c = take_u64(buf, cur)?;
                if map.insert(i, c).is_some() {
                    return Err(bad("duplicate sketch bucket"));
                }
            }
        }
        let [pos, neg] = maps;
        let bucketed: u64 =
            pos.values().sum::<u64>() + neg.values().sum::<u64>() + zero + pos_inf + neg_inf;
        if bucketed != count {
            return Err(bad("sketch bucket counts disagree with total"));
        }
        Ok(Self {
            pos,
            neg,
            zero,
            pos_inf,
            neg_inf,
            nan,
            count,
        })
    }
}

// ---------------------------------------------------------------------
// StreamSummary
// ---------------------------------------------------------------------

/// A mergeable streaming summary: count, exact mean/variance, exact
/// min/max, and sketched quantiles — the accumulator the campaign
/// engine folds trial metrics into instead of holding per-trial `Vec`s.
///
/// Every component merge is exactly associative and commutative
/// ([`ExactSum`] for the moments, [`QuantileSketch`] for quantiles,
/// `total_cmp` min/max, integer counts), so the summary state depends
/// only on the multiset of pushed samples: any chunking of the stream,
/// any merge-tree shape, and any thread count produce bit-identical
/// results. Equality compares that canonical state bitwise.
///
/// Non-finite inputs are deterministic, not poisonous: NaN samples are
/// counted ([`StreamSummary::nan_count`]) and excluded from every
/// statistic; infinities flow through the moments with IEEE semantics
/// and sort to the quantile extremes. Min/max order by IEEE `total_cmp`
/// (so `-0.0 < +0.0`); the empty summary reports `+inf`/`-inf`
/// sentinels like [`crate::OnlineStats`].
///
/// # Examples
///
/// ```
/// use rfid_stats::StreamSummary;
///
/// let mut a = StreamSummary::new();
/// let mut b = StreamSummary::new();
/// for x in [1.0, 2.0] { a.push(x); }
/// for x in [3.0, 4.0] { b.push(x); }
/// a.merge(&b);
/// assert_eq!(a, StreamSummary::from_samples(&[1.0, 2.0, 3.0, 4.0]));
/// assert_eq!(a.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StreamSummary {
    n: u64,
    nan: u64,
    sum: ExactSum,
    sum_sq: ExactSum,
    min: f64,
    max: f64,
    sketch: QuantileSketch,
}

impl StreamSummary {
    /// An empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            nan: 0,
            sum: ExactSum::new(),
            sum_sq: ExactSum::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sketch: QuantileSketch::new(),
        }
    }

    /// Summarizes a batch slice — the reference the streaming path is
    /// property-tested bit-identical against.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in samples {
            s.push(x);
        }
        s
    }

    /// Adds one sample. NaN is counted ([`StreamSummary::nan_count`])
    /// and excluded from every statistic; all other values (including
    /// ±inf) flow through.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        self.sum.push(x);
        self.sum_sq.push(x * x);
        self.sketch.push(x);
        if x.total_cmp(&self.min).is_lt() {
            self.min = x;
        }
        if x.total_cmp(&self.max).is_gt() {
            self.max = x;
        }
    }

    /// Merges another summary into this one. Exactly associative and
    /// commutative; bit-identical to pushing the combined multiset.
    pub fn merge(&mut self, other: &StreamSummary) {
        self.n += other.n;
        self.nan += other.nan;
        self.sum.merge(&other.sum);
        self.sum_sq.merge(&other.sum_sq);
        self.sketch.merge(&other.sketch);
        if other.min.total_cmp(&self.min).is_lt() {
            self.min = other.min;
        }
        if other.max.total_cmp(&self.max).is_gt() {
            self.max = other.max;
        }
    }

    /// Samples pushed (including NaN).
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no samples were pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Count of NaN samples (excluded from every statistic).
    #[must_use]
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// The exact sum of all non-NaN samples, rounded once.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum.value()
    }

    /// Mean over non-NaN samples (`0.0` when there are none, matching
    /// [`crate::OnlineStats`]); the single rounded division of the
    /// exact sum.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let numeric = self.n - self.nan;
        if numeric == 0 {
            return 0.0;
        }
        self.sum.value() / numeric as f64
    }

    /// Sample variance (Bessel-corrected; `0.0` for fewer than two
    /// numeric samples), from the exactly-accumulated first and second
    /// moments, clamped at zero against final-rounding cancellation.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let numeric = self.n - self.nan;
        if numeric < 2 {
            return 0.0;
        }
        let n = numeric as f64;
        let s = self.sum.value();
        let q = self.sum_sq.value();
        ((q - s * s / n) / (n - 1.0)).max(0.0)
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest non-NaN sample by `total_cmp` (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest non-NaN sample by `total_cmp` (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sketched `p`-quantile (see [`QuantileSketch::quantile`]).
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no rankable sample was pushed;
    /// [`StatsError::OutOfRange`] if `p` is NaN or outside `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Result<f64, StatsError> {
        self.sketch.quantile(p)
    }

    /// Sketched lower/median/upper quartiles.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no rankable sample was pushed.
    pub fn quartiles(&self) -> Result<Quartiles, StatsError> {
        Ok(Quartiles {
            lower: self.quantile(0.25)?,
            median: self.quantile(0.5)?,
            upper: self.quantile(0.75)?,
        })
    }

    /// Sketched median (p50).
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no rankable sample was pushed.
    pub fn p50(&self) -> Result<f64, StatsError> {
        self.quantile(0.50)
    }

    /// Sketched 95th percentile.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no rankable sample was pushed.
    pub fn p95(&self) -> Result<f64, StatsError> {
        self.quantile(0.95)
    }

    /// Sketched 99th percentile.
    ///
    /// # Errors
    ///
    /// [`StatsError::EmptyInput`] if no rankable sample was pushed.
    pub fn p99(&self) -> Result<f64, StatsError> {
        self.quantile(0.99)
    }

    /// Serializes the summary's canonical state (little-endian,
    /// deterministic). Equal summaries produce byte-identical
    /// encodings, so this doubles as the bit-identity witness in the
    /// campaign checkpoints.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.n.to_le_bytes());
        out.extend_from_slice(&self.nan.to_le_bytes());
        out.extend_from_slice(&self.min.to_bits().to_le_bytes());
        out.extend_from_slice(&self.max.to_bits().to_le_bytes());
        self.sum.encode(out);
        self.sum_sq.encode(out);
        self.sketch.encode(out);
    }

    /// The encoding as a fresh buffer.
    #[must_use]
    pub fn encode_vec(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a summary written by [`StreamSummary::encode`],
    /// advancing `cur`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadEncoding`] on truncated or malformed
    /// input (never panics).
    pub fn decode(buf: &[u8], cur: &mut usize) -> Result<Self, StatsError> {
        let n = take_u64(buf, cur)?;
        let nan = take_u64(buf, cur)?;
        let min = f64::from_bits(take_u64(buf, cur)?);
        let max = f64::from_bits(take_u64(buf, cur)?);
        let sum = ExactSum::decode(buf, cur)?;
        let sum_sq = ExactSum::decode(buf, cur)?;
        let sketch = QuantileSketch::decode(buf, cur)?;
        Ok(Self {
            n,
            nan,
            sum,
            sum_sq,
            min,
            max,
            sketch,
        })
    }

    /// Bytes of live accumulator state (the canonical encoding length):
    /// the campaign bench's peak-memory proxy.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        self.encode_vec().len()
    }
}

impl PartialEq for StreamSummary {
    fn eq(&self, other: &Self) -> bool {
        // Canonical-encoding equality is bitwise on min/max (so
        // -0.0 != +0.0 here, as bit-replay requires) and
        // representation-independent on the exact sums.
        self.encode_vec() == other.encode_vec()
    }
}

impl Extend<f64> for StreamSummary {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for StreamSummary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = StreamSummary::new();
        s.extend(iter);
        s
    }
}

// ---------------------------------------------------------------------
// Codec helpers
// ---------------------------------------------------------------------

fn bad(reason: &str) -> StatsError {
    StatsError::BadEncoding {
        reason: reason.to_owned(),
    }
}

fn take_u8(buf: &[u8], cur: &mut usize) -> Result<u8, StatsError> {
    let b = buf
        .get(*cur)
        .copied()
        .ok_or_else(|| bad("truncated input"))?;
    *cur += 1;
    Ok(b)
}

fn take_u16(buf: &[u8], cur: &mut usize) -> Result<u16, StatsError> {
    let end = cur.checked_add(2).ok_or_else(|| bad("cursor overflow"))?;
    let bytes = buf.get(*cur..end).ok_or_else(|| bad("truncated input"))?;
    *cur = end;
    Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
}

fn take_u32(buf: &[u8], cur: &mut usize) -> Result<u32, StatsError> {
    let end = cur.checked_add(4).ok_or_else(|| bad("cursor overflow"))?;
    let bytes = buf.get(*cur..end).ok_or_else(|| bad("truncated input"))?;
    *cur = end;
    Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

fn take_u64(buf: &[u8], cur: &mut usize) -> Result<u64, StatsError> {
    let end = cur.checked_add(8).ok_or_else(|| bad("cursor overflow"))?;
    let bytes = buf.get(*cur..end).ok_or_else(|| bad("truncated input"))?;
    *cur = end;
    let mut arr = [0u8; 8];
    arr.copy_from_slice(bytes);
    Ok(u64::from_le_bytes(arr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_sum_survives_catastrophic_cancellation() {
        let mut s = ExactSum::new();
        for x in [1e100, 1.0, -1e100, 1e-300, -1e-300] {
            s.push(x);
        }
        assert_eq!(s.value(), 1.0);
    }

    #[test]
    fn exact_sum_round_trips_single_values() {
        for x in [
            0.0,
            -0.0,
            1.0,
            -1.0,
            0.1,
            f64::MIN_POSITIVE,
            f64::MIN_POSITIVE / 4.0, // subnormal
            f64::MAX,
            -f64::MAX,
            1.5e-310, // subnormal
            std::f64::consts::PI,
        ] {
            let mut s = ExactSum::new();
            s.push(x);
            let got = s.value();
            if x == 0.0 {
                // Documented: exact zero canonicalizes to +0.0.
                assert_eq!(got.to_bits(), 0.0f64.to_bits(), "x = {x:?}");
            } else {
                assert_eq!(got.to_bits(), x.to_bits(), "x = {x:?}");
            }
        }
    }

    #[test]
    fn exact_sum_rounds_to_nearest_even() {
        // 2^53 + 1 is exactly representable as a sum but not as an f64;
        // ties-to-even rounds it down to 2^53.
        let mut s = ExactSum::new();
        s.push(9007199254740992.0); // 2^53
        s.push(1.0);
        assert_eq!(s.value(), 9007199254740992.0);
        // 2^53 + 3 rounds up to 2^53 + 4.
        let mut s = ExactSum::new();
        s.push(9007199254740992.0);
        s.push(3.0);
        assert_eq!(s.value(), 9007199254740996.0);
    }

    #[test]
    fn exact_sum_handles_non_finite_counts() {
        let mut s = ExactSum::new();
        s.push(f64::INFINITY);
        s.push(1.0);
        assert_eq!(s.value(), f64::INFINITY);
        s.push(f64::NEG_INFINITY);
        assert!(s.value().is_nan());
        let mut t = ExactSum::new();
        t.push(f64::NAN);
        assert!(t.value().is_nan());
        assert_eq!(t.nan_count(), 1);
    }

    #[test]
    fn exact_sum_integer_sums_are_exact() {
        let mut s = ExactSum::new();
        for i in 0..10_000u64 {
            s.push(i as f64);
        }
        assert_eq!(s.value(), (10_000.0 * 9_999.0) / 2.0);
    }

    #[test]
    fn exact_sum_codec_round_trips() {
        let mut s = ExactSum::new();
        for x in [1e80, -2.5, 1e-200, f64::INFINITY] {
            s.push(x);
        }
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut cur = 0;
        let back = ExactSum::decode(&buf, &mut cur).unwrap();
        assert_eq!(cur, buf.len());
        assert_eq!(back, s);
        assert_eq!(back.value().to_bits(), s.value().to_bits());
    }

    #[test]
    fn exact_sum_decode_rejects_garbage() {
        assert!(ExactSum::decode(&[], &mut 0).is_err());
        assert!(ExactSum::decode(&[7], &mut 0).is_err()); // bad sign
        let mut s = ExactSum::new();
        s.push(1.0);
        let mut buf = Vec::new();
        s.encode(&mut buf);
        for cut in 0..buf.len() {
            let mut cur = 0;
            // Every truncation is a typed error, never a panic.
            assert!(ExactSum::decode(&buf[..cut], &mut cur).is_err());
        }
    }

    #[test]
    fn sketch_meets_its_error_bound_on_a_known_stream() {
        let mut s = QuantileSketch::new();
        for i in 1..=10_000 {
            s.push(f64::from(i) * 0.01);
        }
        for p in [0.0f64, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0] {
            let exact = (p * 10_000.0).ceil().max(1.0) * 0.01;
            let got = s.quantile(p).unwrap();
            assert!(
                (got - exact).abs() <= QUANTILE_ALPHA * exact + 1e-12,
                "p = {p}: got {got}, exact {exact}"
            );
        }
    }

    #[test]
    fn sketch_handles_signs_zero_and_non_finite() {
        let mut s = QuantileSketch::new();
        for x in [-100.0, -1.0, -0.0, 0.0, 1.0, 100.0, f64::NAN] {
            s.push(x);
        }
        assert_eq!(s.nan_count(), 1);
        assert_eq!(s.len(), 6);
        assert_eq!(s.quantile(0.5).unwrap(), 0.0); // rank 3 = -0.0 → zero bucket
        assert!(s.quantile(0.0).unwrap() < -99.0);
        assert!(s.quantile(1.0).unwrap() > 99.0);

        let mut inf = QuantileSketch::new();
        inf.push(f64::NEG_INFINITY);
        inf.push(0.0);
        inf.push(f64::INFINITY);
        assert_eq!(inf.quantile(0.0).unwrap(), f64::NEG_INFINITY);
        assert_eq!(inf.quantile(1.0).unwrap(), f64::INFINITY);
    }

    #[test]
    fn sketch_saturates_outside_the_tracked_range() {
        let mut s = QuantileSketch::new();
        s.push(1e15); // above MAX_TRACKED_ABS: clamps to top bucket
        s.push(1e-15); // below MIN_TRACKED_ABS: zero bucket
        assert_eq!(s.quantile(0.0).unwrap(), 0.0);
        let top = s.quantile(1.0).unwrap();
        assert!(top.is_finite() && top > MAX_TRACKED_ABS * 0.9);
    }

    #[test]
    fn sketch_codec_round_trips_and_rejects_truncation() {
        let mut s = QuantileSketch::new();
        for x in [-3.0, 0.0, 2.0, 2.0, 1e9, f64::NAN] {
            s.push(x);
        }
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut cur = 0;
        let back = QuantileSketch::decode(&buf, &mut cur).unwrap();
        assert_eq!(cur, buf.len());
        assert_eq!(back, s);
        for cut in 0..buf.len() {
            assert!(QuantileSketch::decode(&buf[..cut], &mut 0).is_err());
        }
    }

    #[test]
    fn summary_matches_batch_reference_on_a_simple_stream() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let streaming: StreamSummary = data.iter().copied().collect();
        let batch = StreamSummary::from_samples(&data);
        assert_eq!(streaming, batch);
        assert_eq!(streaming.mean(), 5.0);
        assert_eq!(streaming.min(), 2.0);
        assert_eq!(streaming.max(), 9.0);
        assert!((streaming.variance() - 4.571_428_571_428_571).abs() < 1e-12);
    }

    #[test]
    fn summary_empty_defaults_match_online_stats() {
        let s = StreamSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
        assert_eq!(s.quantile(0.5), Err(StatsError::EmptyInput));
        assert_eq!(
            s.quartiles().unwrap_err(),
            StatsError::EmptyInput,
            "quartiles of empty summary is a typed error"
        );
    }

    #[test]
    fn summary_orders_signed_zero_by_total_cmp() {
        let mut s = StreamSummary::new();
        s.push(0.0);
        s.push(-0.0);
        assert_eq!(s.min().to_bits(), (-0.0f64).to_bits());
        assert_eq!(s.max().to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn summary_excludes_nan_from_extrema_but_counts_it() {
        let mut s = StreamSummary::new();
        s.push(f64::NAN);
        s.push(3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.nan_count(), 1);
        assert_eq!(s.min(), 3.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn summary_codec_round_trips() {
        let mut s = StreamSummary::new();
        for x in [-1.5, 0.0, 2.25, 1e9, f64::NAN] {
            s.push(x);
        }
        let buf = s.encode_vec();
        let mut cur = 0;
        let back = StreamSummary::decode(&buf, &mut cur).unwrap();
        assert_eq!(cur, buf.len());
        assert_eq!(back, s);
        assert_eq!(back.encode_vec(), buf, "re-encode is byte-identical");
        assert_eq!(s.state_bytes(), buf.len());
        for cut in 0..buf.len() {
            assert!(StreamSummary::decode(&buf[..cut], &mut 0).is_err());
        }
    }

    /// Samples covering ~600 orders of magnitude, both signs, zeros.
    fn sample_strategy() -> impl Strategy<Value = f64> {
        prop_oneof![
            -1e6f64..1e6,
            -1e6f64..1e6,
            -1e-3f64..1e-3,
            Just(0.0f64),
            Just(-0.0f64),
            (-300i32..300, -1.0f64..1.0).prop_map(|(e, m)| m * 10f64.powi(e)),
        ]
    }

    proptest! {
        /// The tentpole identity: folding any chunking of the stream
        /// and merging the chunk summaries in ANY tree shape is
        /// bit-identical to the batch reference. The merge tree is
        /// exercised by right-to-left folding (a maximally unbalanced
        /// tree opposite to the natural left fold) plus a balanced
        /// recursive split.
        #[test]
        fn summary_is_chunking_and_merge_tree_invariant(
            data in proptest::collection::vec(sample_strategy(), 0..300),
            cuts in proptest::collection::vec(0usize..300, 0..8),
        ) {
            let batch = StreamSummary::from_samples(&data);

            // Arbitrary chunking.
            let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (data.len() + 1)).collect();
            bounds.push(0);
            bounds.push(data.len());
            bounds.sort_unstable();
            let chunks: Vec<StreamSummary> = bounds
                .windows(2)
                .map(|w| StreamSummary::from_samples(&data[w[0]..w[1]]))
                .collect();

            // Left fold.
            let mut left = StreamSummary::new();
            for c in &chunks {
                left.merge(c);
            }
            prop_assert_eq!(&left, &batch);

            // Right fold (worst-case opposite association).
            let mut right = StreamSummary::new();
            for c in chunks.iter().rev() {
                right.merge(c);
            }
            prop_assert_eq!(&right, &batch);

            // Balanced tree.
            fn tree(chunks: &[StreamSummary]) -> StreamSummary {
                match chunks.len() {
                    0 => StreamSummary::new(),
                    1 => chunks[0].clone(),
                    n => {
                        let mut l = tree(&chunks[..n / 2]);
                        l.merge(&tree(&chunks[n / 2..]));
                        l
                    }
                }
            }
            prop_assert_eq!(&tree(&chunks), &batch);
        }

        /// The exact sum matches a 256-bit-ish oracle: summing the same
        /// values as exact rationals via integer arithmetic on a
        /// smaller magnitude range where i128 suffices.
        #[test]
        fn exact_sum_matches_integer_oracle(
            ints in proptest::collection::vec(-1_000_000i64..1_000_000, 1..200),
        ) {
            let mut s = ExactSum::new();
            for &i in &ints {
                s.push(i as f64 * 0.25); // exactly representable
            }
            let total: i64 = ints.iter().sum();
            prop_assert_eq!(s.value(), total as f64 * 0.25);
        }

        /// Sketch quantiles stay within the documented bound of the
        /// exact nearest-rank quantile.
        #[test]
        fn sketch_error_bound_holds(
            data in proptest::collection::vec(prop_oneof![-1e6f64..1e6, -1.0f64..1.0], 1..400),
            p in 0.0f64..=1.0,
        ) {
            let mut sketch = QuantileSketch::new();
            for &x in &data {
                sketch.push(x);
            }
            let mut sorted = data.clone();
            sorted.sort_by(f64::total_cmp);
            let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = sketch.quantile(p).unwrap();
            let tol = QUANTILE_ALPHA * exact.abs() + MIN_TRACKED_ABS + 1e-9;
            prop_assert!(
                (got - exact).abs() <= tol,
                "p = {}, got {}, exact {}", p, got, exact
            );
        }

        /// Canonical encodings are equal exactly when summaries are
        /// equal, and decode inverts encode.
        #[test]
        fn summary_codec_is_canonical(
            data in proptest::collection::vec(sample_strategy(), 0..100),
        ) {
            let s = StreamSummary::from_samples(&data);
            let buf = s.encode_vec();
            let mut cur = 0;
            let back = StreamSummary::decode(&buf, &mut cur).unwrap();
            prop_assert_eq!(cur, buf.len());
            prop_assert_eq!(&back, &s);
            prop_assert_eq!(back.encode_vec(), buf);
        }
    }
}
