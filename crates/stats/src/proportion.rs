//! Success-proportion estimates with confidence intervals.

use crate::StatsError;
use std::fmt;

/// A closed interval `[low, high]` on the real line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint.
    pub low: f64,
    /// Upper endpoint.
    pub high: f64,
}

impl Interval {
    /// Width of the interval.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.high - self.low
    }

    /// Whether `x` lies inside the interval (inclusive).
    #[must_use]
    pub fn contains(&self, x: f64) -> bool {
        self.low <= x && x <= self.high
    }
}

/// A Bernoulli success proportion: `successes` out of `trials`.
///
/// All of the paper's Tables 1-5 report read/tracking reliabilities of this
/// form (e.g. "29%" for top-mounted tags over 12 trials).
///
/// # Examples
///
/// ```
/// use rfid_stats::Proportion;
///
/// let p = Proportion::new(9, 12)?;
/// assert_eq!(p.point(), 0.75);
/// assert_eq!(format!("{p}"), "75%");
/// # Ok::<(), rfid_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proportion {
    successes: u64,
    trials: u64,
}

impl Proportion {
    /// Creates a proportion from success and trial counts.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroTrials`] when `trials == 0` and
    /// [`StatsError::SuccessesExceedTrials`] when `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> Result<Self, StatsError> {
        if trials == 0 {
            return Err(StatsError::ZeroTrials);
        }
        if successes > trials {
            return Err(StatsError::SuccessesExceedTrials { successes, trials });
        }
        Ok(Self { successes, trials })
    }

    /// Builds a proportion by counting `true` outcomes.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroTrials`] for an empty iterator.
    pub fn from_outcomes<I: IntoIterator<Item = bool>>(outcomes: I) -> Result<Self, StatsError> {
        let mut successes = 0;
        let mut trials = 0;
        for ok in outcomes {
            trials += 1;
            if ok {
                successes += 1;
            }
        }
        Self::new(successes, trials)
    }

    /// Number of successes.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Maximum-likelihood point estimate `successes / trials`.
    #[must_use]
    pub fn point(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Wilson score interval at the given confidence level.
    ///
    /// The Wilson interval behaves sensibly at the extremes (0% and 100%
    /// observed reliability), which RFID measurements hit routinely — the
    /// paper records both 0% and 100% cells.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    #[must_use]
    pub fn wilson_interval(&self, confidence: f64) -> Interval {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        let z = standard_normal_quantile(0.5 + confidence / 2.0);
        let n = self.trials as f64;
        let p = self.point();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
        // At the extremes the exact bound equals the point estimate;
        // snap it there so rounding can never exclude the observed value.
        let low = if self.successes == 0 {
            0.0
        } else {
            (center - half).max(0.0)
        };
        let high = if self.successes == self.trials {
            1.0
        } else {
            (center + half).min(1.0)
        };
        Interval { low, high }
    }

    /// Pools two proportions measured under the same conditions.
    #[must_use]
    pub fn pooled(&self, other: &Proportion) -> Proportion {
        Proportion {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }
}

impl fmt::Display for Proportion {
    /// Formats as a rounded percentage, matching the paper's tables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.point() * 100.0)
    }
}

/// Inverse CDF of the standard normal distribution.
///
/// Acklam's rational approximation; absolute error below 1.2e-9 over the open
/// unit interval, far more precision than reliability reporting needs.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
#[must_use]
pub(crate) fn standard_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile rank must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert_eq!(Proportion::new(1, 0), Err(StatsError::ZeroTrials));
        assert!(matches!(
            Proportion::new(4, 3),
            Err(StatsError::SuccessesExceedTrials { .. })
        ));
        assert!(Proportion::new(0, 1).is_ok());
        assert!(Proportion::new(1, 1).is_ok());
    }

    #[test]
    fn from_outcomes_counts() {
        let p = Proportion::from_outcomes([true, false, true, true]).unwrap();
        assert_eq!(p.successes(), 3);
        assert_eq!(p.trials(), 4);
        assert_eq!(
            Proportion::from_outcomes(std::iter::empty()),
            Err(StatsError::ZeroTrials)
        );
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Proportion::new(29, 100).unwrap().to_string(), "29%");
        assert_eq!(Proportion::new(12, 12).unwrap().to_string(), "100%");
    }

    #[test]
    fn normal_quantile_reference_values() {
        // Known values: z(0.975) = 1.959964, z(0.5) = 0, z(0.95) = 1.644854.
        assert!((standard_normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!(standard_normal_quantile(0.5).abs() < 1e-9);
        assert!((standard_normal_quantile(0.95) - 1.644854).abs() < 1e-5);
        assert!((standard_normal_quantile(0.025) + 1.959964).abs() < 1e-5);
    }

    #[test]
    fn wilson_interval_known_case() {
        // 8/10 at 95%: Wilson interval approximately [0.490, 0.943].
        let ci = Proportion::new(8, 10).unwrap().wilson_interval(0.95);
        assert!((ci.low - 0.490).abs() < 0.01, "low = {}", ci.low);
        assert!((ci.high - 0.943).abs() < 0.01, "high = {}", ci.high);
    }

    #[test]
    fn wilson_interval_is_proper_at_extremes() {
        let zero = Proportion::new(0, 20).unwrap().wilson_interval(0.95);
        assert_eq!(zero.low, 0.0);
        assert!(zero.high > 0.0 && zero.high < 0.3);
        let full = Proportion::new(20, 20).unwrap().wilson_interval(0.95);
        assert_eq!(full.high, 1.0);
        assert!(full.low > 0.7);
    }

    #[test]
    fn pooling_adds_counts() {
        let a = Proportion::new(3, 10).unwrap();
        let b = Proportion::new(7, 10).unwrap();
        let pooled = a.pooled(&b);
        assert_eq!(pooled.successes(), 10);
        assert_eq!(pooled.trials(), 20);
    }

    proptest! {
        #[test]
        fn wilson_contains_point_estimate(s in 0u64..50, extra in 1u64..50) {
            let trials = s + extra;
            let p = Proportion::new(s, trials).unwrap();
            let ci = p.wilson_interval(0.95);
            prop_assert!(ci.contains(p.point()));
            prop_assert!(ci.low >= 0.0 && ci.high <= 1.0);
        }

        #[test]
        fn more_trials_narrow_the_interval(s in 1u64..10) {
            let narrow = Proportion::new(s * 10, 100).unwrap().wilson_interval(0.95);
            let wide = Proportion::new(s, 10).unwrap().wilson_interval(0.95);
            prop_assert!(narrow.width() < wide.width());
        }

        #[test]
        fn higher_confidence_widens_the_interval(s in 0u64..20, extra in 1u64..20) {
            let p = Proportion::new(s, s + extra).unwrap();
            let ci90 = p.wilson_interval(0.90);
            let ci99 = p.wilson_interval(0.99);
            prop_assert!(ci99.width() >= ci90.width());
        }

        #[test]
        fn normal_quantile_is_monotone(p1 in 0.001f64..0.999, p2 in 0.001f64..0.999) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            prop_assert!(standard_normal_quantile(lo) <= standard_normal_quantile(hi) + 1e-9);
        }
    }
}
