//! Descriptive statistics, interval estimates, and plain-text rendering
//! utilities used throughout the RFID reliability reproduction.
//!
//! The DSN 2007 paper reports its results as *means with upper and lower
//! quartiles* (Figures 2 and 4) and as *success proportions* (Tables 1-5).
//! This crate provides exactly those estimators, plus the supporting pieces a
//! measurement harness needs: online accumulators, histograms, bootstrap
//! resampling, and table/bar-chart renderers for terminal reports.
//!
//! # Examples
//!
//! ```
//! use rfid_stats::{Summary, Proportion};
//!
//! let tags_read = [20.0, 19.0, 20.0, 18.0, 20.0];
//! let summary = Summary::from_samples(&tags_read);
//! assert_eq!(summary.max(), 20.0);
//! assert!(summary.mean() > 19.0);
//!
//! let detection = Proportion::new(58, 60).unwrap();
//! assert!(detection.point() > 0.9);
//! let ci = detection.wilson_interval(0.95);
//! assert!(ci.low <= detection.point() && detection.point() <= ci.high);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bootstrap;
mod chart;
mod error;
mod histogram;
mod online;
mod proportion;
mod quantile;
mod stream;
mod sum;
mod summary;
mod table;

pub use bootstrap::{bootstrap_mean_interval, BootstrapConfig};
pub use chart::BarChart;
pub use error::StatsError;
pub use histogram::Histogram;
pub use online::OnlineStats;
pub use proportion::{Interval, Proportion};
pub use quantile::{median, quantile, quantile_sorted, quartiles, Quartiles};
pub use stream::{
    ExactSum, QuantileSketch, StreamSummary, MAX_TRACKED_ABS, MIN_TRACKED_ABS, QUANTILE_ALPHA,
};
pub use sum::ordered_sum;
pub use summary::Summary;
pub use table::{Align, Table};
