//! Terminal bar charts for "figure" reproduction.
//!
//! The paper's Figures 5-7 are grouped bar charts (measured vs. calculated
//! reliability); this module renders the same series as horizontal ASCII
//! bars so the harness output is directly comparable to the figures.

use std::fmt;

/// A labelled horizontal bar chart.
///
/// # Examples
///
/// ```
/// let mut chart = rfid_stats::BarChart::new("Object tracking with redundancy", 40);
/// chart.bar("1 ant, 1 tag (measured)", 0.80);
/// chart.bar("1 ant, 1 tag (calculated)", 0.80);
/// chart.bar("2 ant, 2 tags (measured)", 1.00);
/// let text = chart.to_string();
/// assert!(text.contains("Object tracking"));
/// assert!(text.contains("100.0%"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    width: usize,
    bars: Vec<(String, f64)>,
    max_value: f64,
}

impl BarChart {
    /// Creates a chart with the given title and maximum bar width in
    /// characters. Values are assumed to lie in `[0, 1]` (reliabilities);
    /// use [`BarChart::with_max`] for other scales.
    #[must_use]
    pub fn new(title: &str, width: usize) -> Self {
        Self {
            title: title.to_owned(),
            width: width.max(1),
            bars: Vec::new(),
            max_value: 1.0,
        }
    }

    /// Sets the full-scale value that maps to a full-width bar.
    ///
    /// # Panics
    ///
    /// Panics if `max` is not strictly positive.
    #[must_use]
    pub fn with_max(mut self, max: f64) -> Self {
        assert!(max > 0.0, "chart maximum must be positive");
        self.max_value = max;
        self
    }

    /// Adds a bar. Values are clamped to `[0, max]` for rendering but shown
    /// numerically as given.
    pub fn bar(&mut self, label: &str, value: f64) -> &mut Self {
        self.bars.push((label.to_owned(), value));
        self
    }

    /// Number of bars added.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bars.len()
    }

    /// Whether the chart has no bars.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bars.is_empty()
    }
}

impl fmt::Display for BarChart {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let label_width = self
            .bars
            .iter()
            .map(|(l, _)| l.chars().count())
            .max()
            .unwrap_or(0);
        for (label, value) in &self.bars {
            let frac = (value / self.max_value).clamp(0.0, 1.0);
            let filled = (frac * self.width as f64).round() as usize;
            writeln!(
                f,
                "  {label:<label_width$} |{}{}| {:>6.1}%",
                "#".repeat(filled),
                " ".repeat(self.width - filled),
                value * 100.0 / self.max_value.max(f64::MIN_POSITIVE)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_title_and_bars() {
        let mut c = BarChart::new("demo", 10);
        c.bar("a", 0.5).bar("b", 1.0);
        let text = c.to_string();
        assert!(text.starts_with("demo\n"));
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("#####"));
    }

    #[test]
    fn full_value_fills_the_bar() {
        let mut c = BarChart::new("demo", 8);
        c.bar("x", 1.0);
        assert!(c.to_string().contains(&"#".repeat(8)));
    }

    #[test]
    fn values_above_max_are_clamped_for_rendering() {
        let mut c = BarChart::new("demo", 8);
        c.bar("x", 2.0);
        let text = c.to_string();
        assert!(text.contains(&"#".repeat(8)));
        assert!(text.contains("200.0%"));
    }

    #[test]
    fn custom_scale_rescales_percentages() {
        let mut c = BarChart::new("tags read", 10).with_max(20.0);
        c.bar("1 m", 20.0);
        c.bar("5 m", 10.0);
        let text = c.to_string();
        assert!(text.contains("100.0%"));
        assert!(text.contains("50.0%"));
    }

    #[test]
    fn empty_chart_is_just_the_title() {
        let c = BarChart::new("empty", 10);
        assert!(c.is_empty());
        assert_eq!(c.to_string(), "empty\n");
    }

    #[test]
    #[should_panic(expected = "chart maximum must be positive")]
    fn with_max_validates() {
        let _ = BarChart::new("bad", 5).with_max(0.0);
    }
}
