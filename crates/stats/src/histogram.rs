//! Fixed-bin histograms for distribution inspection.

use crate::StatsError;

/// A histogram with uniform bins over `[low, high)`.
///
/// Samples below `low` are counted in the underflow bucket, samples at or
/// above `high` in the overflow bucket, so no data is silently dropped.
///
/// # Examples
///
/// ```
/// let mut h = rfid_stats::Histogram::new(0.0, 10.0, 5)?;
/// for x in [0.5, 1.5, 2.5, 2.6, 11.0] {
///     h.record(x);
/// }
/// assert_eq!(h.count(0), 2); // 0.5 and 1.5 fall in [0, 2)
/// assert_eq!(h.count(1), 2); // 2.5 and 2.6 fall in [2, 4)
/// assert_eq!(h.overflow(), 1);
/// assert_eq!(h.total(), 5);
/// # Ok::<(), rfid_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    low: f64,
    high: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
    nan: u64,
}

impl Histogram {
    /// Creates a histogram spanning `[low, high)` with `bins` uniform bins.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::BadHistogramConfig`] if `bins == 0`, the range is
    /// degenerate, or either bound is not finite.
    pub fn new(low: f64, high: f64, bins: usize) -> Result<Self, StatsError> {
        if bins == 0 {
            return Err(StatsError::BadHistogramConfig {
                reason: "bin count must be positive".to_owned(),
            });
        }
        if !(low.is_finite() && high.is_finite()) || low >= high {
            return Err(StatsError::BadHistogramConfig {
                reason: format!("range [{low}, {high}) is not a valid finite range"),
            });
        }
        Ok(Self {
            low,
            high,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            nan: 0,
        })
    }

    /// Records one sample. NaN goes to its own counter ([`Histogram::nan`]):
    /// it fails both range comparisons, and the historical fall-through
    /// silently counted it in bin 0 (`NaN as usize == 0`).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
        } else if x < self.low {
            self.underflow += 1;
        } else if x >= self.high {
            self.overflow += 1;
        } else {
            let frac = (x - self.low) / (self.high - self.low);
            let idx = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Number of bins.
    #[must_use]
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Count in bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Inclusive-exclusive bounds of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.bins()`.
    #[must_use]
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        assert!(i < self.counts.len(), "bin index out of range");
        let width = (self.high - self.low) / self.counts.len() as f64;
        (
            self.low + width * i as f64,
            self.low + width * (i + 1) as f64,
        )
    }

    /// Samples that fell below the range.
    #[must_use]
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples that fell at or above the range.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// NaN samples recorded (binless: NaN compares outside every range).
    #[must_use]
    pub fn nan(&self) -> u64 {
        self.nan
    }

    /// Total samples recorded, including under/overflow and NaN.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow + self.nan
    }

    /// Iterator over `(bin_low, bin_high, count)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        (0..self.bins()).map(|i| {
            let (lo, hi) = self.bin_bounds(i);
            (lo, hi, self.counts[i])
        })
    }
}

impl Extend<f64> for Histogram {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.record(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(2.0, 1.0, 4).is_err());
        assert!(Histogram::new(f64::NAN, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 4).is_ok());
    }

    #[test]
    fn boundary_samples_route_correctly() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.record(0.0); // first bin (inclusive low)
        h.record(4.0); // overflow (exclusive high)
        h.record(-0.001); // underflow
        h.record(3.999); // last bin
        assert_eq!(h.count(0), 1);
        assert_eq!(h.count(3), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn nan_is_counted_separately_not_in_bin_zero() {
        let mut h = Histogram::new(0.0, 4.0, 4).unwrap();
        h.record(f64::NAN);
        h.record(-f64::NAN);
        assert_eq!(h.nan(), 2);
        assert_eq!(h.count(0), 0, "NaN must not leak into bin 0");
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn bin_bounds_partition_the_range() {
        let h = Histogram::new(-1.0, 1.0, 4).unwrap();
        assert_eq!(h.bin_bounds(0), (-1.0, -0.5));
        assert_eq!(h.bin_bounds(3), (0.5, 1.0));
    }

    proptest! {
        #[test]
        fn total_equals_samples_recorded(data in proptest::collection::vec(-10.0f64..10.0, 0..500)) {
            let mut h = Histogram::new(-5.0, 5.0, 10).unwrap();
            h.extend(data.iter().copied());
            prop_assert_eq!(h.total(), data.len() as u64);
        }

        #[test]
        fn every_in_range_sample_lands_in_its_bin(x in 0.0f64..1.0) {
            let mut h = Histogram::new(0.0, 1.0, 7).unwrap();
            h.record(x);
            let idx = (0..7).find(|&i| {
                let (lo, hi) = h.bin_bounds(i);
                lo <= x && x < hi
            });
            if let Some(i) = idx {
                prop_assert_eq!(h.count(i), 1);
            }
        }
    }
}
