//! Quantile estimation.
//!
//! Uses the "type 7" linear-interpolation definition (the default in R and
//! NumPy): for a sorted sample `x[0..n]` and rank `p`, the quantile is the
//! value at fractional index `p * (n - 1)`.

use crate::StatsError;

/// Lower quartile, median, and upper quartile of a sample.
///
/// The paper's Figures 2 and 4 report exactly these three statistics for each
/// experimental cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// 25th percentile.
    pub lower: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub upper: f64,
}

impl Quartiles {
    /// Interquartile range (`upper - lower`).
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Computes the `p`-quantile of `samples` (unsorted input is fine).
///
/// Samples are ordered by IEEE `total_cmp`, so `-0.0` sorts before
/// `+0.0` deterministically.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `samples` is empty,
/// [`StatsError::OutOfRange`] if `p` is not in `[0, 1]` or is NaN, and
/// [`StatsError::NanSample`] if any sample is NaN (NaN has no rank).
///
/// # Examples
///
/// ```
/// let q = rfid_stats::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap();
/// assert_eq!(q, 2.5);
/// ```
pub fn quantile(samples: &[f64], p: f64) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::OutOfRange {
            value: format!("{p}"),
        });
    }
    if samples.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanSample);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(quantile_sorted(&sorted, p))
}

/// Computes the `p`-quantile of an already-sorted sample.
///
/// This is the allocation-free building block behind [`quantile`]; use it when
/// computing many quantiles of the same data. It is total: an empty
/// slice returns NaN (documented, instead of the historical
/// out-of-bounds panic in release builds), a single sample is every
/// quantile, and `p` is clamped to `[0, 1]`. Callers who need a typed
/// error for the empty case should use [`quantile`].
#[must_use]
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 0 {
        return f64::NAN;
    }
    if n == 1 {
        return sorted[0];
    }
    let idx = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi || sorted[lo] == sorted[hi] {
        // The equal-endpoints case avoids a 1-ulp interpolation wobble
        // (v*(1-f) + v*f need not round back to exactly v).
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Computes the median of `samples`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `samples` is empty and
/// [`StatsError::NanSample`] if any sample is NaN.
pub fn median(samples: &[f64]) -> Result<f64, StatsError> {
    quantile(samples, 0.5)
}

/// Computes lower quartile, median, and upper quartile in one pass.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `samples` is empty and
/// [`StatsError::NanSample`] if any sample is NaN.
///
/// # Examples
///
/// ```
/// let q = rfid_stats::quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(q.median, 3.0);
/// assert_eq!(q.lower, 2.0);
/// assert_eq!(q.upper, 4.0);
/// ```
pub fn quartiles(samples: &[f64]) -> Result<Quartiles, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if samples.iter().any(|x| x.is_nan()) {
        return Err(StatsError::NanSample);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    Ok(Quartiles {
        lower: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.5),
        upper: quantile_sorted(&sorted, 0.75),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_sample_is_every_quantile() {
        for p in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&[7.5], p).unwrap(), 7.5);
        }
    }

    #[test]
    fn endpoints_are_min_and_max() {
        let data = [3.0, 1.0, 2.0, 9.0, -4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), -4.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(quantile(&[], 0.5), Err(StatsError::EmptyInput));
        assert_eq!(quartiles(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn out_of_range_rank_is_an_error() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::OutOfRange { .. })
        ));
        assert!(matches!(
            quantile(&[1.0], -0.1),
            Err(StatsError::OutOfRange { .. })
        ));
    }

    #[test]
    fn nan_samples_are_a_typed_error_not_a_panic() {
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), Err(StatsError::NanSample));
        assert_eq!(quartiles(&[f64::NAN]), Err(StatsError::NanSample));
        assert_eq!(median(&[0.0, f64::NAN, 2.0]), Err(StatsError::NanSample));
    }

    #[test]
    fn quantile_sorted_is_total_on_empty_input() {
        // Historically an out-of-bounds panic in release builds; now a
        // documented NaN.
        assert!(quantile_sorted(&[], 0.5).is_nan());
        assert!(quantile_sorted(&[], 0.0).is_nan());
    }

    #[test]
    fn all_equal_samples_have_degenerate_quartiles() {
        let q = quartiles(&[4.2; 9]).unwrap();
        assert_eq!(q.lower, 4.2);
        assert_eq!(q.median, 4.2);
        assert_eq!(q.upper, 4.2);
        assert_eq!(q.iqr(), 0.0);
    }

    #[test]
    fn signed_zeros_order_deterministically() {
        // total_cmp puts -0.0 before +0.0, so the endpoints are exact
        // down to the sign bit.
        let q0 = quantile(&[0.0, -0.0], 0.0).unwrap();
        let q1 = quantile(&[0.0, -0.0], 1.0).unwrap();
        assert_eq!(q0.to_bits(), (-0.0f64).to_bits());
        assert_eq!(q1.to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn iqr_matches_quartile_difference() {
        let q = quartiles(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        assert!((q.iqr() - (q.upper - q.lower)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn quantiles_are_ordered(mut data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let q = quartiles(&data).unwrap();
            prop_assert!(q.lower <= q.median);
            prop_assert!(q.median <= q.upper);
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(q.lower >= data[0]);
            prop_assert!(q.upper <= *data.last().unwrap());
        }

        #[test]
        fn quantile_is_monotone_in_p(data in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                     p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let qlo = quantile(&data, lo).unwrap();
            let qhi = quantile(&data, hi).unwrap();
            prop_assert!(qlo <= qhi);
        }

        #[test]
        fn quantile_is_within_sample_bounds(data in proptest::collection::vec(-1e3f64..1e3, 1..100),
                                            p in 0.0f64..1.0) {
            let q = quantile(&data, p).unwrap();
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q >= min - 1e-9 && q <= max + 1e-9);
        }
    }
}
