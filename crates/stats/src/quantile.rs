//! Quantile estimation.
//!
//! Uses the "type 7" linear-interpolation definition (the default in R and
//! NumPy): for a sorted sample `x[0..n]` and rank `p`, the quantile is the
//! value at fractional index `p * (n - 1)`.

use crate::StatsError;

/// Lower quartile, median, and upper quartile of a sample.
///
/// The paper's Figures 2 and 4 report exactly these three statistics for each
/// experimental cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quartiles {
    /// 25th percentile.
    pub lower: f64,
    /// 50th percentile.
    pub median: f64,
    /// 75th percentile.
    pub upper: f64,
}

impl Quartiles {
    /// Interquartile range (`upper - lower`).
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.upper - self.lower
    }
}

/// Computes the `p`-quantile of `samples` (unsorted input is fine).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `samples` is empty and
/// [`StatsError::OutOfRange`] if `p` is not in `[0, 1]` or is NaN.
///
/// # Examples
///
/// ```
/// let q = rfid_stats::quantile(&[1.0, 2.0, 3.0, 4.0], 0.5).unwrap();
/// assert_eq!(q, 2.5);
/// ```
pub fn quantile(samples: &[f64], p: f64) -> Result<f64, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(StatsError::OutOfRange {
            value: format!("{p}"),
        });
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    Ok(quantile_sorted(&sorted, p))
}

/// Computes the `p`-quantile of an already-sorted, non-empty sample.
///
/// This is the allocation-free building block behind [`quantile`]; use it when
/// computing many quantiles of the same data.
///
/// # Panics
///
/// Panics in debug builds if `sorted` is empty.
#[must_use]
pub fn quantile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let idx = p.clamp(0.0, 1.0) * (n - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    if lo == hi || sorted[lo] == sorted[hi] {
        // The equal-endpoints case avoids a 1-ulp interpolation wobble
        // (v*(1-f) + v*f need not round back to exactly v).
        sorted[lo]
    } else {
        let frac = idx - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Computes the median of `samples`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `samples` is empty.
pub fn median(samples: &[f64]) -> Result<f64, StatsError> {
    quantile(samples, 0.5)
}

/// Computes lower quartile, median, and upper quartile in one pass.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] if `samples` is empty.
///
/// # Examples
///
/// ```
/// let q = rfid_stats::quartiles(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
/// assert_eq!(q.median, 3.0);
/// assert_eq!(q.lower, 2.0);
/// assert_eq!(q.upper, 4.0);
/// ```
pub fn quartiles(samples: &[f64]) -> Result<Quartiles, StatsError> {
    if samples.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("samples must not contain NaN"));
    Ok(Quartiles {
        lower: quantile_sorted(&sorted, 0.25),
        median: quantile_sorted(&sorted, 0.5),
        upper: quantile_sorted(&sorted, 0.75),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_sample_is_every_quantile() {
        for p in [0.0, 0.25, 0.5, 1.0] {
            assert_eq!(quantile(&[7.5], p).unwrap(), 7.5);
        }
    }

    #[test]
    fn endpoints_are_min_and_max() {
        let data = [3.0, 1.0, 2.0, 9.0, -4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), -4.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 9.0);
    }

    #[test]
    fn median_of_even_sample_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]).unwrap(), 2.5);
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(quantile(&[], 0.5), Err(StatsError::EmptyInput));
        assert_eq!(quartiles(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn out_of_range_rank_is_an_error() {
        assert!(matches!(
            quantile(&[1.0], 1.5),
            Err(StatsError::OutOfRange { .. })
        ));
        assert!(matches!(
            quantile(&[1.0], -0.1),
            Err(StatsError::OutOfRange { .. })
        ));
    }

    #[test]
    fn iqr_matches_quartile_difference() {
        let q = quartiles(&[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]).unwrap();
        assert!((q.iqr() - (q.upper - q.lower)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn quantiles_are_ordered(mut data in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let q = quartiles(&data).unwrap();
            prop_assert!(q.lower <= q.median);
            prop_assert!(q.median <= q.upper);
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(q.lower >= data[0]);
            prop_assert!(q.upper <= *data.last().unwrap());
        }

        #[test]
        fn quantile_is_monotone_in_p(data in proptest::collection::vec(-1e6f64..1e6, 1..100),
                                     p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let qlo = quantile(&data, lo).unwrap();
            let qhi = quantile(&data, hi).unwrap();
            prop_assert!(qlo <= qhi);
        }

        #[test]
        fn quantile_is_within_sample_bounds(data in proptest::collection::vec(-1e3f64..1e3, 1..100),
                                            p in 0.0f64..1.0) {
            let q = quantile(&data, p).unwrap();
            let min = data.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(q >= min - 1e-9 && q <= max + 1e-9);
        }
    }
}
