//! Five-number-style summaries of experimental samples.

use crate::quantile::{quartiles, Quartiles};
use crate::StatsError;

/// A summary of a numeric sample: count, mean, standard deviation, extrema,
/// and quartiles.
///
/// This is the unit of reporting for the paper's per-cell measurements, e.g.
/// "average number of tags read, and the upper and lower quartiles"
/// (Figures 2 and 4).
///
/// # Examples
///
/// ```
/// let s = rfid_stats::Summary::from_samples(&[18.0, 19.0, 20.0, 20.0, 20.0]);
/// assert_eq!(s.len(), 5);
/// assert_eq!(s.max(), 20.0);
/// assert!(s.mean() > 19.0 && s.mean() < 20.0);
/// assert_eq!(s.quartiles().median, 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    n: usize,
    mean: f64,
    std_dev: f64,
    min: f64,
    max: f64,
    quartiles: Quartiles,
}

impl Summary {
    /// Builds a summary from a slice of samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN. Use [`Summary::try_from_samples`]
    /// for fallible construction.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        Self::try_from_samples(samples).expect("samples must be non-empty")
    }

    /// Builds a summary from a slice of samples.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::EmptyInput`] if `samples` is empty.
    pub fn try_from_samples(samples: &[f64]) -> Result<Self, StatsError> {
        if samples.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let n = samples.len();
        let mean = crate::ordered_sum(samples.iter().copied()) / n as f64;
        let var = if n > 1 {
            crate::ordered_sum(samples.iter().map(|x| (x - mean).powi(2))) / (n - 1) as f64
        } else {
            0.0
        };
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Ok(Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
            quartiles: quartiles(samples)?,
        })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the summary covers zero samples (never true for a constructed
    /// summary, kept for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sample mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample standard deviation (Bessel-corrected; zero for `n == 1`).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Lower quartile, median, and upper quartile.
    #[must_use]
    pub fn quartiles(&self) -> Quartiles {
        self.quartiles
    }

    /// Mean rescaled by a denominator, e.g. tags read out of 20 as a
    /// fraction in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `denom` is not strictly positive.
    #[must_use]
    pub fn mean_fraction(&self, denom: f64) -> f64 {
        assert!(denom > 0.0, "denominator must be positive");
        self.mean / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_sample_summary() {
        let s = Summary::from_samples(&[4.0]);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), 4.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.quartiles().median, 4.0);
    }

    #[test]
    fn known_standard_deviation() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_is_an_error() {
        assert_eq!(Summary::try_from_samples(&[]), Err(StatsError::EmptyInput));
    }

    #[test]
    fn mean_fraction_rescales() {
        let s = Summary::from_samples(&[10.0, 20.0]);
        assert!((s.mean_fraction(20.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "denominator must be positive")]
    fn mean_fraction_rejects_zero_denominator() {
        let _ = Summary::from_samples(&[1.0]).mean_fraction(0.0);
    }

    proptest! {
        #[test]
        fn mean_lies_between_extrema(data in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let s = Summary::from_samples(&data);
            prop_assert!(s.min() <= s.mean() + 1e-9);
            prop_assert!(s.mean() <= s.max() + 1e-9);
            prop_assert!(s.std_dev() >= 0.0);
        }

        #[test]
        fn shifting_data_shifts_mean_only(data in proptest::collection::vec(-1e3f64..1e3, 2..100),
                                          shift in -1e3f64..1e3) {
            let base = Summary::from_samples(&data);
            let shifted: Vec<f64> = data.iter().map(|x| x + shift).collect();
            let moved = Summary::from_samples(&shifted);
            prop_assert!((moved.mean() - base.mean() - shift).abs() < 1e-6);
            prop_assert!((moved.std_dev() - base.std_dev()).abs() < 1e-6);
        }
    }
}
