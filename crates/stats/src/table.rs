//! Plain-text table rendering for experiment reports.

use std::fmt;

/// Column alignment for [`Table`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default).
    #[default]
    Left,
    /// Right-aligned, typical for numbers.
    Right,
    /// Centered.
    Center,
}

/// A simple monospace table builder.
///
/// Used by the experiment harness to print paper-style tables side by side
/// with the reproduction's measured values.
///
/// # Examples
///
/// ```
/// use rfid_stats::{Table, Align};
///
/// let mut t = Table::new(vec!["Tag location".into(), "Reliability".into()]);
/// t.align(1, Align::Right);
/// t.row(vec!["Front".into(), "87%".into()]);
/// t.row(vec!["Top".into(), "29%".into()]);
/// let text = t.to_string();
/// assert!(text.contains("Front"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: Vec<String>) -> Self {
        let cols = headers.len();
        Self {
            headers,
            aligns: vec![Align::Left; cols],
            rows: Vec::new(),
        }
    }

    /// Sets the alignment of column `col`.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn align(&mut self, col: usize, align: Align) -> &mut Self {
        assert!(col < self.headers.len(), "column index out of range");
        self.aligns[col] = align;
        self
    }

    /// Appends a data row. Short rows are padded with empty cells; long rows
    /// are truncated to the header width.
    pub fn row(&mut self, mut cells: Vec<String>) -> &mut Self {
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Appends a horizontal separator row.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators included).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.chars().count());
                }
            }
        }
        widths
    }

    fn pad(cell: &str, width: usize, align: Align) -> String {
        let len = cell.chars().count();
        let gap = width.saturating_sub(len);
        match align {
            Align::Left => format!("{cell}{}", " ".repeat(gap)),
            Align::Right => format!("{}{cell}", " ".repeat(gap)),
            Align::Center => {
                let left = gap / 2;
                format!("{}{cell}{}", " ".repeat(left), " ".repeat(gap - left))
            }
        }
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let rule: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {} ", Self::pad(c, widths[i], self.aligns[i])))
                .collect::<Vec<_>>()
                .join("|")
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        writeln!(f, "{rule}")?;
        for row in &self.rows {
            if row.is_empty() {
                writeln!(f, "{rule}")?;
            } else {
                writeln!(f, "{}", render_row(row))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(vec!["loc".into(), "rel".into()]);
        t.align(1, Align::Right);
        t.row(vec!["Front".into(), "87%".into()]);
        t.separator();
        t.row(vec!["Average".into(), "63%".into()]);
        t
    }

    #[test]
    fn renders_all_rows() {
        let text = sample_table().to_string();
        let lines: Vec<&str> = text.lines().collect();
        // header + rule + row + separator + row
        assert_eq!(lines.len(), 5);
        assert!(lines[2].contains("Front"));
        assert!(lines[4].contains("Average"));
    }

    #[test]
    fn columns_are_aligned() {
        let text = sample_table().to_string();
        let pipe_positions: Vec<Vec<usize>> = text
            .lines()
            .filter(|l| l.contains('|'))
            .map(|l| {
                l.char_indices()
                    .filter(|(_, c)| *c == '|')
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        for w in pipe_positions.windows(2) {
            assert_eq!(w[0], w[1], "pipe columns should line up");
        }
    }

    #[test]
    fn right_alignment_pads_on_the_left() {
        assert_eq!(Table::pad("7", 3, Align::Right), "  7");
        assert_eq!(Table::pad("7", 3, Align::Left), "7  ");
        assert_eq!(Table::pad("7", 3, Align::Center), " 7 ");
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["x".into()]);
        assert_eq!(t.row_count(), 1);
        let text = t.to_string();
        assert!(text.lines().count() == 3);
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn align_validates_column() {
        Table::new(vec!["a".into()]).align(5, Align::Right);
    }
}
