use std::error::Error;
use std::fmt;

/// Error type for statistics construction and computation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// An operation that requires at least one sample was given none.
    EmptyInput,
    /// A proportion was constructed with more successes than trials.
    SuccessesExceedTrials {
        /// Number of successes supplied.
        successes: u64,
        /// Number of trials supplied.
        trials: u64,
    },
    /// A proportion was constructed with zero trials.
    ZeroTrials,
    /// A probability or quantile rank was outside `[0, 1]`.
    OutOfRange {
        /// The offending value, formatted for display.
        value: String,
    },
    /// A histogram was configured with a degenerate range or zero bins.
    BadHistogramConfig {
        /// Human-readable description of the problem.
        reason: String,
    },
    /// A sample set contained NaN where a totally ordered computation
    /// (sorting-based quantiles) requires real values.
    NanSample,
    /// A serialized accumulator was truncated or malformed.
    BadEncoding {
        /// Human-readable description of the problem.
        reason: String,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => write!(f, "input sample set is empty"),
            StatsError::SuccessesExceedTrials { successes, trials } => {
                write!(f, "successes ({successes}) exceed trials ({trials})")
            }
            StatsError::ZeroTrials => write!(f, "proportion requires at least one trial"),
            StatsError::OutOfRange { value } => {
                write!(f, "value {value} is outside the unit interval")
            }
            StatsError::BadHistogramConfig { reason } => {
                write!(f, "invalid histogram configuration: {reason}")
            }
            StatsError::NanSample => {
                write!(f, "sample set contains NaN, which has no rank")
            }
            StatsError::BadEncoding { reason } => {
                write!(f, "malformed accumulator encoding: {reason}")
            }
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let err = StatsError::SuccessesExceedTrials {
            successes: 5,
            trials: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains('5') && msg.contains('3'));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<StatsError>();
    }
}
