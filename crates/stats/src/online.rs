//! Single-pass (online) moment accumulation.

/// Welford's online algorithm for mean and variance.
///
/// Useful inside simulation loops where materializing every sample would be
/// wasteful (e.g. per-slot SINR traces across millions of Gen-2 slots).
///
/// # Examples
///
/// ```
/// let mut acc = rfid_stats::OnlineStats::new();
/// for x in [1.0, 2.0, 3.0] {
///     acc.push(x);
/// }
/// assert_eq!(acc.len(), 3);
/// assert!((acc.mean() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples pushed so far.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Whether no samples have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Current mean (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (Bessel-corrected; 0 for fewer than two samples).
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.n > 1 {
            self.m2 / (self.n - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`+inf` when empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (`-inf` when empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let total = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / total as f64;
        self.n = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = OnlineStats::new();
        acc.extend(iter);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Summary;
    use proptest::prelude::*;

    #[test]
    fn matches_batch_summary() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let online: OnlineStats = data.iter().copied().collect();
        let batch = Summary::from_samples(&data);
        assert!((online.mean() - batch.mean()).abs() < 1e-12);
        assert!((online.std_dev() - batch.std_dev()).abs() < 1e-12);
        assert_eq!(online.min(), batch.min());
        assert_eq!(online.max(), batch.max());
    }

    #[test]
    fn empty_accumulator_defaults() {
        let acc = OnlineStats::new();
        assert!(acc.is_empty());
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.variance(), 0.0);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);

        let mut empty = OnlineStats::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    proptest! {
        #[test]
        fn merge_equals_concatenation(a in proptest::collection::vec(-1e4f64..1e4, 0..100),
                                      b in proptest::collection::vec(-1e4f64..1e4, 0..100)) {
            let mut left: OnlineStats = a.iter().copied().collect();
            let right: OnlineStats = b.iter().copied().collect();
            left.merge(&right);

            let combined: OnlineStats = a.iter().chain(b.iter()).copied().collect();
            prop_assert_eq!(left.len(), combined.len());
            if !a.is_empty() || !b.is_empty() {
                prop_assert!((left.mean() - combined.mean()).abs() < 1e-6);
                prop_assert!((left.variance() - combined.variance()).abs() < 1e-4);
            }
        }
    }
}
