//! Order-explicit float accumulation.
//!
//! Floating-point addition is not associative, so the *order* of a sum is
//! part of a result's identity: the repository's bit-replay guarantee
//! (same seed ⇒ same bits at any thread count) only holds if every
//! accumulation runs in a defined order. `Iterator::sum::<f64>()` happens
//! to fold left-to-right today, but nothing in the signature says so, and
//! the `rfid-audit` pass therefore forbids it in deterministic crates.
//! [`ordered_sum`] is the sanctioned spelling: an explicit sequential
//! left-to-right fold, bit-identical to `sum()` over the same iterator,
//! with the ordering contract in its name and documentation.

/// Sums `values` strictly left-to-right, one addition per element.
///
/// Bit-identical to `values.into_iter().sum::<f64>()`; exists so call
/// sites state (and the audit gate can verify) that the iteration source
/// is ordered — a slice, a `Vec`, a `BTreeMap` — never a hash table.
///
/// # Examples
///
/// ```
/// use rfid_stats::ordered_sum;
///
/// let xs = [0.1, 0.2, 0.3];
/// assert_eq!(ordered_sum(xs), 0.1 + 0.2 + 0.3);
/// assert_eq!(ordered_sum(xs.iter().copied()), ordered_sum(xs));
/// assert_eq!(ordered_sum([]), 0.0);
/// ```
#[must_use]
pub fn ordered_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().fold(0.0, |acc, x| acc + x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_iterator_sum_bitwise() {
        // Adversarial magnitudes: cancellation makes order visible, so
        // bit-comparing against `sum()` proves the fold order matches.
        let xs = [1e16, 1.0, -1e16, 1.0, 0.1, -0.1, 3.5e-20];
        assert_eq!(
            ordered_sum(xs).to_bits(),
            xs.iter().copied().sum::<f64>().to_bits()
        );
    }

    #[test]
    fn respects_order() {
        // 1e16 + 1 + (-1e16) loses the 1; reordering recovers it. The
        // helper must follow the given order, not re-associate.
        let forward = ordered_sum([1e16, 1.0, -1e16]);
        let reordered = ordered_sum([1e16, -1e16, 1.0]);
        assert_eq!(forward, 0.0);
        assert_eq!(reordered, 1.0);
    }
}
