//! Offline stand-in for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as
//! documentation of intent — no serializer backend (serde_json etc.) is
//! present — so these derives expand to nothing. They still register the
//! `#[serde(...)]` helper attribute so field/container attributes parse.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
