//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access and the workspace never
//! actually serializes through serde (CSV/XML export is hand-rolled), so
//! this crate provides blanket-implemented marker traits and re-exports
//! the no-op derives. Swapping the real serde back in is a one-line
//! change in the workspace manifest.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types. Blanket-implemented: every type
/// trivially satisfies bounds written against it.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker for owned-deserializable types. Blanket-implemented.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}
