//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the *exact* API surface it consumes: [`Rng`], [`SeedableRng`],
//! and [`rngs::SmallRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic, fast, and statistically solid for
//! simulation and test workloads. Sequences differ from upstream `rand`;
//! nothing in this workspace depends on upstream's exact streams.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit values.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their full value range.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Types with a uniform sampler over sub-ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)`; `high` is never produced.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                let draw = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                ((low as $wide as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u128 => u128, i128 => u128
);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f32::sample(rng) * (high - low)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                if low == high {
                    return low;
                }
                if high < <$t>::MAX {
                    return <$t>::sample_range(rng, low, high + 1);
                }
                // Full-width inclusive range: reuse the raw draw.
                <$t as Standard>::sample(rng)
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = self.into_inner();
        low + f64::sample(rng) * (high - low)
    }
}

/// The user-facing random-value interface, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value sampled uniformly over the type's natural range.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value sampled uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Buffers fillable with random data via [`Rng::fill`].
pub trait Fill {
    /// Overwrites `self` with data drawn from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for chunk in self.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        self.as_mut_slice().fill_from(rng);
    }
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            // xoshiro requires a nonzero state; splitmix64 output of any
            // seed is never all-zero across four draws, but guard anyway.
            if s == [0, 0, 0, 0] {
                return SmallRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gen_range_is_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(0..37);
            assert!(v < 37);
            let f: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: u8 = rng.gen_range(5..=9);
            assert!((5..=9).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / f64::from(n) - 0.5).abs() < 0.02);
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
