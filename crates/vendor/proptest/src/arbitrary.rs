//! `any::<T>()` — the canonical strategy for a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Mostly printable ASCII with a sprinkle of wider code points.
        if rng.below(8) == 0 {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('\u{FFFD}')
        } else {
            (b' ' + rng.below(95) as u8) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite values across a broad dynamic range, signed.
        let mag = (rng.next_f64() * 2.0 - 1.0) * 1e9;
        match rng.below(16) {
            0 => 0.0,
            1 => mag * 1e-12,
            _ => mag,
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical whole-domain strategy for `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
