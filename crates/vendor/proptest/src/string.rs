//! String strategies from a small regex subset.
//!
//! A `&str` used as a strategy is interpreted as a concatenation of
//! atoms, each optionally quantified:
//!
//! * `.` — any printable ASCII character (plus tab),
//! * `[abc]`, `[a-z0-9-]`, `[ -~]` — character classes with ranges and
//!   `\`-escapes (negation is not supported),
//! * any other character (or `\x` escape) — itself,
//! * `{n}`, `{m,n}`, `?`, `*`, `+` — quantifiers (`*`/`+` cap at 8).
//!
//! This covers every pattern the workspace's property tests use.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn printable() -> Vec<char> {
    let mut set: Vec<char> = (' '..='~').collect();
    set.push('\t');
    set
}

/// Parses the regex subset; panics on constructs it does not support so
/// misuse is loud rather than silently wrong.
fn parse(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '.' => {
                i += 1;
                printable()
            }
            '[' => {
                i += 1;
                let mut set = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    let c = if chars[i] == '\\' {
                        i += 1;
                        *chars
                            .get(i)
                            .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"))
                    } else {
                        chars[i]
                    };
                    // Range `a-z` when a `-` sits between two members.
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&e| e != ']')
                    {
                        let mut end = chars[i + 2];
                        let mut skip = 3;
                        if end == '\\' {
                            end = *chars
                                .get(i + 3)
                                .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"));
                            skip = 4;
                        }
                        assert!(c <= end, "reversed class range in `{pattern}`");
                        set.extend(c..=end);
                        i += skip;
                    } else {
                        set.push(c);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in `{pattern}`");
                i += 1; // consume ']'
                assert!(!set.is_empty(), "empty class in `{pattern}`");
                set
            }
            '\\' => {
                i += 1;
                let c = *chars
                    .get(i)
                    .unwrap_or_else(|| panic!("dangling escape in `{pattern}`"));
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };

        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated quantifier in `{pattern}`"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.parse().expect("quantifier lower bound"),
                        hi.parse().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.parse().expect("quantifier count");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "reversed quantifier in `{pattern}`");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse(self) {
            let count = atom.min + rng.below(atom.max - atom.min + 1);
            for _ in 0..count {
                out.push(atom.choices[rng.below(atom.choices.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::new(17)
    }

    #[test]
    fn class_with_range_and_literal() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z0-9-]{0,8}".sample(&mut rng);
            assert!(s.len() <= 8);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn concatenation_of_atoms() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9-]{0,8}".sample(&mut rng);
            assert!(!s.is_empty() && s.len() <= 9);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn dot_is_printable() {
        let mut rng = rng();
        let mut max_len = 0;
        for _ in 0..50 {
            let s = ".{0,256}".sample(&mut rng);
            max_len = max_len.max(s.chars().count());
            assert!(s.chars().count() <= 256);
        }
        assert!(max_len > 64, "quantifier should explore long strings");
    }

    #[test]
    fn escaped_dash_in_class() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[<>/a-z \\-]{0,128}".sample(&mut rng);
            assert!(s
                .chars()
                .all(|c| "<>/ -".contains(c) || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = "[ -~]{0,64}".sample(&mut rng);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
