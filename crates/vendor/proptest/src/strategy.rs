//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for sampling values of a type from a
//! [`TestRng`]. Unlike upstream proptest there is no shrinking: failures
//! report the deterministic seed instead, which reproduces the exact
//! failing case on re-run.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates from the strategy produced by applying `f` to a sample.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values for which `pred` holds, resampling otherwise.
    fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds recursive values: `recurse` receives the strategy for the
    /// previous depth level and returns the strategy for one level deeper.
    /// `depth` bounds nesting; the remaining parameters exist for
    /// signature compatibility with upstream proptest.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = recurse(strat).boxed();
            strat = Union {
                options: vec![leaf.clone(), deeper],
            }
            .boxed();
        }
        strat
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.sample(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("prop_filter: no value satisfied `{}`", self.whence);
    }
}

/// Uniform choice between strategies of a common value type; the
/// expansion of `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Chooses uniformly among `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                ((self.start as i128 as u128).wrapping_add(draw)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (low, high) = (*self.start(), *self.end());
                assert!(low <= high, "empty range strategy");
                let span = ((high as i128).wrapping_sub(low as i128) as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width u128 range: raw draw.
                    return ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) as $t;
                }
                let draw = (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span;
                ((low as i128 as u128).wrapping_add(draw)) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;

    fn sample(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        let draw = ((u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())) % span;
        self.start + draw
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "empty range strategy");
        // Stretch slightly so the upper endpoint is reachable.
        let raw = low + rng.next_f64() * (high - low) * (1.0 + f64::EPSILON);
        raw.clamp(low, high)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
