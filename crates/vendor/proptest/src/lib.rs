//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a compact, sample-based property-testing engine exposing the
//! subset of proptest this repository uses: the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive`, range and tuple and `&str`-regex
//! strategies, [`collection::vec`], [`arbitrary::any`], `prop_oneof!`,
//! `Just`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** Failures print the deterministic per-test seed;
//!   re-running reproduces the identical failing case.
//! * **Deterministic seeding.** The stream is derived from the fully
//!   qualified test name, so runs are reproducible across machines.
//! * Default case count is 64 (override with `PROPTEST_CASES` or
//!   `ProptestConfig::with_cases`).

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The usual glob import for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias so `prop::collection::vec(...)` works as in upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(binding in strategy, ...)` body
/// runs for the configured number of sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($param:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __seed = $crate::test_runner::fnv1a(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __rng = $crate::test_runner::TestRng::new(__seed);
            let mut __passed: u32 = 0;
            let mut __rejected: u32 = 0;
            while __passed < __config.cases {
                $(let $param = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                        assert!(
                            __rejected <= __config.max_global_rejects,
                            "proptest {}: too many prop_assume! rejections ({})",
                            stringify!($name),
                            __rejected,
                        );
                    }
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest {} failed after {} passing case(s) [seed {:#x}]: {}",
                            stringify!($name),
                            __passed,
                            __seed,
                            __msg,
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { [$cfg] $($rest)* }
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Vetoes the current case without failing it; the runner draws a fresh
/// case instead.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..40, b in any::<bool>()) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..40).contains(&n));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn mut_bindings_work(mut data in crate::collection::vec(0.0f64..1.0, 0..20)) {
            data.sort_by(|a, b| a.partial_cmp(b).unwrap());
            prop_assert!(data.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_is_honored(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    fn oneof_map_and_recursive_compose() {
        use crate::test_runner::TestRng;
        let strat = prop_oneof![(0u8..3).prop_map(|v| v as u32), Just(9u32),];
        let mut rng = TestRng::new(1);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!(v < 3 || v == 9);
        }

        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(n) => usize::from(*n < 10),
                Tree::Node(children) => 1 + children.iter().map(depth).max().unwrap_or(0),
            }
        }
        let trees = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut saw_node = false;
        for _ in 0..200 {
            let t = trees.sample(&mut rng);
            assert!(depth(&t) <= 5);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion should produce branches");
    }
}
