//! Case execution: configuration, the deterministic test RNG, and the
//! error type threaded out of property bodies.

/// How many cases a `proptest!` test runs, and related knobs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required before the test passes.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig {
            cases,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    #[must_use]
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// The deterministic generator driving strategy sampling (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `usize` in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below: bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }
}

/// FNV-1a over a string: derives the per-test deterministic seed from the
/// fully qualified test name so every test gets a distinct, stable stream.
#[must_use]
pub fn fnv1a(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}
