//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `bench_with_input`) over a simple wall-clock
//! harness: per sample the routine runs enough iterations to amortize
//! timer overhead, and the reported figures are the min/mean/max of the
//! per-iteration times across samples.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            samples: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        bencher.report(id);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for the rest of the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for the rest of the group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into().0);
        self.criterion.bench_function(&id, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.0);
        self.criterion.bench_function(&id, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally derived from a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{parameter}", function.into()))
    }

    /// An id made of the parameter alone.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_owned())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    min: Duration,
    mean: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, amortizing timer overhead over enough iterations
    /// to fill the per-sample slice of the measurement budget.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up & calibration: how long does one iteration take?
        let warm_start = Instant::now();
        let mut calibrated = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            let t0 = Instant::now();
            black_box(routine());
            calibrated = t0.elapsed();
            warm_iters += 1;
        }

        let per_sample = self.budget / self.samples.max(1) as u32;
        let iters = if calibrated.is_zero() {
            1000
        } else {
            (per_sample.as_nanos() / calibrated.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed() / iters as u32;
            min = min.min(elapsed);
            max = max.max(elapsed);
            total += elapsed;
        }
        self.result = Some(Sample {
            min,
            mean: total / self.samples as u32,
            max,
            iters,
        });
    }

    fn report(&self, id: &str) {
        match self.result {
            Some(s) => println!(
                "{id:<50} time: [{} {} {}]  ({} iter/sample)",
                fmt_duration(s.min),
                fmt_duration(s.mean),
                fmt_duration(s.max),
                s.iters,
            ),
            None => println!("{id:<50} (no measurement)"),
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.4} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.4} ms", d.as_secs_f64() * 1e3)
    } else if nanos >= 1_000 {
        format!("{:.4} µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{nanos} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut group = c.benchmark_group("grouped");
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u32, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        group.finish();
    }
}
