//! Property tests over the Gen-2 protocol engine: arbitrary command
//! sequences never corrupt a tag's state machine, and inventory rounds
//! uphold their accounting invariants for arbitrary populations.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rfid_gen2::{
    Epc96, ErasureChannel, InventoriedFlag, InventoryEngine, PerfectChannel, QAlgorithm, Session,
    TagFsm, TagState,
};

/// One externally-drivable FSM stimulus.
#[derive(Debug, Clone)]
enum Stimulus {
    BeginRound { q: u8 },
    QueryRep,
    QueryAdjust { q: u8 },
    AckCorrect,
    AckWrong,
    Nak,
    ReqRn,
    PowerLoss,
    Singulate,
}

fn stimulus_strategy() -> impl Strategy<Value = Stimulus> {
    prop_oneof![
        (0u8..6).prop_map(|q| Stimulus::BeginRound { q }),
        Just(Stimulus::QueryRep),
        (0u8..6).prop_map(|q| Stimulus::QueryAdjust { q }),
        Just(Stimulus::AckCorrect),
        Just(Stimulus::AckWrong),
        Just(Stimulus::Nak),
        Just(Stimulus::ReqRn),
        Just(Stimulus::PowerLoss),
        Just(Stimulus::Singulate),
    ]
}

proptest! {
    /// Any stimulus sequence: no panics, read counter monotone and only
    /// advanced by legitimate singulations, contending implies an
    /// arbitration state.
    #[test]
    fn fsm_survives_arbitrary_stimuli(
        seed in any::<u64>(),
        stimuli in proptest::collection::vec(stimulus_strategy(), 0..200),
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut tag = TagFsm::new(Epc96::from_u128(1));
        let mut reads = 0;
        let mut time = 0.0;
        for stimulus in stimuli {
            time += 0.01;
            let before_state = tag.state();
            match stimulus {
                Stimulus::BeginRound { q } => {
                    tag.begin_round(Session::S1, InventoriedFlag::A, q, time, &mut rng);
                }
                Stimulus::QueryRep => tag.on_query_rep(),
                Stimulus::QueryAdjust { q } => tag.on_query_adjust(q, &mut rng),
                Stimulus::AckCorrect => {
                    let rn = tag.rn16();
                    let accepted = tag.on_ack(rn, time);
                    prop_assert_eq!(
                        accepted,
                        before_state == TagState::Reply,
                        "ACK is accepted exactly in Reply"
                    );
                }
                Stimulus::AckWrong => {
                    let rn = tag.rn16().wrapping_add(1);
                    prop_assert!(!tag.on_ack(rn, time), "wrong RN16 never accepted");
                }
                Stimulus::Nak => tag.on_nak(),
                Stimulus::ReqRn => {
                    let handle = tag.on_req_rn(&mut rng);
                    prop_assert_eq!(
                        handle.is_some(),
                        before_state == TagState::Acknowledged,
                        "Req_RN is honored exactly in Acknowledged"
                    );
                }
                Stimulus::PowerLoss => {
                    tag.on_power_loss(time);
                    prop_assert_eq!(tag.state(), TagState::Ready);
                }
                Stimulus::Singulate => {
                    // Only meaningful after an accepted ACK; harmless glue
                    // used by the engine, but must never *decrease* reads.
                    if tag.state() == TagState::Acknowledged {
                        tag.on_singulated(time);
                        reads += 1;
                    }
                }
            }
            prop_assert!(tag.read_count() >= reads.min(tag.read_count()));
            if tag.is_contending() {
                prop_assert!(matches!(tag.state(), TagState::Reply | TagState::Arbitrate));
            }
        }
        prop_assert_eq!(tag.read_count(), reads, "reads advance only via singulation");
    }

    /// A perfect channel reads every tag exactly once per round, for any
    /// population size and initial Q.
    #[test]
    fn perfect_round_reads_everyone_once(population in 1usize..40, q0 in 0u8..9, seed in any::<u64>()) {
        let mut tags: Vec<TagFsm> = (0..population)
            .map(|i| TagFsm::new(Epc96::from_u128(i as u128)))
            .collect();
        let mut engine = InventoryEngine {
            q_algo: QAlgorithm { q0, ..QAlgorithm::default() },
            ..InventoryEngine::default()
        };
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, seed);
        prop_assert_eq!(log.reads.len(), population);
        prop_assert_eq!(log.unique_epcs().len(), population);
        for tag in &tags {
            prop_assert_eq!(tag.read_count(), 1);
        }
        // Slot accounting always balances.
        prop_assert_eq!(
            log.slots,
            log.empties + log.collisions + log.singles_failed + log.reads.len() as u32
        );
    }

    /// A lossy channel never reads a tag twice in one round, never reads
    /// more tags than exist, and keeps the slot accounting balanced.
    #[test]
    fn lossy_round_invariants(
        population in 1usize..30,
        p_forward in 0.3f64..1.0,
        p_reverse in 0.1f64..1.0,
        seed in any::<u64>(),
    ) {
        let mut tags: Vec<TagFsm> = (0..population)
            .map(|i| TagFsm::new(Epc96::from_u128(i as u128)))
            .collect();
        let mut engine = InventoryEngine::default();
        let mut channel = ErasureChannel::new(p_forward, p_reverse, seed);
        let log = engine.run_round(&mut tags, &mut channel, Session::S1, 0.0, seed ^ 0xABCD);
        prop_assert!(log.reads.len() <= population);
        prop_assert_eq!(log.unique_epcs().len(), log.reads.len(), "no double reads");
        prop_assert_eq!(
            log.slots,
            log.empties + log.collisions + log.singles_failed + log.reads.len() as u32
        );
        prop_assert!(log.duration_s > 0.0);
        prop_assert!(
            log.duration_s
                <= engine.max_round_s + engine.timing.reader_overhead_s + 0.1
        );
    }

    /// Round logs are a pure function of (population, seed, config).
    #[test]
    fn rounds_are_deterministic(population in 1usize..20, seed in any::<u64>()) {
        let run = || {
            let mut tags: Vec<TagFsm> = (0..population)
                .map(|i| TagFsm::new(Epc96::from_u128(i as u128)))
                .collect();
            let mut engine = InventoryEngine::default();
            engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, seed)
        };
        prop_assert_eq!(run(), run());
    }
}
