//! The Gen-2 tag state machine.

use crate::memory::{MemoryBank, MemoryError, TagMemory};
use crate::select::{apply_select, SelFilter, SelectCommand};
use crate::Epc96;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Gen-2 inventory session.
///
/// Each tag keeps one inventoried flag per session; sessions let multiple
/// readers inventory the same population independently. Flag persistence
/// when the tag loses power differs per session and is what lets a moving
/// tag "remember" it was already counted as it passes between antennas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Session {
    /// S0: flag persists only while the tag is energized.
    S0,
    /// S1: flag persists 0.5-5 s regardless of power (we use 2 s nominal).
    S1,
    /// S2: flag persists several seconds after power loss.
    S2,
    /// S3: like S2, independent flag.
    S3,
}

impl Session {
    /// Nominal unpowered flag persistence, in seconds.
    #[must_use]
    pub fn persistence_s(&self) -> f64 {
        match self {
            Session::S0 => 0.05,
            Session::S1 => 2.0,
            Session::S2 | Session::S3 => 20.0,
        }
    }

    fn index(self) -> usize {
        match self {
            Session::S0 => 0,
            Session::S1 => 1,
            Session::S2 => 2,
            Session::S3 => 3,
        }
    }
}

/// The two values of a session's inventoried flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum InventoriedFlag {
    /// The reset value; inventory rounds normally target A.
    #[default]
    A,
    /// Set when the tag has been counted this round.
    B,
}

impl InventoriedFlag {
    /// The other flag value.
    #[must_use]
    pub fn toggled(self) -> InventoriedFlag {
        match self {
            InventoriedFlag::A => InventoriedFlag::B,
            InventoriedFlag::B => InventoriedFlag::A,
        }
    }
}

/// Protocol state of a tag within an inventory round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum TagState {
    /// Energized but not participating in the current round.
    #[default]
    Ready,
    /// Holding a slot counter, waiting its turn.
    Arbitrate,
    /// Slot counter hit zero; backscattering RN16.
    Reply,
    /// RN16 acknowledged; backscattered PC+EPC+CRC.
    Acknowledged,
    /// Access state after Req_RN (not used by the tracking experiments).
    Open,
    /// Secured access state.
    Secured,
    /// Permanently disabled.
    Killed,
}

/// Sentinel slot value for a tag that lost arbitration (collision or missed
/// ACK) and stays silent until the next Query/QueryAdjust redraw, matching
/// the spec's slot-counter wrap behavior.
const SLOT_SILENT: u32 = u32::MAX;

/// Error from an over-the-air memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AccessError {
    /// The tag is not in an access state (Open/Secured).
    WrongState,
    /// The command's handle did not match the tag's.
    BadHandle,
    /// The underlying memory rejected the operation.
    Memory(MemoryError),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::WrongState => write!(f, "tag is not in an access state"),
            AccessError::BadHandle => write!(f, "access handle mismatch"),
            AccessError::Memory(err) => write!(f, "memory access failed: {err}"),
        }
    }
}

impl std::error::Error for AccessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccessError::Memory(err) => Some(err),
            _ => None,
        }
    }
}

/// A simulated Gen-2 tag: identity plus protocol state.
///
/// The inventory engine drives the FSM; the methods mirror the spec's
/// command/response transitions.
///
/// # Examples
///
/// ```
/// use rfid_gen2::{Epc96, InventoriedFlag, Session, TagFsm, TagState};
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let mut tag = TagFsm::new(Epc96::from_u128(1));
/// tag.begin_round(Session::S1, InventoriedFlag::A, 0, 0.0, &mut rng);
/// // With Q = 0 the only slot is 0, so the tag replies immediately.
/// assert_eq!(tag.state(), TagState::Reply);
/// let rn16 = tag.rn16();
/// tag.on_ack(rn16, 0.0);
/// assert_eq!(tag.state(), TagState::Acknowledged);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TagFsm {
    epc: Epc96,
    state: TagState,
    slot: u32,
    rn16: u16,
    handle: u16,
    flags: [InventoriedFlag; 4],
    flag_touched_at: [f64; 4],
    session: Session,
    reads: u64,
    sl: bool,
    memory: TagMemory,
}

impl TagFsm {
    /// Creates a tag in the Ready state with all flags at A and eight
    /// words of user memory.
    #[must_use]
    pub fn new(epc: Epc96) -> Self {
        Self::with_memory(epc, TagMemory::new(epc, 8))
    }

    /// Creates a tag with explicit memory contents.
    #[must_use]
    pub fn with_memory(epc: Epc96, memory: TagMemory) -> Self {
        Self {
            epc,
            state: TagState::Ready,
            slot: SLOT_SILENT,
            rn16: 0,
            handle: 0,
            flags: [InventoriedFlag::A; 4],
            flag_touched_at: [f64::NEG_INFINITY; 4],
            session: Session::S1,
            reads: 0,
            sl: false,
            memory,
        }
    }

    /// The tag's memory banks.
    #[must_use]
    pub fn memory(&self) -> &TagMemory {
        &self.memory
    }

    /// Mutable access to the tag's memory (provisioning; over-the-air
    /// writes go through [`TagFsm::access_write`]).
    pub fn memory_mut(&mut self) -> &mut TagMemory {
        &mut self.memory
    }

    /// Current SL flag.
    #[must_use]
    pub fn sl(&self) -> bool {
        self.sl
    }

    /// Handles a Select command (the tag must be energized to hear it).
    pub fn on_select(&mut self, command: &SelectCommand, now_s: f64) {
        let current_flag = match command.target {
            crate::select::SelectTarget::Inventoried(session) => self.flag(session, now_s),
            crate::select::SelectTarget::Sl => InventoriedFlag::A,
        };
        let (sl, flag_update) = apply_select(command, &self.memory, self.sl, current_flag);
        self.sl = sl;
        if let Some((session, flag)) = flag_update {
            let i = session.index();
            self.flags[i] = flag;
            self.flag_touched_at[i] = now_s;
        }
    }

    /// The tag's EPC.
    #[must_use]
    pub fn epc(&self) -> Epc96 {
        self.epc
    }

    /// Current protocol state.
    #[must_use]
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Current RN16 handle (valid while in Reply/Acknowledged).
    #[must_use]
    pub fn rn16(&self) -> u16 {
        self.rn16
    }

    /// Number of times this tag has been successfully singulated.
    #[must_use]
    pub fn read_count(&self) -> u64 {
        self.reads
    }

    /// The inventoried flag for `session` as seen at time `now_s`,
    /// accounting for persistence decay back to A.
    #[must_use]
    pub fn flag(&self, session: Session, now_s: f64) -> InventoriedFlag {
        let i = session.index();
        if self.flags[i] == InventoriedFlag::B
            && now_s - self.flag_touched_at[i] > session.persistence_s()
        {
            InventoriedFlag::A
        } else {
            self.flags[i]
        }
    }

    /// Handles a Query: join the round if the session flag matches
    /// `target`, drawing a slot uniformly in `[0, 2^q)`.
    ///
    /// Returns `true` if the tag joined the round.
    pub fn begin_round<R: Rng + ?Sized>(
        &mut self,
        session: Session,
        target: InventoriedFlag,
        q: u8,
        now_s: f64,
        rng: &mut R,
    ) -> bool {
        self.begin_round_filtered(session, target, SelFilter::All, q, now_s, rng)
    }

    /// Handles a Query carrying an SL filter: join only if both the
    /// session flag and the SL state match.
    ///
    /// Returns `true` if the tag joined the round.
    pub fn begin_round_filtered<R: Rng + ?Sized>(
        &mut self,
        session: Session,
        target: InventoriedFlag,
        sel: SelFilter,
        q: u8,
        now_s: f64,
        rng: &mut R,
    ) -> bool {
        if self.state == TagState::Killed {
            return false;
        }
        self.session = session;
        if self.flag(session, now_s) != target || !sel.admits(self.sl) {
            self.state = TagState::Ready;
            return false;
        }
        self.draw_slot(q, rng);
        true
    }

    /// Handles a QueryRep: decrement the slot counter; reply at zero.
    pub fn on_query_rep(&mut self) {
        match self.state {
            TagState::Arbitrate => {
                if self.slot == 0 || self.slot == SLOT_SILENT {
                    // Slot-counter wrap: stay silent for the round.
                    self.slot = SLOT_SILENT;
                } else {
                    self.slot -= 1;
                    if self.slot == 0 {
                        self.state = TagState::Reply;
                    }
                }
            }
            TagState::Reply | TagState::Acknowledged => {
                // No ACK arrived (or the reader moved on): drop back to
                // Arbitrate, silent until a redraw.
                self.state = TagState::Arbitrate;
                self.slot = SLOT_SILENT;
            }
            _ => {}
        }
    }

    /// Handles a QueryAdjust: every arbitrating tag redraws its slot.
    pub fn on_query_adjust<R: Rng + ?Sized>(&mut self, q: u8, rng: &mut R) {
        match self.state {
            TagState::Arbitrate | TagState::Reply => self.draw_slot(q, rng),
            _ => {}
        }
    }

    /// Handles an ACK carrying `rn16`. On a match the tag transitions to
    /// Acknowledged and (conceptually) backscatters its PC+EPC+CRC.
    ///
    /// Returns `true` if the ACK was accepted.
    pub fn on_ack(&mut self, rn16: u16, _now_s: f64) -> bool {
        if self.state == TagState::Reply && self.rn16 == rn16 {
            self.state = TagState::Acknowledged;
            true
        } else {
            false
        }
    }

    /// Called when the reader accepted the EPC (end of a successful
    /// singulation): the tag inverts its inventoried flag and leaves the
    /// round.
    pub fn on_singulated(&mut self, now_s: f64) {
        let i = self.session.index();
        self.flags[i] = self.flags[i].toggled();
        self.flag_touched_at[i] = now_s;
        self.reads += 1;
        self.state = TagState::Ready;
        self.slot = SLOT_SILENT;
    }

    /// Handles a NAK or a missed ACK while replying: back to Arbitrate,
    /// silent until the next redraw.
    pub fn on_nak(&mut self) {
        if matches!(self.state, TagState::Reply | TagState::Acknowledged) {
            self.state = TagState::Arbitrate;
            self.slot = SLOT_SILENT;
        }
    }

    /// Handles a Req_RN in the Acknowledged state: the tag generates its
    /// access handle and moves to Open (or Secured if the access password
    /// is zero, per spec). Returns the handle.
    pub fn on_req_rn<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Option<u16> {
        if self.state != TagState::Acknowledged {
            return None;
        }
        self.handle = rng.gen();
        self.state = if self.memory.access_password() == 0 {
            TagState::Secured
        } else {
            TagState::Open
        };
        Some(self.handle)
    }

    /// Handles an Access command carrying the access password: Open ->
    /// Secured on a match.
    ///
    /// Returns `true` if the password was accepted.
    pub fn on_access(&mut self, password: u32) -> bool {
        if self.state == TagState::Open && password == self.memory.access_password() {
            self.state = TagState::Secured;
            true
        } else {
            false
        }
    }

    /// Handles a Read command (valid in Open/Secured with the right
    /// handle).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::WrongState`] outside Open/Secured,
    /// [`AccessError::BadHandle`] on a handle mismatch, and
    /// [`AccessError::Memory`] for bad addresses.
    pub fn access_read(
        &self,
        handle: u16,
        bank: MemoryBank,
        word_ptr: u32,
        words: u32,
    ) -> Result<Vec<u8>, AccessError> {
        self.check_access(handle)?;
        self.memory
            .read(bank, word_ptr, words)
            .map_err(AccessError::Memory)
    }

    /// Handles a Write command (valid in Secured; Open only for unlocked
    /// banks — we require Secured for simplicity, matching the common
    /// reader default of zero access passwords, which lands tags in
    /// Secured directly).
    ///
    /// # Errors
    ///
    /// Returns [`AccessError::WrongState`] outside Secured,
    /// [`AccessError::BadHandle`] on handle mismatch, and
    /// [`AccessError::Memory`] for locked banks or bad addresses.
    pub fn access_write(
        &mut self,
        handle: u16,
        bank: MemoryBank,
        word_ptr: u32,
        data: &[u8],
    ) -> Result<(), AccessError> {
        if self.state != TagState::Secured {
            return Err(AccessError::WrongState);
        }
        if handle != self.handle {
            return Err(AccessError::BadHandle);
        }
        self.memory
            .write(bank, word_ptr, data)
            .map_err(AccessError::Memory)
    }

    fn check_access(&self, handle: u16) -> Result<(), AccessError> {
        if !matches!(self.state, TagState::Open | TagState::Secured) {
            return Err(AccessError::WrongState);
        }
        if handle != self.handle {
            return Err(AccessError::BadHandle);
        }
        Ok(())
    }

    /// Models loss of power: protocol state resets; S0 flags decay
    /// immediately, longer-persistence flags keep their timestamps (decay
    /// is evaluated lazily by [`TagFsm::flag`]).
    pub fn on_power_loss(&mut self, now_s: f64) {
        if self.state != TagState::Killed {
            self.state = TagState::Ready;
            self.slot = SLOT_SILENT;
            // S0 decays with its (short) persistence from *now*.
            let i = Session::S0.index();
            if self.flags[i] == InventoriedFlag::B {
                self.flag_touched_at[i] =
                    self.flag_touched_at[i].min(now_s - Session::S0.persistence_s());
            }
        }
    }

    /// Whether the tag is still contending in the current round.
    #[must_use]
    pub fn is_contending(&self) -> bool {
        matches!(self.state, TagState::Reply)
            || (self.state == TagState::Arbitrate && self.slot != SLOT_SILENT)
    }

    /// Whether the tag is still *in* the round at all — contending, or
    /// silenced by a collision/missed ACK but recoverable by a QueryAdjust
    /// redraw.
    #[must_use]
    pub fn is_in_round(&self) -> bool {
        matches!(self.state, TagState::Reply | TagState::Arbitrate)
    }

    fn draw_slot<R: Rng + ?Sized>(&mut self, q: u8, rng: &mut R) {
        let slots = 1u32 << q.min(15);
        self.slot = rng.gen_range(0..slots);
        self.rn16 = rng.gen();
        self.state = if self.slot == 0 {
            TagState::Reply
        } else {
            TagState::Arbitrate
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    fn fresh() -> TagFsm {
        TagFsm::new(Epc96::from_u128(0xAA))
    }

    #[test]
    fn joins_round_only_when_flag_matches() {
        let mut tag = fresh();
        let mut r = rng();
        assert!(tag.begin_round(Session::S1, InventoriedFlag::A, 4, 0.0, &mut r));
        // Singulate it so the S1 flag flips to B.
        tag.state = TagState::Reply;
        tag.on_singulated(0.0);
        assert_eq!(tag.flag(Session::S1, 0.1), InventoriedFlag::B);
        assert!(!tag.begin_round(Session::S1, InventoriedFlag::A, 4, 0.1, &mut r));
        // Targeting B now matches.
        assert!(tag.begin_round(Session::S1, InventoriedFlag::B, 4, 0.1, &mut r));
    }

    #[test]
    fn flag_persistence_decays() {
        let mut tag = fresh();
        tag.state = TagState::Reply;
        tag.session = Session::S1;
        tag.on_singulated(10.0);
        assert_eq!(tag.flag(Session::S1, 11.0), InventoriedFlag::B);
        let expired = 10.0 + Session::S1.persistence_s() + 0.1;
        assert_eq!(tag.flag(Session::S1, expired), InventoriedFlag::A);
    }

    #[test]
    fn query_rep_counts_down_to_reply() {
        let mut tag = fresh();
        let mut r = rng();
        // Force a known slot by retrying until slot is 2.
        loop {
            tag.begin_round(Session::S1, InventoriedFlag::A, 3, 0.0, &mut r);
            if tag.slot == 2 {
                break;
            }
        }
        assert_eq!(tag.state(), TagState::Arbitrate);
        tag.on_query_rep();
        assert_eq!(tag.state(), TagState::Arbitrate);
        tag.on_query_rep();
        assert_eq!(tag.state(), TagState::Reply);
        assert!(tag.is_contending());
    }

    #[test]
    fn missed_ack_silences_for_the_round() {
        let mut tag = fresh();
        let mut r = rng();
        tag.begin_round(Session::S1, InventoriedFlag::A, 0, 0.0, &mut r);
        assert_eq!(tag.state(), TagState::Reply);
        // Reader moves on without ACKing.
        tag.on_query_rep();
        assert_eq!(tag.state(), TagState::Arbitrate);
        assert!(!tag.is_contending());
        // Many QueryReps later it is still silent.
        for _ in 0..100 {
            tag.on_query_rep();
        }
        assert!(!tag.is_contending());
        // A QueryAdjust redraw brings it back.
        tag.on_query_adjust(0, &mut r);
        assert_eq!(tag.state(), TagState::Reply);
    }

    #[test]
    fn ack_requires_matching_rn16() {
        let mut tag = fresh();
        let mut r = rng();
        tag.begin_round(Session::S1, InventoriedFlag::A, 0, 0.0, &mut r);
        let rn = tag.rn16();
        assert!(!tag.on_ack(rn.wrapping_add(1), 0.0));
        assert_eq!(tag.state(), TagState::Reply);
        assert!(tag.on_ack(rn, 0.0));
        assert_eq!(tag.state(), TagState::Acknowledged);
    }

    #[test]
    fn singulation_increments_reads_and_flips_flag() {
        let mut tag = fresh();
        let mut r = rng();
        tag.begin_round(Session::S2, InventoriedFlag::A, 0, 0.0, &mut r);
        let rn = tag.rn16();
        tag.on_ack(rn, 0.0);
        tag.on_singulated(0.0);
        assert_eq!(tag.read_count(), 1);
        assert_eq!(tag.flag(Session::S2, 0.1), InventoriedFlag::B);
        assert_eq!(
            tag.flag(Session::S1, 0.1),
            InventoriedFlag::A,
            "other sessions untouched"
        );
        assert_eq!(tag.state(), TagState::Ready);
    }

    #[test]
    fn power_loss_resets_protocol_state() {
        let mut tag = fresh();
        let mut r = rng();
        tag.begin_round(Session::S1, InventoriedFlag::A, 4, 0.0, &mut r);
        tag.on_power_loss(0.5);
        assert_eq!(tag.state(), TagState::Ready);
        assert!(!tag.is_contending());
    }

    #[test]
    fn s0_flag_decays_after_power_loss() {
        let mut tag = fresh();
        tag.state = TagState::Reply;
        tag.session = Session::S0;
        tag.on_singulated(1.0);
        assert_eq!(tag.flag(Session::S0, 1.01), InventoriedFlag::B);
        tag.on_power_loss(1.02);
        assert_eq!(tag.flag(Session::S0, 1.03), InventoriedFlag::A);
    }

    #[test]
    fn killed_tags_never_join() {
        let mut tag = fresh();
        tag.state = TagState::Killed;
        let mut r = rng();
        assert!(!tag.begin_round(Session::S1, InventoriedFlag::A, 4, 0.0, &mut r));
        assert_eq!(tag.state(), TagState::Killed);
    }

    #[test]
    fn slot_draws_cover_the_range() {
        let mut tag = fresh();
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            tag.begin_round(Session::S1, InventoriedFlag::A, 2, 0.0, &mut r);
            seen.insert(tag.slot);
        }
        assert_eq!(seen, (0..4).collect());
    }
}
