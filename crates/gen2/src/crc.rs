//! Gen-2 cyclic redundancy checks.
//!
//! The air protocol protects Query commands with a CRC-5 and everything
//! longer (including the PC + EPC backscatter) with a CRC-16
//! (ISO/IEC 13239: polynomial 0x1021, preset 0xFFFF, ones-complemented on
//! transmit).

/// Computes the Gen-2 CRC-5 over a bit sequence (MSB first).
///
/// Polynomial `x^5 + x^3 + 1`, preset `0b01001`, transmitted uninverted.
/// A receiver recomputing the CRC over *message + CRC bits* obtains zero.
///
/// # Examples
///
/// ```
/// use rfid_gen2::crc5;
///
/// let msg = [true, false, false, true, false, true, true, false];
/// let crc = crc5(&msg);
/// // Append the 5 CRC bits and verify the residue is zero.
/// let mut framed: Vec<bool> = msg.to_vec();
/// for i in (0..5).rev() {
///     framed.push((crc >> i) & 1 == 1);
/// }
/// assert_eq!(crc5(&framed), 0);
/// ```
#[must_use]
pub fn crc5(bits: &[bool]) -> u8 {
    let mut reg: u8 = 0b01001;
    for &bit in bits {
        let msb = (reg >> 4) & 1 == 1;
        reg = (reg << 1) & 0b1_1111;
        if msb != bit {
            // Feedback taps for x^5 + x^3 + 1 (the x^5 term is the shift-out).
            reg ^= 0b0_1001;
        }
    }
    reg
}

/// Computes the Gen-2 CRC-16 over bytes.
///
/// ISO/IEC 13239: polynomial 0x1021, preset 0xFFFF, result ones-complemented
/// for transmission. A receiver recomputing over *message + CRC bytes*
/// (uncomplemented accumulate) obtains the constant residue `0x1D0F`.
///
/// # Examples
///
/// ```
/// // Standard check value for "123456789" (CRC-16/GENIBUS).
/// assert_eq!(rfid_gen2::crc16(b"123456789"), 0xD64E);
/// ```
#[must_use]
pub fn crc16(bytes: &[u8]) -> u16 {
    !crc16_raw(bytes)
}

/// CRC-16 register value without the final complement.
fn crc16_raw(bytes: &[u8]) -> u16 {
    let mut reg: u16 = 0xFFFF;
    for &byte in bytes {
        reg ^= u16::from(byte) << 8;
        for _ in 0..8 {
            if reg & 0x8000 != 0 {
                reg = (reg << 1) ^ 0x1021;
            } else {
                reg <<= 1;
            }
        }
    }
    reg
}

/// Verifies a framed message whose last two bytes are the transmitted
/// (complemented) CRC-16.
#[must_use]
pub fn crc16_verify(framed: &[u8]) -> bool {
    framed.len() >= 2 && crc16_raw(framed) == 0x1D0F
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn crc16_check_value() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1; Gen-2 complements it.
        assert_eq!(crc16_raw(b"123456789"), 0x29B1);
        assert_eq!(crc16(b"123456789"), 0xD64E);
    }

    #[test]
    fn crc16_framed_residue() {
        let msg = b"hello gen2";
        let crc = crc16(msg);
        let mut framed = msg.to_vec();
        framed.extend_from_slice(&crc.to_be_bytes());
        assert!(crc16_verify(&framed));
    }

    #[test]
    fn crc16_detects_single_bit_flips() {
        let msg = b"EPC-96-PAYLOAD";
        let crc = crc16(msg);
        let mut framed = msg.to_vec();
        framed.extend_from_slice(&crc.to_be_bytes());
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut corrupted = framed.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(!crc16_verify(&corrupted), "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn crc16_verify_rejects_short_input() {
        assert!(!crc16_verify(&[]));
        assert!(!crc16_verify(&[0xFF]));
    }

    #[test]
    fn crc5_is_five_bits() {
        let bits: Vec<bool> = (0..22).map(|i| i % 3 == 0).collect();
        assert!(crc5(&bits) < 32);
    }

    #[test]
    fn crc5_framed_residue_is_zero() {
        let bits: Vec<bool> = (0..17).map(|i| i % 2 == 0).collect();
        let crc = crc5(&bits);
        let mut framed = bits.clone();
        for i in (0..5).rev() {
            framed.push((crc >> i) & 1 == 1);
        }
        assert_eq!(crc5(&framed), 0);
    }

    proptest! {
        #[test]
        fn crc5_residue_property(bits in proptest::collection::vec(any::<bool>(), 0..64)) {
            let crc = crc5(&bits);
            let mut framed = bits.clone();
            for i in (0..5).rev() {
                framed.push((crc >> i) & 1 == 1);
            }
            prop_assert_eq!(crc5(&framed), 0);
        }

        #[test]
        fn crc5_detects_single_bit_flips(bits in proptest::collection::vec(any::<bool>(), 1..40),
                                         flip in 0usize..40) {
            prop_assume!(flip < bits.len());
            let crc = crc5(&bits);
            let mut corrupted = bits.clone();
            corrupted[flip] = !corrupted[flip];
            prop_assert_ne!(crc5(&corrupted), crc);
        }

        #[test]
        fn crc16_round_trip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let crc = crc16(&data);
            let mut framed = data.clone();
            framed.extend_from_slice(&crc.to_be_bytes());
            prop_assert!(crc16_verify(&framed));
        }
    }
}
