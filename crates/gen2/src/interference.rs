//! Reader-to-reader interference.
//!
//! The paper's most striking negative result: adding a *second reader* to a
//! portal severely reduced reliability, because the readers jammed each
//! other — their Matrix AR400s predate the optional Gen-2 "dense-reader
//! mode". Two mechanisms are modeled:
//!
//! * **Reverse jamming** — an interfering reader's carrier lands in the
//!   victim reader's receive band and swamps the microwatt tag backscatter
//!   unless the backscatter exceeds it by a protection ratio. Dense-reader
//!   mode confines reader spectra to their own channels and pushes tag
//!   replies into guard bands, restoring tens of dB of isolation.
//! * **Forward jamming** — a tag's envelope detector sees the *sum* of all
//!   carriers; a comparable second carrier fills in the victim reader's
//!   ASK modulation dips, so commands fail unless the commanding carrier
//!   captures the detector. Dense-reader deployments additionally
//!   time-coordinate commands (LBT/synchronized sessions), which we model
//!   as coordinated == no overlapping commands.

use serde::{Deserialize, Serialize};

/// Per-reader RF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReaderRf {
    /// FCC channel index, 0-49 (902-928 MHz, 500 kHz spacing).
    pub channel: u8,
    /// Whether the reader implements dense-reader mode (optional in Gen-2;
    /// the paper's readers did not support it).
    pub dense_mode: bool,
}

impl ReaderRf {
    /// A pre-dense-mode reader like the paper's AR400, on channel 0.
    #[must_use]
    pub fn legacy() -> Self {
        Self {
            channel: 0,
            dense_mode: false,
        }
    }

    /// A dense-reader-mode reader on the given channel.
    ///
    /// # Panics
    ///
    /// Panics if `channel` is not a valid FCC channel index (0-49).
    #[must_use]
    pub fn dense(channel: u8) -> Self {
        assert!(channel < 50, "FCC UHF band has channels 0-49");
        Self {
            channel,
            dense_mode: true,
        }
    }

    /// Carrier frequency of this reader's channel in Hz.
    #[must_use]
    pub fn carrier_hz(&self) -> f64 {
        902.75e6 + f64::from(self.channel) * 0.5e6
    }

    /// Whether `self` and `other` are spectrally separated (both dense-mode
    /// *and* on different channels).
    #[must_use]
    pub fn spectrally_separated(&self, other: &ReaderRf) -> bool {
        self.dense_mode && other.dense_mode && self.channel != other.channel
    }
}

/// Outcome of an interference assessment for one exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceOutcome {
    /// The exchange proceeds normally.
    Clear,
    /// The tag cannot decode the reader command.
    ForwardJammed,
    /// The reader cannot decode the tag backscatter.
    ReverseJammed,
}

/// Thresholds of the interference model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InterferenceModel {
    /// Required backscatter-to-interference ratio at the victim receiver
    /// for decode, in dB.
    pub protection_ratio_db: f64,
    /// Isolation gained when victim and interferer are spectrally
    /// separated (dense mode, different channels), in dB.
    pub dense_isolation_db: f64,
    /// Margin by which the commanding carrier must exceed an interfering
    /// carrier *at the tag* for the tag to capture the command, in dB.
    pub forward_capture_margin_db: f64,
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self {
            protection_ratio_db: 10.0,
            dense_isolation_db: 70.0,
            forward_capture_margin_db: 6.0,
        }
    }
}

impl InterferenceModel {
    /// Assesses one reader-tag exchange under one interfering reader.
    ///
    /// * `victim`/`interferer` — RF configs of the two readers.
    /// * `victim_at_tag_dbm` / `interferer_at_tag_dbm` — carrier powers at
    ///   the tag.
    /// * `backscatter_dbm` — tag reply power at the victim receiver.
    /// * `interferer_at_victim_dbm` — interferer carrier power leaking into
    ///   the victim receiver.
    /// * `interferer_transmitting` — whether the interferer is on the air
    ///   during this exchange (readers in continuous/buffered mode almost
    ///   always are).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn assess(
        &self,
        victim: &ReaderRf,
        interferer: &ReaderRf,
        victim_at_tag_dbm: f64,
        interferer_at_tag_dbm: f64,
        backscatter_dbm: f64,
        interferer_at_victim_dbm: f64,
        interferer_transmitting: bool,
    ) -> InterferenceOutcome {
        if !interferer_transmitting {
            return InterferenceOutcome::Clear;
        }
        let separated = victim.spectrally_separated(interferer);

        // Forward: tags are broadband, but separated (coordinated) readers
        // do not overlap commands in time.
        if !separated && victim_at_tag_dbm - interferer_at_tag_dbm < self.forward_capture_margin_db
        {
            return InterferenceOutcome::ForwardJammed;
        }

        // Reverse: carrier leakage into the victim's receive band.
        let isolation = if separated {
            self.dense_isolation_db
        } else {
            0.0
        };
        let effective_interference = interferer_at_victim_dbm - isolation;
        if backscatter_dbm - effective_interference < self.protection_ratio_db {
            return InterferenceOutcome::ReverseJammed;
        }
        InterferenceOutcome::Clear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A co-located portal: both carriers strong at the tag, interferer
    /// carrier strong at the victim receiver, backscatter weak.
    const VICTIM_AT_TAG: f64 = -5.0;
    const INTERFERER_AT_TAG: f64 = -8.0;
    const BACKSCATTER: f64 = -55.0;
    const INTERFERER_AT_VICTIM: f64 = -5.0;

    fn assess(victim: ReaderRf, interferer: ReaderRf, transmitting: bool) -> InterferenceOutcome {
        InterferenceModel::default().assess(
            &victim,
            &interferer,
            VICTIM_AT_TAG,
            INTERFERER_AT_TAG,
            BACKSCATTER,
            INTERFERER_AT_VICTIM,
            transmitting,
        )
    }

    #[test]
    fn legacy_readers_jam_each_other() {
        let outcome = assess(ReaderRf::legacy(), ReaderRf::legacy(), true);
        assert_ne!(outcome, InterferenceOutcome::Clear);
    }

    #[test]
    fn dense_mode_on_separate_channels_is_clear() {
        let outcome = assess(ReaderRf::dense(3), ReaderRf::dense(17), true);
        assert_eq!(outcome, InterferenceOutcome::Clear);
    }

    #[test]
    fn dense_mode_on_the_same_channel_still_jams() {
        let outcome = assess(ReaderRf::dense(3), ReaderRf::dense(3), true);
        assert_ne!(outcome, InterferenceOutcome::Clear);
    }

    #[test]
    fn idle_interferer_is_harmless() {
        let outcome = assess(ReaderRf::legacy(), ReaderRf::legacy(), false);
        assert_eq!(outcome, InterferenceOutcome::Clear);
    }

    #[test]
    fn forward_capture_with_strong_victim_carrier() {
        // Victim carrier 20 dB above the interferer at the tag: command
        // captures, but the reverse link is still jammed co-channel.
        let outcome = InterferenceModel::default().assess(
            &ReaderRf::legacy(),
            &ReaderRf::legacy(),
            0.0,
            -20.0,
            BACKSCATTER,
            INTERFERER_AT_VICTIM,
            true,
        );
        assert_eq!(outcome, InterferenceOutcome::ReverseJammed);
    }

    #[test]
    fn strong_backscatter_survives_weak_interference() {
        let outcome = InterferenceModel::default().assess(
            &ReaderRf::legacy(),
            &ReaderRf::legacy(),
            0.0,
            -20.0,
            -30.0,
            -60.0,
            true,
        );
        assert_eq!(outcome, InterferenceOutcome::Clear);
    }

    #[test]
    fn channel_frequencies_span_the_band() {
        assert!((ReaderRf::dense(0).carrier_hz() - 902.75e6).abs() < 1.0);
        assert!((ReaderRf::dense(49).carrier_hz() - 927.25e6).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "channels 0-49")]
    fn channel_is_validated() {
        let _ = ReaderRf::dense(50);
    }
}
