//! The reader-side inventory round: slotted ALOHA with the Q algorithm.

use crate::channel::AirChannel;
use crate::select::{SelFilter, SelectCommand};
use crate::tag::{InventoriedFlag, Session, TagFsm};
use crate::timing::LinkTiming;
use crate::Epc96;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Safety cap on slots per round so a pathological configuration cannot
/// loop forever (the spec's Q is at most 15, i.e. 32768 slots).
const MAX_SLOTS_PER_ROUND: u32 = 1 << 16;

/// Parameters of the reader's Q-selection algorithm.
///
/// The floating-point Q value `Qfp` is nudged up on collisions and down on
/// empty slots; whenever `round(Qfp)` departs from the Q in use, the reader
/// issues a QueryAdjust, which also re-randomizes every arbitrating tag —
/// including those that collided earlier and would otherwise stay silent.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QAlgorithm {
    /// Initial Q for each round.
    pub q0: u8,
    /// Step applied to `Qfp` per collision (up) or empty slot (down).
    /// The spec recommends `0.1 <= C < 0.5`.
    pub c: f64,
    /// Lower clamp for Q.
    pub min_q: u8,
    /// Upper clamp for Q.
    pub max_q: u8,
}

impl Default for QAlgorithm {
    fn default() -> Self {
        Self {
            q0: 4,
            c: 0.3,
            min_q: 0,
            max_q: 15,
        }
    }
}

/// One successful singulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TagRead {
    /// Index of the tag in the population slice.
    pub tag_index: usize,
    /// The EPC that was read.
    pub epc: Epc96,
    /// Simulation time of the read, in seconds.
    pub time_s: f64,
    /// Slot number (within the round) where the read happened.
    pub slot: u32,
}

/// What happened in one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotOutcome {
    /// No tag replied.
    Empty,
    /// Two or more tags replied; nothing decodable.
    Collision,
    /// Exactly one tag replied but the channel corrupted the exchange.
    SingleFailed,
    /// Exactly one tag replied and its EPC was read.
    Success,
}

/// The log of one inventory round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RoundLog {
    /// Successful reads, in slot order.
    pub reads: Vec<TagRead>,
    /// Total slots executed.
    pub slots: u32,
    /// Collided slots.
    pub collisions: u32,
    /// Empty slots.
    pub empties: u32,
    /// Slots where a lone reply was lost to the channel.
    pub singles_failed: u32,
    /// QueryAdjust commands issued.
    pub adjusts: u32,
    /// Wall-clock duration of the round in seconds (air time + overhead).
    pub duration_s: f64,
}

impl RoundLog {
    /// EPCs read this round, deduplicated in arrival order.
    #[must_use]
    pub fn unique_epcs(&self) -> Vec<Epc96> {
        let mut seen = std::collections::BTreeSet::new();
        self.reads
            .iter()
            .filter(|r| seen.insert(r.epc))
            .map(|r| r.epc)
            .collect()
    }
}

/// A Gen-2 reader's inventory engine for one antenna port.
///
/// # Examples
///
/// Collisions resolve across slots — start 20 tags in a round with a small
/// initial Q and watch the Q algorithm sort them out:
///
/// ```
/// use rfid_gen2::{Epc96, InventoryEngine, PerfectChannel, QAlgorithm, Session, TagFsm};
///
/// let mut tags: Vec<TagFsm> = (0..20).map(|i| TagFsm::new(Epc96::from_u128(i))).collect();
/// let mut engine = InventoryEngine::default();
/// engine.q_algo = QAlgorithm { q0: 1, ..QAlgorithm::default() };
/// let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 1);
/// assert_eq!(log.reads.len(), 20);
/// assert!(log.collisions > 0, "Q=1 with 20 tags must collide first");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InventoryEngine {
    /// Link timing in force.
    pub timing: LinkTiming,
    /// Q-algorithm parameters.
    pub q_algo: QAlgorithm,
    /// Inventoried-flag value the rounds target (normally A).
    pub target: InventoriedFlag,
    /// Wall-clock budget for one round. A reader in buffered mode cycles
    /// rounds continuously; tags it could not resolve in this round rejoin
    /// at the next Query. The budget bounds pathological retry loops (a
    /// tag whose reply never decodes); it does not distort fading physics
    /// because the [`AirChannel`] is queried with the current time and
    /// fades evolve *within* a round.
    pub max_round_s: f64,
    /// Optional Select issued before each round's Query, partitioning the
    /// population (e.g. by EPC prefix).
    pub select: Option<SelectCommand>,
    /// SL filter carried by the Query; pair with `select` to inventory
    /// only the selected tags.
    pub sel_filter: SelFilter,
}

impl Default for InventoryEngine {
    fn default() -> Self {
        Self {
            timing: LinkTiming::default(),
            q_algo: QAlgorithm::default(),
            target: InventoriedFlag::A,
            max_round_s: 0.5,
            select: None,
            sel_filter: SelFilter::All,
        }
    }
}

impl InventoryEngine {
    /// Runs one full inventory round over `tags`, starting at
    /// `start_time_s`, using `channel` as RF truth and `seed` for the
    /// tags' slot/RN16 draws.
    ///
    /// Tags that cannot hear the opening Query (unpowered / out of range
    /// per the channel) sit the round out, like a dark passive tag.
    pub fn run_round<C: AirChannel + ?Sized>(
        &mut self,
        tags: &mut [TagFsm],
        channel: &mut C,
        session: Session,
        start_time_s: f64,
        seed: u64,
    ) -> RoundLog {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut log = RoundLog::default();
        let mut now = start_time_s;

        // Optional Select: every energized tag that hears it applies it.
        if let Some(select) = &self.select {
            now += self.timing.query_s(); // Select air time ~ a Query
            for (i, tag) in tags.iter_mut().enumerate() {
                if channel.reader_to_tag_ok(i, now) {
                    tag.on_select(select, now);
                }
            }
        }

        // Query: tags that hear it and match the target flag (and the SL
        // filter) join.
        now += self.timing.query_s();
        let mut participating = Vec::new();
        for (i, tag) in tags.iter_mut().enumerate() {
            if channel.reader_to_tag_ok(i, now)
                && tag.begin_round_filtered(
                    session,
                    self.target,
                    self.sel_filter,
                    self.q_algo.q0,
                    now,
                    &mut rng,
                )
            {
                participating.push(i);
            }
        }

        let mut q = self.q_algo.q0;
        let mut qfp = f64::from(q);
        let mut remaining: u32 = 1 << q;

        loop {
            if log.slots >= MAX_SLOTS_PER_ROUND
                || now - start_time_s > self.max_round_s
                || participating.iter().all(|&i| !tags[i].is_in_round())
            {
                break;
            }
            if remaining == 0 {
                // Slot pool exhausted with tags still unresolved: the
                // reader re-arms the round (QueryAdjust at the current Q),
                // which re-randomizes everyone still arbitrating.
                remaining = 1 << q;
                log.adjusts += 1;
                now += self.timing.query_rep_s();
                for &i in &participating {
                    tags[i].on_query_adjust(q, &mut rng);
                }
            }
            // Who is replying in this slot?
            let responders: Vec<usize> = participating
                .iter()
                .copied()
                .filter(|&i| tags[i].state() == crate::TagState::Reply)
                .collect();

            let outcome = match responders.len() {
                0 => {
                    now += self.timing.empty_slot_s();
                    qfp = (qfp - self.q_algo.c).max(f64::from(self.q_algo.min_q));
                    SlotOutcome::Empty
                }
                1 => {
                    // A full singulation queries the channel three times at
                    // the *same* (tag, now): RN16 backscatter, ACK command,
                    // EPC backscatter. `now` only advances once the slot's
                    // outcome is known, so channel implementations may (and
                    // `rfid_sim::PortalChannel` does) memoize per (tag, t)
                    // — the repeat queries are free, and the per-query RNG
                    // is addressed by identity so the answers are
                    // unchanged.
                    let i = responders[0];
                    let rn16_ok = channel.tag_to_reader_ok(i, now);
                    if !rn16_ok {
                        now += self.timing.collision_slot_s();
                        tags[i].on_nak();
                        SlotOutcome::SingleFailed
                    } else {
                        // ACK handshake: tag must hear the ACK, then the
                        // reader must decode the EPC backscatter.
                        let ack_heard = channel.reader_to_tag_ok(i, now);
                        let rn16 = tags[i].rn16();
                        if ack_heard && tags[i].on_ack(rn16, now) {
                            let epc_ok = channel.tag_to_reader_ok(i, now);
                            now += self.timing.success_slot_s();
                            if epc_ok {
                                tags[i].on_singulated(now);
                                log.reads.push(TagRead {
                                    tag_index: i,
                                    epc: tags[i].epc(),
                                    time_s: now,
                                    slot: log.slots,
                                });
                                SlotOutcome::Success
                            } else {
                                tags[i].on_nak();
                                SlotOutcome::SingleFailed
                            }
                        } else {
                            now += self.timing.collision_slot_s();
                            tags[i].on_nak();
                            SlotOutcome::SingleFailed
                        }
                    }
                }
                _ => {
                    now += self.timing.collision_slot_s();
                    for &i in &responders {
                        tags[i].on_nak();
                    }
                    qfp = (qfp + self.q_algo.c).min(f64::from(self.q_algo.max_q));
                    SlotOutcome::Collision
                }
            };

            log.slots += 1;
            remaining -= 1;
            match outcome {
                SlotOutcome::Empty => log.empties += 1,
                SlotOutcome::Collision => log.collisions += 1,
                SlotOutcome::SingleFailed => log.singles_failed += 1,
                SlotOutcome::Success => {}
            }

            // QueryAdjust if the rounded Qfp moved; this re-randomizes all
            // arbitrating tags (recovering earlier collision losers).
            let q_new = qfp.round() as u8;
            if q_new != q {
                q = q_new;
                remaining = 1 << q;
                log.adjusts += 1;
                now += self.timing.query_rep_s();
                for &i in &participating {
                    tags[i].on_query_adjust(q, &mut rng);
                }
            } else if remaining > 0 {
                // QueryRep opens the next slot (its air time is accounted
                // for in the per-slot costs above).
                for &i in &participating {
                    tags[i].on_query_rep();
                }
            }
        }

        log.duration_s = (now - start_time_s) + self.timing.reader_overhead_s;
        log
    }

    /// Runs rounds back to back until `deadline_s`, returning all logs.
    /// This is the reader's "buffered (continuous) read mode" from the
    /// paper's methodology.
    pub fn run_until<C: AirChannel + ?Sized>(
        &mut self,
        tags: &mut [TagFsm],
        channel: &mut C,
        session: Session,
        start_time_s: f64,
        deadline_s: f64,
        seed: u64,
    ) -> Vec<RoundLog> {
        let mut logs = Vec::new();
        let mut now = start_time_s;
        let mut round = 0u64;
        while now < deadline_s {
            let log = self.run_round(tags, channel, session, now, seed ^ round);
            now += log.duration_s.max(1e-6);
            logs.push(log);
            round += 1;
        }
        logs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::{ErasureChannel, PerfectChannel};

    fn population(n: usize) -> Vec<TagFsm> {
        (0..n)
            .map(|i| TagFsm::new(Epc96::from_u128(i as u128)))
            .collect()
    }

    #[test]
    fn perfect_channel_reads_everyone_exactly_once() {
        let mut tags = population(30);
        let mut engine = InventoryEngine::default();
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 7);
        assert_eq!(log.reads.len(), 30);
        assert_eq!(log.unique_epcs().len(), 30);
        for tag in &tags {
            assert_eq!(tag.read_count(), 1);
        }
    }

    /// Records every `(tag, time_s)` query so we can assert the repeat
    /// pattern that channel-side memoization exploits.
    struct RecordingChannel {
        queries: Vec<(usize, u64)>,
    }

    impl AirChannel for RecordingChannel {
        fn reader_to_tag_ok(&mut self, tag: usize, time_s: f64) -> bool {
            self.queries.push((tag, time_s.to_bits()));
            true
        }
        fn tag_to_reader_ok(&mut self, tag: usize, time_s: f64) -> bool {
            self.queries.push((tag, time_s.to_bits()));
            true
        }
    }

    #[test]
    fn success_slot_queries_the_channel_thrice_at_one_instant() {
        // The contract the PortalChannel round memo relies on: a clean
        // singulation asks the channel three questions (RN16, ACK, EPC)
        // without advancing time between them.
        let mut tags = population(1);
        let mut engine = InventoryEngine::default();
        let mut channel = RecordingChannel {
            queries: Vec::new(),
        };
        let log = engine.run_round(&mut tags, &mut channel, Session::S1, 0.0, 7);
        assert_eq!(log.reads.len(), 1);
        // queries[0] is the opening Query energization check; the success
        // slot itself is the final three entries.
        let (tag, t_bits) = *channel.queries.last().expect("slot queries");
        assert_eq!(
            channel
                .queries
                .iter()
                .filter(|&&q| q == (tag, t_bits))
                .count(),
            3,
            "rn16 + ack + epc should share one (tag, t): {:?}",
            channel.queries
        );
    }

    #[test]
    fn read_tags_sit_out_the_next_round() {
        let mut tags = population(5);
        let mut engine = InventoryEngine::default();
        let first = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 1);
        assert_eq!(first.reads.len(), 5);
        // Immediately afterwards (< persistence), all flags are B.
        let second = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.1, 2);
        assert!(second.reads.is_empty());
        // After the S1 persistence expires, they are readable again.
        let later = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 10.0, 3);
        assert_eq!(later.reads.len(), 5);
    }

    #[test]
    fn q_algorithm_resolves_undersized_initial_q() {
        let mut tags = population(25);
        let mut engine = InventoryEngine::default();
        engine.q_algo.q0 = 0;
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 3);
        assert_eq!(log.reads.len(), 25, "Q must grow to resolve 25 tags");
        assert!(log.adjusts > 0);
        assert!(log.collisions > 0);
    }

    #[test]
    fn oversized_q_decays() {
        let mut tags = population(2);
        let mut engine = InventoryEngine::default();
        engine.q_algo.q0 = 8;
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 3);
        assert_eq!(log.reads.len(), 2);
        assert!(log.adjusts > 0, "Q should shrink from 8");
    }

    #[test]
    fn dead_channel_reads_nothing() {
        let mut tags = population(10);
        let mut engine = InventoryEngine::default();
        let mut channel = ErasureChannel::new(0.0, 1.0, 5);
        let log = engine.run_round(&mut tags, &mut channel, Session::S1, 0.0, 9);
        assert!(log.reads.is_empty());
        // Nobody heard the Query: round collapses quickly.
        assert!(log.slots <= (1 << engine.q_algo.q0));
    }

    #[test]
    fn lossy_reverse_link_loses_some_tags() {
        let mut tags = population(20);
        let mut engine = InventoryEngine::default();
        // Both RN16 and EPC must survive, so p(read per try) = 0.09; the
        // round budget bounds the retries.
        let mut channel = ErasureChannel::new(1.0, 0.3, 11);
        let log = engine.run_round(&mut tags, &mut channel, Session::S1, 0.0, 13);
        assert!(log.reads.len() < 20, "read {} of 20", log.reads.len());
        assert!(log.singles_failed > 0);
        assert!(!log.reads.is_empty(), "p=0.3 should still read some");
    }

    #[test]
    fn round_budget_bounds_duration() {
        let mut tags = population(10);
        let mut engine = InventoryEngine::default();
        // Reverse link almost dead: without the budget the round would
        // retry indefinitely.
        let mut channel = ErasureChannel::new(1.0, 0.01, 3);
        let log = engine.run_round(&mut tags, &mut channel, Session::S1, 0.0, 5);
        assert!(
            log.duration_s < engine.max_round_s + engine.timing.reader_overhead_s + 0.05,
            "duration = {} s",
            log.duration_s
        );
    }

    #[test]
    fn continuous_mode_catches_stragglers() {
        let mut tags = population(20);
        let mut engine = InventoryEngine::default();
        // Harsh channel per round, but many rounds.
        let mut channel = ErasureChannel::new(0.9, 0.6, 17);
        let logs = engine.run_until(&mut tags, &mut channel, Session::S1, 0.0, 5.0, 23);
        assert!(logs.len() > 1, "several rounds should fit in 5 s");
        let unique: std::collections::HashSet<Epc96> = logs
            .iter()
            .flat_map(|l| l.reads.iter().map(|r| r.epc))
            .collect();
        assert_eq!(unique.len(), 20, "every tag is eventually read");
    }

    #[test]
    fn round_duration_scales_with_population() {
        let mut engine = InventoryEngine::default();
        let mut small = population(2);
        let mut large = population(40);
        let t_small = engine
            .run_round(&mut small, &mut PerfectChannel, Session::S1, 0.0, 1)
            .duration_s;
        let t_large = engine
            .run_round(&mut large, &mut PerfectChannel, Session::S1, 0.0, 1)
            .duration_s;
        assert!(t_large > t_small);
    }

    #[test]
    fn per_tag_time_is_near_twenty_ms_for_big_populations() {
        // Amortized per-tag time including overhead: the paper's ~0.02 s.
        let mut tags = population(50);
        let mut engine = InventoryEngine::default();
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 2);
        let per_tag = log.duration_s / log.reads.len() as f64;
        assert!(
            (0.001..=0.03).contains(&per_tag),
            "per-tag amortized = {per_tag} s"
        );
    }

    #[test]
    fn logs_are_deterministic_given_seed() {
        let mut engine = InventoryEngine::default();
        let mut tags_a = population(15);
        let mut tags_b = population(15);
        let log_a = engine.run_round(&mut tags_a, &mut PerfectChannel, Session::S1, 0.0, 99);
        let log_b = engine.run_round(&mut tags_b, &mut PerfectChannel, Session::S1, 0.0, 99);
        assert_eq!(log_a, log_b);
    }

    #[test]
    fn select_confines_the_round_to_matching_tags() {
        use crate::select::SelectCommand;
        // Tags 0-9 share an EPC prefix; tags 10-19 do not.
        let mut tags: Vec<TagFsm> = (0..10)
            .map(|i| TagFsm::new(Epc96::from_u128((0xAB << 88) | i)))
            .chain((0..10).map(|i| TagFsm::new(Epc96::from_u128((0xCD << 88) | i))))
            .collect();
        let mut engine = InventoryEngine {
            select: Some(SelectCommand::matching_epc_prefix(
                &Epc96::from_u128(0xAB << 88),
                8,
            )),
            sel_filter: SelFilter::Selected,
            ..InventoryEngine::default()
        };
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 3);
        assert_eq!(log.reads.len(), 10, "only the matching half is read");
        for read in &log.reads {
            assert!(read.tag_index < 10, "read {read:?} outside the selection");
        }
    }

    #[test]
    fn access_flow_reads_tid_after_singulation() {
        use crate::memory::MemoryBank;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut tag = TagFsm::new(Epc96::from_u128(0x42));
        tag.begin_round(Session::S1, InventoriedFlag::A, 0, 0.0, &mut rng);
        let rn16 = tag.rn16();
        assert!(tag.on_ack(rn16, 0.0));
        // Zero access password: Req_RN lands directly in Secured.
        let handle = tag
            .on_req_rn(&mut rng)
            .expect("acknowledged tag grants a handle");
        assert_eq!(tag.state(), crate::TagState::Secured);
        let tid = tag.access_read(handle, MemoryBank::Tid, 0, 4).unwrap();
        assert_eq!(tid[0], 0xE2);
        // Wrong handle is rejected.
        assert!(tag
            .access_read(handle.wrapping_add(1), MemoryBank::Tid, 0, 1)
            .is_err());
        // Writes work in Secured.
        tag.access_write(handle, MemoryBank::User, 0, &[0xBE, 0xEF])
            .unwrap();
        assert_eq!(
            tag.memory().read(MemoryBank::User, 0, 1).unwrap(),
            vec![0xBE, 0xEF]
        );
    }

    #[test]
    fn access_password_gates_secured_state() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let mut tag = TagFsm::new(Epc96::from_u128(7));
        tag.memory_mut().set_access_password(0x1234_5678);
        tag.begin_round(Session::S1, InventoriedFlag::A, 0, 0.0, &mut rng);
        let rn16 = tag.rn16();
        tag.on_ack(rn16, 0.0);
        let handle = tag.on_req_rn(&mut rng).unwrap();
        assert_eq!(
            tag.state(),
            crate::TagState::Open,
            "password set: Open first"
        );
        // Writes refused in Open.
        assert!(tag
            .access_write(handle, crate::MemoryBank::User, 0, &[1, 2])
            .is_err());
        assert!(!tag.on_access(0xBAD0_BAD0), "wrong password rejected");
        assert!(tag.on_access(0x1234_5678));
        assert_eq!(tag.state(), crate::TagState::Secured);
        assert!(tag
            .access_write(handle, crate::MemoryBank::User, 0, &[1, 2])
            .is_ok());
    }

    #[test]
    fn slot_accounting_adds_up() {
        let mut tags = population(12);
        let mut engine = InventoryEngine::default();
        let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 4);
        assert_eq!(
            log.slots,
            log.empties + log.collisions + log.singles_failed + log.reads.len() as u32
        );
    }
}
