//! An EPC Class-1 Generation-2 (ISO 18000-6C) air-protocol engine.
//!
//! The DSN 2007 paper reads passive Gen-2 tags with a Matrix AR400 reader;
//! this crate reproduces the protocol mechanics that shape its results:
//!
//! * slotted-ALOHA singulation with the **Q algorithm**
//!   ([`InventoryEngine`]) — collisions are why "only one tag can be read
//!   concurrently but multiple tags may respond in a given read slot",
//! * the **tag state machine** with sessions and inventoried flags
//!   ([`TagFsm`]) — why a read tag stays quiet for the rest of a round,
//! * **link timing** ([`LinkTiming`]) — why a tag read takes on the order
//!   of the paper's "around 0.02 sec per tag",
//! * **reader-to-reader interference** ([`InterferenceModel`]) — why two
//!   readers per portal *hurt* reliability when dense-reader mode is
//!   unavailable (the paper's Section 4 finding).
//!
//! RF truth is abstracted behind the [`AirChannel`] trait so the protocol
//! engine is reusable against any physical model; `rfid-sim` implements it
//! with the full `rfid-phys` link budget.
//!
//! # Examples
//!
//! Inventory a population of ten tags over a perfect channel:
//!
//! ```
//! use rfid_gen2::{Epc96, InventoryEngine, PerfectChannel, Session, TagFsm};
//!
//! let mut tags: Vec<TagFsm> = (0..10).map(|i| TagFsm::new(Epc96::from_u128(i))).collect();
//! let mut engine = InventoryEngine::default();
//! let log = engine.run_round(&mut tags, &mut PerfectChannel, Session::S1, 0.0, 0xFEED);
//! assert_eq!(log.reads.len(), 10, "a perfect channel reads every tag");
//! assert!(log.duration_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod channel;
mod crc;
mod epc;
mod interference;
mod inventory;
mod memory;
mod select;
mod tag;
mod timing;

pub use channel::{AirChannel, ErasureChannel, PerfectChannel};
pub use crc::{crc16, crc16_verify, crc5};
pub use epc::Epc96;
pub use interference::{InterferenceModel, InterferenceOutcome, ReaderRf};
pub use inventory::{InventoryEngine, QAlgorithm, RoundLog, SlotOutcome, TagRead};
pub use memory::{MemoryBank, MemoryError, TagMemory};
pub use select::{apply_select, SelFilter, SelectAction, SelectCommand, SelectTarget};
pub use tag::{AccessError, InventoriedFlag, Session, TagFsm, TagState};
pub use timing::LinkTiming;
