//! Tag memory banks (EPC C1G2 section 6.3.2).
//!
//! Gen-2 tags carry four banks: Reserved (kill + access passwords), EPC
//! (CRC + PC + EPC), TID (chip identity), and User. The paper's tags
//! carry "a unique 96 bit identification code and some asset related
//! data" — the asset data lives in User memory.

use crate::{crc16, Epc96};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// The four Gen-2 memory banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryBank {
    /// Bank 00: kill password (words 0-1) and access password (words 2-3).
    Reserved,
    /// Bank 01: stored CRC (word 0), PC (word 1), EPC (words 2+).
    Epc,
    /// Bank 10: tag/chip identity, factory-locked.
    Tid,
    /// Bank 11: user data.
    User,
}

/// Error from a memory access.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemoryError {
    /// The address range falls outside the bank.
    OutOfRange {
        /// The bank accessed.
        bank: MemoryBank,
        /// First word requested.
        word_ptr: u32,
        /// Words requested.
        words: u32,
    },
    /// The bank is locked against this operation.
    Locked {
        /// The bank accessed.
        bank: MemoryBank,
    },
}

impl fmt::Display for MemoryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemoryError::OutOfRange {
                bank,
                word_ptr,
                words,
            } => write!(
                f,
                "words {word_ptr}..{} exceed {bank:?} memory",
                word_ptr + words
            ),
            MemoryError::Locked { bank } => write!(f, "{bank:?} memory is write-locked"),
        }
    }
}

impl Error for MemoryError {}

/// A tag's four memory banks, word (16-bit) addressed.
///
/// # Examples
///
/// ```
/// use rfid_gen2::{Epc96, MemoryBank, TagMemory};
///
/// let mut memory = TagMemory::new(Epc96::from_u128(0xABCD), 8);
/// memory.write(MemoryBank::User, 0, &[0x12, 0x34]).unwrap();
/// assert_eq!(memory.read(MemoryBank::User, 0, 1).unwrap(), vec![0x12, 0x34]);
/// assert_eq!(memory.epc(), Epc96::from_u128(0xABCD));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TagMemory {
    reserved: [u8; 8],
    epc_bank: Vec<u8>,
    tid: Vec<u8>,
    user: Vec<u8>,
    epc_locked: bool,
    user_locked: bool,
}

impl TagMemory {
    /// Builds memory for a 96-bit EPC with `user_words` words of user
    /// memory. The TID is derived from the EPC (unique per tag, as a real
    /// chip's factory TID would be), and the EPC bank's stored CRC is
    /// computed per the spec.
    #[must_use]
    pub fn new(epc: Epc96, user_words: u32) -> Self {
        // PC word: EPC length in words (6) in the top 5 bits.
        let pc: u16 = 6 << 11;
        let mut pc_epc = Vec::with_capacity(14);
        pc_epc.extend_from_slice(&pc.to_be_bytes());
        pc_epc.extend_from_slice(epc.as_bytes());
        let stored_crc = crc16(&pc_epc);

        let mut epc_bank = Vec::with_capacity(16);
        epc_bank.extend_from_slice(&stored_crc.to_be_bytes());
        epc_bank.extend_from_slice(&pc_epc);

        // A plausible 4-word TID: class identifier + serial from the EPC.
        let mut tid = vec![0xE2, 0x00, 0x34, 0x12];
        tid.extend_from_slice(&epc.as_bytes()[8..12]);

        Self {
            reserved: [0; 8],
            epc_bank,
            tid,
            user: vec![0; (user_words * 2) as usize],
            epc_locked: false,
            user_locked: false,
        }
    }

    /// The EPC stored in the EPC bank.
    ///
    /// # Panics
    ///
    /// Panics if the EPC bank has been corrupted to fewer than 16 bytes
    /// (construction guarantees the layout; writes cannot shrink it).
    #[must_use]
    pub fn epc(&self) -> Epc96 {
        let mut bytes = [0u8; 12];
        bytes.copy_from_slice(&self.epc_bank[4..16]);
        Epc96::from_bytes(bytes)
    }

    /// Whether the stored CRC matches the PC + EPC content.
    #[must_use]
    pub fn epc_crc_valid(&self) -> bool {
        let stored = u16::from_be_bytes([self.epc_bank[0], self.epc_bank[1]]);
        crc16(&self.epc_bank[2..16]) == stored
    }

    fn bank(&self, bank: MemoryBank) -> &[u8] {
        match bank {
            MemoryBank::Reserved => &self.reserved,
            MemoryBank::Epc => &self.epc_bank,
            MemoryBank::Tid => &self.tid,
            MemoryBank::User => &self.user,
        }
    }

    /// Reads `words` 16-bit words starting at `word_ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of the bank.
    pub fn read(
        &self,
        bank: MemoryBank,
        word_ptr: u32,
        words: u32,
    ) -> Result<Vec<u8>, MemoryError> {
        let data = self.bank(bank);
        let start = word_ptr as usize * 2;
        let end = start + words as usize * 2;
        if end > data.len() {
            return Err(MemoryError::OutOfRange {
                bank,
                word_ptr,
                words,
            });
        }
        Ok(data[start..end].to_vec())
    }

    /// Writes whole words starting at `word_ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemoryError::OutOfRange`] past the end of the bank,
    /// [`MemoryError::Locked`] for a locked bank, and rejects TID writes
    /// (factory-locked) and odd-length data as out-of-range.
    pub fn write(
        &mut self,
        bank: MemoryBank,
        word_ptr: u32,
        data: &[u8],
    ) -> Result<(), MemoryError> {
        if !data.len().is_multiple_of(2) {
            return Err(MemoryError::OutOfRange {
                bank,
                word_ptr,
                words: (data.len() as u32).div_ceil(2),
            });
        }
        let locked = match bank {
            MemoryBank::Tid => true,
            MemoryBank::Epc => self.epc_locked,
            MemoryBank::User => self.user_locked,
            MemoryBank::Reserved => false,
        };
        if locked {
            return Err(MemoryError::Locked { bank });
        }
        let target = match bank {
            MemoryBank::Reserved => &mut self.reserved[..],
            MemoryBank::Epc => &mut self.epc_bank[..],
            MemoryBank::Tid => unreachable!("TID writes rejected above"),
            MemoryBank::User => &mut self.user[..],
        };
        let start = word_ptr as usize * 2;
        let end = start + data.len();
        if end > target.len() {
            return Err(MemoryError::OutOfRange {
                bank,
                word_ptr,
                words: data.len() as u32 / 2,
            });
        }
        target[start..end].copy_from_slice(data);
        Ok(())
    }

    /// Locks a bank against further writes (Lock command semantics,
    /// simplified to permalock).
    pub fn lock(&mut self, bank: MemoryBank) {
        match bank {
            MemoryBank::Epc => self.epc_locked = true,
            MemoryBank::User => self.user_locked = true,
            MemoryBank::Tid | MemoryBank::Reserved => {}
        }
    }

    /// The access password (Reserved words 2-3).
    #[must_use]
    pub fn access_password(&self) -> u32 {
        u32::from_be_bytes([
            self.reserved[4],
            self.reserved[5],
            self.reserved[6],
            self.reserved[7],
        ])
    }

    /// Sets the access password.
    pub fn set_access_password(&mut self, password: u32) {
        self.reserved[4..8].copy_from_slice(&password.to_be_bytes());
    }

    /// Returns the bit at absolute position `bit` of a bank (MSB-first
    /// within bytes), if in range — the addressing Select masks use.
    #[must_use]
    pub fn bit(&self, bank: MemoryBank, bit: u32) -> Option<bool> {
        let data = self.bank(bank);
        let byte = (bit / 8) as usize;
        if byte >= data.len() {
            return None;
        }
        Some(data[byte] & (0x80 >> (bit % 8)) != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory() -> TagMemory {
        TagMemory::new(Epc96::from_u128(0x0011_2233_4455_6677_8899), 8)
    }

    #[test]
    fn epc_bank_layout_and_crc() {
        let m = memory();
        assert_eq!(m.epc(), Epc96::from_u128(0x0011_2233_4455_6677_8899));
        assert!(m.epc_crc_valid());
        // CRC word + PC word + 6 EPC words = 8 words = 16 bytes.
        assert_eq!(m.read(MemoryBank::Epc, 0, 8).unwrap().len(), 16);
    }

    #[test]
    fn rewriting_the_epc_invalidates_the_stored_crc() {
        let mut m = memory();
        m.write(MemoryBank::Epc, 2, &[0xFF, 0xFF]).unwrap();
        assert!(!m.epc_crc_valid(), "stale CRC must be detectable");
    }

    #[test]
    fn user_memory_round_trips() {
        let mut m = memory();
        m.write(MemoryBank::User, 3, &[0xAA, 0xBB, 0xCC, 0xDD])
            .unwrap();
        assert_eq!(
            m.read(MemoryBank::User, 3, 2).unwrap(),
            vec![0xAA, 0xBB, 0xCC, 0xDD]
        );
        // Untouched words stay zero.
        assert_eq!(m.read(MemoryBank::User, 0, 1).unwrap(), vec![0, 0]);
    }

    #[test]
    fn out_of_range_accesses_are_rejected() {
        let m = memory();
        assert!(matches!(
            m.read(MemoryBank::User, 7, 2),
            Err(MemoryError::OutOfRange { .. })
        ));
        let mut m = memory();
        assert!(m.write(MemoryBank::User, 8, &[0, 0]).is_err());
        assert!(m.write(MemoryBank::User, 0, &[1]).is_err(), "odd length");
    }

    #[test]
    fn tid_is_factory_locked_but_readable() {
        let mut m = memory();
        assert!(matches!(
            m.write(MemoryBank::Tid, 0, &[0, 0]),
            Err(MemoryError::Locked { .. })
        ));
        let tid = m.read(MemoryBank::Tid, 0, 4).unwrap();
        assert_eq!(tid[0], 0xE2, "class identifier");
    }

    #[test]
    fn tids_differ_per_tag() {
        let a = TagMemory::new(Epc96::from_u128(1), 0);
        let b = TagMemory::new(Epc96::from_u128(2), 0);
        assert_ne!(a.tid, b.tid);
    }

    #[test]
    fn locking_blocks_writes() {
        let mut m = memory();
        m.lock(MemoryBank::User);
        assert!(matches!(
            m.write(MemoryBank::User, 0, &[1, 2]),
            Err(MemoryError::Locked { .. })
        ));
        // Reads still work.
        assert!(m.read(MemoryBank::User, 0, 1).is_ok());
    }

    #[test]
    fn access_password_round_trips() {
        let mut m = memory();
        assert_eq!(m.access_password(), 0);
        m.set_access_password(0xDEAD_BEEF);
        assert_eq!(m.access_password(), 0xDEAD_BEEF);
    }

    #[test]
    fn bit_addressing_is_msb_first() {
        let mut m = memory();
        m.write(MemoryBank::User, 0, &[0b1000_0001, 0x00]).unwrap();
        assert_eq!(m.bit(MemoryBank::User, 0), Some(true));
        assert_eq!(m.bit(MemoryBank::User, 1), Some(false));
        assert_eq!(m.bit(MemoryBank::User, 7), Some(true));
        assert_eq!(m.bit(MemoryBank::User, 16 * 8), None);
    }
}
