//! The Select command (EPC C1G2 section 6.3.2.11).
//!
//! Select partitions the tag population before inventory by matching a
//! bit mask against a memory bank and asserting/deasserting the SL flag
//! or a session's inventoried flag. Portals use it to inventory only the
//! tags of interest (e.g. one pallet's EPC prefix) — directly relevant
//! to the paper's multi-object portals, where confining a round to the
//! expected population reduces collisions.

use crate::memory::{MemoryBank, TagMemory};
use crate::tag::{InventoriedFlag, Session};
use serde::{Deserialize, Serialize};

/// What a Select command targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectTarget {
    /// The inventoried flag of a session.
    Inventoried(Session),
    /// The SL flag.
    Sl,
}

/// What to do with matching / non-matching tags (the spec's action
/// table, condensed to its three used rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SelectAction {
    /// Matching tags assert (SL=1 / flag->A); others deassert.
    AssertMatching,
    /// Matching tags deassert (SL=0 / flag->B); others assert.
    DeassertMatching,
    /// Matching tags toggle; others unchanged.
    ToggleMatching,
}

/// A Select command: match `mask` against `bank` starting at `bit_ptr`.
///
/// # Examples
///
/// ```
/// use rfid_gen2::{Epc96, MemoryBank, SelectAction, SelectCommand, SelectTarget, TagMemory};
///
/// let memory = TagMemory::new(Epc96::from_u128(0xAB00), 0);
/// // Match the first 16 EPC bits (bank bit 32 = first EPC bit: after
/// // CRC and PC words).
/// let select = SelectCommand::matching_epc_prefix(&Epc96::from_u128(0xAB00), 16);
/// assert!(select.matches(&memory));
/// let other = TagMemory::new(Epc96::from_u128(0xCD00), 0);
/// assert!(select.matches(&other) == (0xAB00u128 >> 80 == 0xCD00u128 >> 80));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SelectCommand {
    /// Flag the command manipulates.
    pub target: SelectTarget,
    /// Action applied to matching/non-matching tags.
    pub action: SelectAction,
    /// Bank the mask is compared against.
    pub bank: MemoryBank,
    /// Starting bit address within the bank.
    pub bit_ptr: u32,
    /// The mask bits (MSB-first).
    pub mask: Vec<bool>,
}

impl SelectCommand {
    /// A Select asserting SL on tags whose EPC starts with the first
    /// `prefix_bits` bits of `epc`.
    ///
    /// # Panics
    ///
    /// Panics if `prefix_bits > 96`.
    #[must_use]
    pub fn matching_epc_prefix(epc: &crate::Epc96, prefix_bits: u32) -> SelectCommand {
        assert!(prefix_bits <= 96, "an EPC has 96 bits");
        let bytes = epc.as_bytes();
        let mask = (0..prefix_bits)
            .map(|bit| bytes[(bit / 8) as usize] & (0x80 >> (bit % 8)) != 0)
            .collect();
        SelectCommand {
            target: SelectTarget::Sl,
            action: SelectAction::AssertMatching,
            bank: MemoryBank::Epc,
            // EPC bank layout: CRC (16 bits) + PC (16 bits) + EPC.
            bit_ptr: 32,
            mask,
        }
    }

    /// Whether the mask matches the tag's memory. A mask running past
    /// the end of the bank does not match (per spec).
    #[must_use]
    pub fn matches(&self, memory: &TagMemory) -> bool {
        self.mask
            .iter()
            .enumerate()
            .all(|(i, &want)| memory.bit(self.bank, self.bit_ptr + i as u32) == Some(want))
    }
}

/// The SL filter of a Query command: which tags may join the round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SelFilter {
    /// Any tag (the spec's SL = All).
    #[default]
    All,
    /// Only tags with SL asserted.
    Selected,
    /// Only tags with SL deasserted.
    NotSelected,
}

impl SelFilter {
    /// Whether a tag with the given SL state passes the filter.
    #[must_use]
    pub fn admits(&self, sl: bool) -> bool {
        match self {
            SelFilter::All => true,
            SelFilter::Selected => sl,
            SelFilter::NotSelected => !sl,
        }
    }
}

/// Applies a Select to a tag's flags; returns the new SL value and an
/// optional inventoried-flag override for the targeted session.
#[must_use]
pub fn apply_select(
    command: &SelectCommand,
    memory: &TagMemory,
    current_sl: bool,
    current_flag: InventoriedFlag,
) -> (bool, Option<(Session, InventoriedFlag)>) {
    let matched = command.matches(memory);
    match command.target {
        SelectTarget::Sl => {
            let sl = match (command.action, matched) {
                (SelectAction::AssertMatching, true) => true,
                (SelectAction::AssertMatching, false) => false,
                (SelectAction::DeassertMatching, true) => false,
                (SelectAction::DeassertMatching, false) => true,
                (SelectAction::ToggleMatching, true) => !current_sl,
                (SelectAction::ToggleMatching, false) => current_sl,
            };
            (sl, None)
        }
        SelectTarget::Inventoried(session) => {
            let flag = match (command.action, matched) {
                (SelectAction::AssertMatching, true) => Some(InventoriedFlag::A),
                (SelectAction::AssertMatching, false) => Some(InventoriedFlag::B),
                (SelectAction::DeassertMatching, true) => Some(InventoriedFlag::B),
                (SelectAction::DeassertMatching, false) => Some(InventoriedFlag::A),
                (SelectAction::ToggleMatching, true) => Some(current_flag.toggled()),
                (SelectAction::ToggleMatching, false) => None,
            };
            (current_sl, flag.map(|f| (session, f)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Epc96;

    fn memory(epc: u128) -> TagMemory {
        TagMemory::new(Epc96::from_u128(epc), 4)
    }

    #[test]
    fn epc_prefix_select_discriminates() {
        // Two EPCs differing in the first byte.
        let a = Epc96::from_bytes([0xAB, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1]);
        let b = Epc96::from_bytes([0xCD, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2]);
        let select = SelectCommand::matching_epc_prefix(&a, 8);
        assert!(select.matches(&TagMemory::new(a, 0)));
        assert!(!select.matches(&TagMemory::new(b, 0)));
    }

    #[test]
    fn zero_length_mask_matches_everything() {
        let select = SelectCommand {
            target: SelectTarget::Sl,
            action: SelectAction::AssertMatching,
            bank: MemoryBank::Epc,
            bit_ptr: 32,
            mask: Vec::new(),
        };
        assert!(select.matches(&memory(1)));
        assert!(select.matches(&memory(2)));
    }

    #[test]
    fn mask_past_bank_end_never_matches() {
        let select = SelectCommand {
            target: SelectTarget::Sl,
            action: SelectAction::AssertMatching,
            bank: MemoryBank::User,
            bit_ptr: 4 * 16 - 2,
            mask: vec![false, false, false, false],
        };
        assert!(!select.matches(&memory(1)));
    }

    #[test]
    fn sl_actions_follow_the_table() {
        let m = memory(0xAB);
        let matching = SelectCommand {
            target: SelectTarget::Sl,
            action: SelectAction::AssertMatching,
            bank: MemoryBank::Epc,
            bit_ptr: 32,
            mask: Vec::new(), // matches all
        };
        let (sl, flag) = apply_select(&matching, &m, false, InventoriedFlag::A);
        assert!(sl);
        assert!(flag.is_none());

        let deassert = SelectCommand {
            action: SelectAction::DeassertMatching,
            ..matching.clone()
        };
        assert!(!apply_select(&deassert, &m, true, InventoriedFlag::A).0);

        let toggle = SelectCommand {
            action: SelectAction::ToggleMatching,
            ..matching
        };
        assert!(apply_select(&toggle, &m, false, InventoriedFlag::A).0);
        assert!(!apply_select(&toggle, &m, true, InventoriedFlag::A).0);
    }

    #[test]
    fn inventoried_flag_actions() {
        let m = memory(0xAB);
        let cmd = SelectCommand {
            target: SelectTarget::Inventoried(Session::S2),
            action: SelectAction::AssertMatching,
            bank: MemoryBank::Epc,
            bit_ptr: 32,
            mask: Vec::new(),
        };
        let (_, flag) = apply_select(&cmd, &m, false, InventoriedFlag::B);
        assert_eq!(flag, Some((Session::S2, InventoriedFlag::A)));

        // Non-matching tags get the opposite assertion.
        let nomatch = SelectCommand {
            mask: vec![true; 97], // longer than the bank: never matches
            ..cmd
        };
        let (_, flag) = apply_select(&nomatch, &m, false, InventoriedFlag::A);
        assert_eq!(flag, Some((Session::S2, InventoriedFlag::B)));
    }

    #[test]
    fn sel_filter_admits_correctly() {
        assert!(SelFilter::All.admits(true) && SelFilter::All.admits(false));
        assert!(SelFilter::Selected.admits(true) && !SelFilter::Selected.admits(false));
        assert!(!SelFilter::NotSelected.admits(true) && SelFilter::NotSelected.admits(false));
    }
}
