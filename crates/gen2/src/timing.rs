//! Air-interface timing.
//!
//! Gen-2 timing is parameterized by Tari (the reader's data-0 symbol
//! length), the backscatter link frequency (BLF), and the Miller
//! subcarrier factor M. The derived slot durations determine how many
//! inventory rounds fit into the time a moving tag spends in the read zone
//! — the paper's "allowing adequate time for all tags to be read, which is
//! around .02 sec per tag".

use serde::{Deserialize, Serialize};

/// Link timing parameters and derived frame durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkTiming {
    /// Reader data-0 symbol duration in seconds (6.25, 12.5, or 25 us).
    pub tari_s: f64,
    /// Backscatter link frequency in Hz (40-640 kHz).
    pub blf_hz: f64,
    /// Miller modulation factor (1 = FM0, or 2/4/8).
    pub miller_m: u8,
    /// Fixed per-command reader firmware/host overhead, in seconds.
    ///
    /// The paper measures ~20 ms per tag end to end through the AR400's
    /// HTTP interface; the air interface alone is single-digit
    /// milliseconds, the rest is reader/host processing. This knob
    /// captures that gap.
    pub reader_overhead_s: f64,
}

impl LinkTiming {
    /// Timing matching the paper's setup: 25 us Tari, 250 kHz BLF,
    /// Miller-4, and enough reader overhead that a full singulation costs
    /// about 20 ms end to end.
    #[must_use]
    pub fn ar400_default() -> Self {
        Self {
            tari_s: 25.0e-6,
            blf_hz: 250.0e3,
            miller_m: 4,
            reader_overhead_s: 15.0e-3,
        }
    }

    /// Fast dense-population timing (smallest Tari, FM0).
    #[must_use]
    pub fn fast() -> Self {
        Self {
            tari_s: 6.25e-6,
            blf_hz: 640.0e3,
            miller_m: 1,
            reader_overhead_s: 0.0,
        }
    }

    /// Average reader symbol duration: data-0 is one Tari, data-1 is
    /// 1.5-2 Tari; we use the midpoint for random payloads.
    #[must_use]
    pub fn reader_bit_s(&self) -> f64 {
        1.375 * self.tari_s
    }

    /// Duration of a tag symbol (one data bit after Miller coding).
    #[must_use]
    pub fn tag_bit_s(&self) -> f64 {
        f64::from(self.miller_m) / self.blf_hz
    }

    /// T1: reader-to-tag turnaround (max of RTcal-ish guard, ~10 tag bits).
    #[must_use]
    pub fn t1_s(&self) -> f64 {
        (10.0 / self.blf_hz).max(3.0 * self.tari_s)
    }

    /// T2: tag-to-reader turnaround.
    #[must_use]
    pub fn t2_s(&self) -> f64 {
        10.0 / self.blf_hz
    }

    /// Duration of a Query command (22 bits + preamble ~ 6 symbols).
    #[must_use]
    pub fn query_s(&self) -> f64 {
        28.0 * self.reader_bit_s()
    }

    /// Duration of a QueryRep command (4 bits + frame-sync ~ 3 symbols).
    #[must_use]
    pub fn query_rep_s(&self) -> f64 {
        7.0 * self.reader_bit_s()
    }

    /// Duration of an ACK command (18 bits + frame-sync).
    #[must_use]
    pub fn ack_s(&self) -> f64 {
        21.0 * self.reader_bit_s()
    }

    /// Duration of an RN16 backscatter reply (16 bits + 6-bit preamble).
    #[must_use]
    pub fn rn16_s(&self) -> f64 {
        22.0 * self.tag_bit_s()
    }

    /// Duration of the PC + EPC-96 + CRC-16 backscatter (128 bits +
    /// preamble).
    #[must_use]
    pub fn epc_reply_s(&self) -> f64 {
        134.0 * self.tag_bit_s()
    }

    /// Air time of an empty slot: QueryRep plus the no-reply timeout.
    #[must_use]
    pub fn empty_slot_s(&self) -> f64 {
        self.query_rep_s() + self.t1_s() + self.t2_s()
    }

    /// Air time of a collided slot: QueryRep, garbled RN16, give-up.
    #[must_use]
    pub fn collision_slot_s(&self) -> f64 {
        self.query_rep_s() + self.t1_s() + self.rn16_s() + self.t2_s()
    }

    /// Air time of a successful singulation:
    /// QueryRep + RN16 + ACK + EPC reply + turnarounds.
    #[must_use]
    pub fn success_slot_s(&self) -> f64 {
        self.query_rep_s()
            + self.t1_s()
            + self.rn16_s()
            + self.t2_s()
            + self.ack_s()
            + self.t1_s()
            + self.epc_reply_s()
            + self.t2_s()
    }

    /// End-to-end time to read one tag including reader overhead — the
    /// quantity the paper reports as "around .02 sec per tag".
    #[must_use]
    pub fn per_tag_read_s(&self) -> f64 {
        self.success_slot_s() + self.reader_overhead_s
    }
}

impl Default for LinkTiming {
    fn default() -> Self {
        Self::ar400_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_read_time_matches_the_paper() {
        // "around .02 sec per tag" — accept 15-30 ms.
        let t = LinkTiming::ar400_default().per_tag_read_s();
        assert!((0.015..=0.030).contains(&t), "per-tag read = {t} s");
    }

    #[test]
    fn air_interface_alone_is_milliseconds() {
        let t = LinkTiming::ar400_default().success_slot_s();
        assert!(t > 0.5e-3 && t < 10.0e-3, "air time = {t} s");
    }

    #[test]
    fn fast_profile_is_faster() {
        assert!(LinkTiming::fast().success_slot_s() < LinkTiming::ar400_default().success_slot_s());
        assert!(LinkTiming::fast().per_tag_read_s() < LinkTiming::ar400_default().per_tag_read_s());
    }

    #[test]
    fn slot_duration_ordering() {
        let t = LinkTiming::ar400_default();
        assert!(t.empty_slot_s() < t.collision_slot_s());
        assert!(t.collision_slot_s() < t.success_slot_s());
    }

    #[test]
    fn miller_coding_slows_tag_replies() {
        let mut fm0 = LinkTiming::ar400_default();
        fm0.miller_m = 1;
        let mut m8 = LinkTiming::ar400_default();
        m8.miller_m = 8;
        assert!(m8.epc_reply_s() > fm0.epc_reply_s());
        assert!((m8.tag_bit_s() / fm0.tag_bit_s() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn all_durations_are_positive() {
        for timing in [LinkTiming::ar400_default(), LinkTiming::fast()] {
            for d in [
                timing.reader_bit_s(),
                timing.tag_bit_s(),
                timing.t1_s(),
                timing.t2_s(),
                timing.query_s(),
                timing.query_rep_s(),
                timing.ack_s(),
                timing.rn16_s(),
                timing.epc_reply_s(),
                timing.empty_slot_s(),
                timing.collision_slot_s(),
                timing.success_slot_s(),
            ] {
                assert!(d > 0.0);
            }
        }
    }
}
