//! The RF-truth abstraction between protocol and physics.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Answers the two questions the protocol engine asks of the physical
/// world: can tag `i` hear the reader right now, and can the reader decode
/// tag `i`'s backscatter right now.
///
/// `rfid-sim` implements this with the full link budget (geometry,
/// materials, fading, interference); the in-crate implementations are for
/// tests and protocol-only studies.
pub trait AirChannel {
    /// Whether tag `tag` successfully receives a reader command sent at
    /// `time_s`. For a passive tag this also implies it is energized.
    fn reader_to_tag_ok(&mut self, tag: usize, time_s: f64) -> bool;

    /// Whether the reader successfully decodes a (collision-free)
    /// backscatter reply from tag `tag` at `time_s`.
    fn tag_to_reader_ok(&mut self, tag: usize, time_s: f64) -> bool;
}

/// A lossless channel: every command and reply gets through.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfectChannel;

impl AirChannel for PerfectChannel {
    fn reader_to_tag_ok(&mut self, _tag: usize, _time_s: f64) -> bool {
        true
    }

    fn tag_to_reader_ok(&mut self, _tag: usize, _time_s: f64) -> bool {
        true
    }
}

/// An i.i.d. erasure channel with independent forward/reverse delivery
/// probabilities — handy for protocol tests and analytic cross-checks.
#[derive(Debug, Clone)]
pub struct ErasureChannel {
    /// Probability a reader command reaches a tag.
    pub p_forward: f64,
    /// Probability a tag reply is decodable.
    pub p_reverse: f64,
    rng: SmallRng,
}

impl ErasureChannel {
    /// Creates an erasure channel.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]`.
    #[must_use]
    pub fn new(p_forward: f64, p_reverse: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_forward) && (0.0..=1.0).contains(&p_reverse),
            "probabilities must be in [0, 1]"
        );
        Self {
            p_forward,
            p_reverse,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl AirChannel for ErasureChannel {
    fn reader_to_tag_ok(&mut self, _tag: usize, _time_s: f64) -> bool {
        self.rng.gen::<f64>() < self.p_forward
    }

    fn tag_to_reader_ok(&mut self, _tag: usize, _time_s: f64) -> bool {
        self.rng.gen::<f64>() < self.p_reverse
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_channel_always_delivers() {
        let mut ch = PerfectChannel;
        assert!(ch.reader_to_tag_ok(0, 0.0));
        assert!(ch.tag_to_reader_ok(5, 100.0));
    }

    #[test]
    fn erasure_channel_matches_its_probability() {
        let mut ch = ErasureChannel::new(0.25, 0.75, 9);
        let n = 20_000;
        let fwd = (0..n).filter(|_| ch.reader_to_tag_ok(0, 0.0)).count() as f64 / n as f64;
        let rev = (0..n).filter(|_| ch.tag_to_reader_ok(0, 0.0)).count() as f64 / n as f64;
        assert!((fwd - 0.25).abs() < 0.02, "forward = {fwd}");
        assert!((rev - 0.75).abs() < 0.02, "reverse = {rev}");
    }

    #[test]
    fn erasure_channel_is_deterministic_per_seed() {
        let mut a = ErasureChannel::new(0.5, 0.5, 123);
        let mut b = ErasureChannel::new(0.5, 0.5, 123);
        let seq_a: Vec<bool> = (0..50).map(|_| a.reader_to_tag_ok(0, 0.0)).collect();
        let seq_b: Vec<bool> = (0..50).map(|_| b.reader_to_tag_ok(0, 0.0)).collect();
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    #[should_panic(expected = "probabilities must be in [0, 1]")]
    fn probabilities_are_validated() {
        let _ = ErasureChannel::new(1.5, 0.5, 0);
    }
}
