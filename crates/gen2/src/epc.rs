//! 96-bit Electronic Product Codes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A 96-bit EPC identifier — the standard Gen-2 tag identity the paper's
/// tags carry ("typically a unique 96 bit identification code").
///
/// # Examples
///
/// ```
/// use rfid_gen2::Epc96;
///
/// let epc = Epc96::from_u128(0xABCD_0123);
/// let text = epc.to_string();
/// assert_eq!(text.len(), 24); // 24 hex digits
/// assert_eq!(text.parse::<Epc96>().unwrap(), epc);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Epc96([u8; 12]);

impl Epc96 {
    /// Creates an EPC from its 12 raw bytes (big-endian).
    #[must_use]
    pub const fn from_bytes(bytes: [u8; 12]) -> Self {
        Epc96(bytes)
    }

    /// Creates an EPC from the low 96 bits of a `u128`.
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in 96 bits.
    #[must_use]
    pub fn from_u128(value: u128) -> Self {
        assert!(value < (1u128 << 96), "value exceeds 96 bits");
        let bytes = value.to_be_bytes();
        let mut out = [0u8; 12];
        out.copy_from_slice(&bytes[4..]);
        Epc96(out)
    }

    /// Draws a uniformly random EPC.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 12];
        rng.fill(&mut bytes);
        Epc96(bytes)
    }

    /// The 12 raw bytes (big-endian).
    #[must_use]
    pub const fn as_bytes(&self) -> &[u8; 12] {
        &self.0
    }

    /// The EPC as the low 96 bits of a `u128`.
    #[must_use]
    pub fn to_u128(self) -> u128 {
        let mut bytes = [0u8; 16];
        bytes[4..].copy_from_slice(&self.0);
        u128::from_be_bytes(bytes)
    }
}

impl fmt::Display for Epc96 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02X}")?;
        }
        Ok(())
    }
}

/// Error parsing an [`Epc96`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseEpcError {
    reason: &'static str,
}

impl fmt::Display for ParseEpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid EPC: {}", self.reason)
    }
}

impl std::error::Error for ParseEpcError {}

impl FromStr for Epc96 {
    type Err = ParseEpcError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if s.len() != 24 {
            return Err(ParseEpcError {
                reason: "expected 24 hex digits",
            });
        }
        let mut bytes = [0u8; 12];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let text = std::str::from_utf8(chunk).map_err(|_| ParseEpcError {
                reason: "non-ASCII input",
            })?;
            bytes[i] = u8::from_str_radix(text, 16).map_err(|_| ParseEpcError {
                reason: "non-hex digit",
            })?;
        }
        Ok(Epc96(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn u128_round_trip() {
        for v in [0u128, 1, 0xDEAD_BEEF, (1u128 << 96) - 1] {
            assert_eq!(Epc96::from_u128(v).to_u128(), v);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds 96 bits")]
    fn oversized_value_panics() {
        let _ = Epc96::from_u128(1u128 << 96);
    }

    #[test]
    fn display_and_parse_round_trip() {
        let epc = Epc96::from_u128(0x0123_4567_89AB_CDEF);
        let text = epc.to_string();
        assert_eq!(text.parse::<Epc96>().unwrap(), epc);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!("123".parse::<Epc96>().is_err());
        assert!("ZZZZZZZZZZZZZZZZZZZZZZZZ".parse::<Epc96>().is_err());
        assert!("303132333435363738394041".parse::<Epc96>().is_ok());
    }

    #[test]
    fn random_epcs_are_distinct() {
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Epc96::random(&mut rng);
        let b = Epc96::random(&mut rng);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn text_round_trip(v in 0u128..(1u128 << 96)) {
            let epc = Epc96::from_u128(v);
            prop_assert_eq!(epc.to_string().parse::<Epc96>().unwrap(), epc);
        }
    }
}
