//! Reader wire-path failure coverage over real TCP: stalled peers must
//! time out instead of hanging, garbage and truncated frames must
//! surface as typed errors, and the multi-connection serve loop must
//! isolate a misbehaving client from everyone else.

use rfid_readerapi::{
    serve, ClientError, ReaderClient, ReaderEmulator, ServeOptions, TcpTransport, TransportError,
};
use std::error::Error as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A server that accepts one connection, reads one request line, and
/// then runs `respond` on the raw stream.
fn one_shot_server<F>(respond: F) -> std::net::SocketAddr
where
    F: FnOnce(TcpStream) + Send + 'static,
{
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let (stream, _) = listener.accept().expect("accept");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut request = String::new();
        reader.read_line(&mut request).expect("read request");
        respond(stream);
    });
    addr
}

/// Regression: a stalled (half-open) server used to hang the client in
/// `read_line` forever. Every call must now fail with a typed timeout
/// within the configured deadline.
#[test]
fn stalled_server_times_out_instead_of_hanging() {
    let (release_tx, release_rx) = mpsc::channel::<()>();
    let addr = one_shot_server(move |stream| {
        // Hold the connection open, never answer, until the test ends.
        let _ = release_rx.recv();
        drop(stream);
    });

    let deadline = Duration::from_millis(200);
    let transport = TcpTransport::connect_with_deadline(addr, Some(deadline)).expect("connect");
    let mut client = ReaderClient::new(transport);
    let started = Instant::now();
    let err = client.get_tags().expect_err("stall must not succeed");
    let elapsed = started.elapsed();

    assert!(
        matches!(
            err,
            ClientError::Transport(TransportError::Timeout {
                deadline: Some(d)
            }) if d == deadline
        ),
        "expected a typed timeout carrying the deadline, got {err:?}"
    );
    assert!(
        elapsed < deadline * 10,
        "timeout must fire near the deadline, took {elapsed:?}"
    );
    release_tx.send(()).expect("release server");
}

#[test]
fn garbage_frames_over_tcp_surface_as_wire_errors() {
    let addr = one_shot_server(|mut stream| {
        stream
            .write_all(b"}}} this is not xml {{{\n")
            .expect("write garbage");
    });
    let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect"));
    let err = client.get_tags().expect_err("garbage must not parse");
    assert!(
        matches!(err, ClientError::Wire(_)),
        "expected a wire error, got {err:?}"
    );
}

#[test]
fn truncated_frames_over_tcp_surface_as_truncation() {
    let addr = one_shot_server(|mut stream| {
        // Start a frame, then die before the newline terminator.
        stream
            .write_all(b"<response><tags><tag><epc>AA0")
            .expect("write partial frame");
        drop(stream);
    });
    let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect"));
    let err = client.get_tags().expect_err("truncation must not succeed");
    assert_eq!(
        err,
        ClientError::Transport(TransportError::Truncated),
        "mid-frame EOF must be reported as truncation"
    );
}

#[test]
fn client_error_display_and_source_cover_every_variant() {
    let cases: Vec<(ClientError, &str, bool)> = vec![
        (
            ClientError::Transport(TransportError::Timeout {
                deadline: Some(Duration::from_millis(250)),
            }),
            "transport error",
            true,
        ),
        (
            ClientError::Transport(TransportError::RetriesExhausted {
                attempts: 3,
                last: Box::new(TransportError::Disconnected),
            }),
            "3 attempts",
            true,
        ),
        (
            ClientError::Wire(
                rfid_readerapi::XmlNode::parse("not xml").expect_err("garbage must fail"),
            ),
            "wire error",
            true,
        ),
        (
            ClientError::Reader("antenna fault".into()),
            "reader error: antenna fault",
            false,
        ),
        (
            ClientError::UnexpectedResponse("Ok".into()),
            "unexpected response: Ok",
            false,
        ),
    ];
    for (err, needle, has_source) in cases {
        let text = err.to_string();
        assert!(text.contains(needle), "{text:?} missing {needle:?}");
        assert_eq!(err.source().is_some(), has_source, "{err:?}");
    }
}

/// Regression: `BufRead::lines()` used to yield a final *unterminated*
/// line as `Ok`, so a client that died mid-frame had its partial frame
/// promoted to a complete request and the disconnect vanished into a
/// response written to a dead socket. A mid-frame EOF must now surface
/// as a typed truncation in the wire counters and count the connection
/// as errored — while a healthy connection still completes.
#[test]
fn mid_frame_disconnect_during_serve_surfaces_typed() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let emulator = Mutex::new(ReaderEmulator::new());
        let options = ServeOptions {
            max_connections: Some(2),
            read_timeout: Some(Duration::from_secs(2)),
        };
        serve(&listener, &emulator, options).expect("serve loop")
    });
    let before = rfid_readerapi::counters::snapshot();

    // Connection 1: starts a request frame, then dies before the
    // newline terminator.
    let mut dying = TcpStream::connect(addr).expect("connect dying client");
    dying
        .write_all(b"<request><status/></requ")
        .expect("send partial frame");
    drop(dying);

    // Connection 2: a healthy session is unaffected.
    let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect healthy"));
    client.status().expect("healthy session completes");
    drop(client);

    let summary = server.join().expect("server thread");
    assert_eq!(summary.connections, 2);
    assert_eq!(
        summary.connection_errors, 1,
        "the mid-frame death must be an error, not a silent drop: {summary:?}"
    );
    let delta = rfid_readerapi::counters::snapshot().since(&before);
    assert!(
        delta.truncations >= 1,
        "the truncation must be tallied in the wire counters: {delta:?}"
    );
}

/// The multi-connection serve loop: a client sending malformed XML gets
/// an in-band `<error>` answer, a client that stalls past the read
/// deadline gets dropped and counted — and in both cases a healthy
/// client on another connection completes its full session.
#[test]
fn serve_isolates_misbehaving_connections() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let server = std::thread::spawn(move || {
        let emulator = Mutex::new(ReaderEmulator::new());
        let options = ServeOptions {
            max_connections: Some(3),
            read_timeout: Some(Duration::from_millis(150)),
        };
        serve(&listener, &emulator, options).expect("serve loop")
    });

    // Connection 1: speaks malformed XML, stays connected, and gets a
    // well-formed error back for each bad frame.
    let mut garbler = TcpStream::connect(addr).expect("connect garbler");
    let mut garbler_reader = BufReader::new(garbler.try_clone().expect("clone"));
    for _ in 0..3 {
        garbler
            .write_all(b"<request><oops\n")
            .expect("send garbage");
        let mut reply = String::new();
        garbler_reader.read_line(&mut reply).expect("read reply");
        assert!(
            reply.contains("<error>"),
            "malformed XML is answered in-band: {reply:?}"
        );
    }

    // Connection 2: connects and stalls past the server's read
    // deadline; the server must drop it as errored.
    let staller = TcpStream::connect(addr).expect("connect staller");

    // Connection 3: a healthy client runs a complete session while the
    // other two misbehave.
    let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect healthy"));
    client.start_buffered().expect("start buffered");
    client.set_power(27.0).expect("set power");
    let status = client.status().expect("status");
    assert_eq!(status.power_dbm, 27.0);
    assert!(client.get_tags().expect("tags").is_empty());
    drop(client);
    // Close *both* handles to the garbler's socket so the server sees a
    // clean FIN rather than a read timeout.
    drop(garbler_reader);
    drop(garbler);

    let summary = server.join().expect("server thread");
    assert_eq!(summary.connections, 3);
    assert_eq!(
        summary.connection_errors, 1,
        "exactly the stalled connection errors; garbled XML and clean \
         disconnects do not: {summary:?}"
    );
    drop(staller);
}
