//! Property tests over the XML wire format: the parser never panics on
//! arbitrary input, and every generated document round-trips.

use proptest::prelude::*;
use rfid_readerapi::{valid_name, Request, Response, StatusReport, TagRecord, XmlNode};

/// Every name the parser accepts: alphanumerics and `-`, any position.
const NAME: &str = "[a-zA-Z0-9-][a-zA-Z0-9-]{0,8}";
/// Printable text *plus the control characters* that used to desync the
/// newline framing (`\n`, `\r`, `\t`, low controls, DEL).
const TEXT: &str = "[ -~\n\r\t\u{0}-\u{8}\u{7f}]{0,24}";

fn arb_leaf() -> impl Strategy<Value = XmlNode> {
    (NAME, TEXT).prop_map(|(name, text)| XmlNode::leaf(&name, text.trim_matches(' ').to_owned()))
}

fn arb_tree() -> impl Strategy<Value = XmlNode> {
    arb_leaf().prop_recursive(3, 24, 4, |inner| {
        (NAME, proptest::collection::vec(inner, 0..4))
            .prop_map(|(name, children)| XmlNode::branch(&name, children))
    })
}

proptest! {
    /// Arbitrary bytes: parsing returns a Result, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,256}") {
        let _ = XmlNode::parse(&input);
    }

    /// Arbitrary angle-bracket soup: still no panics.
    #[test]
    fn parser_survives_tag_soup(input in "[<>/a-z \\-]{0,128}") {
        let _ = XmlNode::parse(&input);
    }

    /// parse ∘ to_xml is the identity on every constructible node: any
    /// name [`XmlNode::try_leaf`]/[`try_branch`] accept serializes to a
    /// single control-free frame that parses back to the same tree.
    /// (Before name validation, `leaf("a b", …)` serialized happily and
    /// then failed to parse, breaking this symmetry.)
    #[test]
    fn trees_round_trip(tree in arb_tree()) {
        let xml = tree.to_xml();
        prop_assert!(
            xml.chars().all(|c| !c.is_control()),
            "frame must be single-line: {:?}", xml
        );
        let parsed = XmlNode::parse(&xml).expect("own output must parse");
        prop_assert_eq!(parsed, tree);
    }

    /// Name validation at construction matches the parser exactly: a
    /// name is constructible iff the parser would accept it.
    #[test]
    fn constructible_names_match_parser_names(name in "[ -~]{0,10}") {
        let constructible = XmlNode::try_branch(&name, Vec::new()).is_ok();
        prop_assert_eq!(constructible, valid_name(&name));
        if constructible {
            let xml = XmlNode::try_branch(&name, Vec::new()).unwrap().to_xml();
            prop_assert!(XmlNode::parse(&xml).is_ok(), "{:?}", xml);
        }
    }

    /// EPCs and error text containing newlines survive the protocol
    /// layer in one frame (the original framing-desync bug).
    #[test]
    fn control_laden_tag_records_round_trip(
        epc in "[0-9A-F\n\r\t]{1,24}",
        message in "[ -~\n\r]{0,32}",
    ) {
        let epc = epc.trim_matches(' ').to_owned();
        let message = message.trim_matches(' ').to_owned();
        let tags = Response::Tags(vec![TagRecord { epc, antenna: 1, time_s: 1.0 }]);
        let error = Response::Error(message);
        for response in [tags, error] {
            let xml = response.to_xml();
            prop_assert!(!xml.contains('\n') && !xml.contains('\r'), "{:?}", xml);
            prop_assert_eq!(Response::from_xml(&xml).expect("round trip"), response);
        }
    }

    /// Every tag list round-trips through the full protocol layer.
    #[test]
    fn tag_lists_round_trip(
        records in proptest::collection::vec(
            ("[0-9A-F]{24}", 1u8..5, 0.0f64..100.0),
            0..16,
        )
    ) {
        let tags: Vec<TagRecord> = records
            .into_iter()
            .map(|(epc, antenna, time_s)| TagRecord { epc, antenna, time_s })
            .collect();
        let response = Response::Tags(tags.clone());
        let parsed = Response::from_xml(&response.to_xml()).expect("round trip");
        match parsed {
            Response::Tags(out) => {
                prop_assert_eq!(out.len(), tags.len());
                for (a, b) in out.iter().zip(&tags) {
                    prop_assert_eq!(&a.epc, &b.epc);
                    prop_assert_eq!(a.antenna, b.antenna);
                    prop_assert!((a.time_s - b.time_s).abs() < 1e-6);
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Power levels round-trip through requests.
    #[test]
    fn set_power_round_trips(dbm in 10.0f64..33.0) {
        let request = Request::SetPower(dbm);
        match Request::from_xml(&request.to_xml()).expect("round trip") {
            Request::SetPower(out) => prop_assert!((out - dbm).abs() < 1e-9),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Status reports round-trip.
    #[test]
    fn status_round_trips(power in 10.0f64..33.0, buffered in 0usize..10_000) {
        for mode in [rfid_readerapi::ReaderMode::Polled, rfid_readerapi::ReaderMode::Buffered] {
            let response = Response::Status(StatusReport {
                mode,
                power_dbm: power,
                buffered,
            });
            let parsed = Response::from_xml(&response.to_xml()).expect("round trip");
            match parsed {
                Response::Status(status) => {
                    prop_assert_eq!(status.mode, mode);
                    prop_assert_eq!(status.buffered, buffered);
                }
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}
