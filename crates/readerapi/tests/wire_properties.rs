//! Property tests over the XML wire format: the parser never panics on
//! arbitrary input, and every generated document round-trips.

use proptest::prelude::*;
use rfid_readerapi::{Request, Response, StatusReport, TagRecord, XmlNode};

fn arb_leaf() -> impl Strategy<Value = XmlNode> {
    ("[a-z][a-z0-9-]{0,8}", "[ -~&&[^<>&]]{0,24}")
        .prop_map(|(name, text)| XmlNode::leaf(&name, text.trim().to_owned()))
}

fn arb_tree() -> impl Strategy<Value = XmlNode> {
    arb_leaf().prop_recursive(3, 24, 4, |inner| {
        (
            "[a-z][a-z0-9-]{0,8}",
            proptest::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, children)| XmlNode::branch(&name, children))
    })
}

proptest! {
    /// Arbitrary bytes: parsing returns a Result, never panics.
    #[test]
    fn parser_never_panics(input in ".{0,256}") {
        let _ = XmlNode::parse(&input);
    }

    /// Arbitrary angle-bracket soup: still no panics.
    #[test]
    fn parser_survives_tag_soup(input in "[<>/a-z \\-]{0,128}") {
        let _ = XmlNode::parse(&input);
    }

    /// Every tree our writer can produce parses back identically.
    #[test]
    fn trees_round_trip(tree in arb_tree()) {
        let xml = tree.to_xml();
        let parsed = XmlNode::parse(&xml).expect("own output must parse");
        prop_assert_eq!(parsed, tree);
    }

    /// Every tag list round-trips through the full protocol layer.
    #[test]
    fn tag_lists_round_trip(
        records in proptest::collection::vec(
            ("[0-9A-F]{24}", 1u8..5, 0.0f64..100.0),
            0..16,
        )
    ) {
        let tags: Vec<TagRecord> = records
            .into_iter()
            .map(|(epc, antenna, time_s)| TagRecord { epc, antenna, time_s })
            .collect();
        let response = Response::Tags(tags.clone());
        let parsed = Response::from_xml(&response.to_xml()).expect("round trip");
        match parsed {
            Response::Tags(out) => {
                prop_assert_eq!(out.len(), tags.len());
                for (a, b) in out.iter().zip(&tags) {
                    prop_assert_eq!(&a.epc, &b.epc);
                    prop_assert_eq!(a.antenna, b.antenna);
                    prop_assert!((a.time_s - b.time_s).abs() < 1e-6);
                }
            }
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Power levels round-trip through requests.
    #[test]
    fn set_power_round_trips(dbm in 10.0f64..33.0) {
        let request = Request::SetPower(dbm);
        match Request::from_xml(&request.to_xml()).expect("round trip") {
            Request::SetPower(out) => prop_assert!((out - dbm).abs() < 1e-9),
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    /// Status reports round-trip.
    #[test]
    fn status_round_trips(power in 10.0f64..33.0, buffered in 0usize..10_000) {
        for mode in [rfid_readerapi::ReaderMode::Polled, rfid_readerapi::ReaderMode::Buffered] {
            let response = Response::Status(StatusReport {
                mode,
                power_dbm: power,
                buffered,
            });
            let parsed = Response::from_xml(&response.to_xml()).expect("round trip");
            match parsed {
                Response::Status(status) => {
                    prop_assert_eq!(status.mode, mode);
                    prop_assert_eq!(status.buffered, buffered);
                }
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
    }
}
