//! The reader command set and its XML encoding.

use crate::wire::{WireError, XmlNode};

/// One tag report served by the reader.
#[derive(Debug, Clone, PartialEq)]
pub struct TagRecord {
    /// EPC as 24 hex digits.
    pub epc: String,
    /// Antenna port that read the tag (1-based, reader convention).
    pub antenna: u8,
    /// Reader timestamp in seconds.
    pub time_s: f64,
}

/// Reader operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReaderMode {
    /// Reads are served only from the moment of the request (single
    /// inventory), like the paper's read-range experiment.
    #[default]
    Polled,
    /// Continuous inventory with buffering, the paper's default mode.
    Buffered,
}

/// A reader status snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct StatusReport {
    /// Current mode.
    pub mode: ReaderMode,
    /// Transmit power in dBm.
    pub power_dbm: f64,
    /// Reads currently buffered.
    pub buffered: usize,
}

/// A command from the client to the reader.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Return (and drain) the tag list.
    GetTags,
    /// Enter buffered (continuous) read mode.
    StartBuffered,
    /// Leave buffered mode.
    StopBuffered,
    /// Discard buffered reads.
    ClearBuffer,
    /// Report status.
    Status,
    /// Set transmit power in dBm.
    SetPower(f64),
    /// Ask the reader which portal it is. Reverse-connection
    /// deployments (readers dialing in to a site server) use this as
    /// the first exchange so the server can route the session's reads
    /// to the right portal lane.
    Identify,
}

impl Request {
    /// Encodes to the XML wire format.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let body = match self {
            Request::GetTags => XmlNode::branch("get-tags", Vec::new()),
            Request::StartBuffered => XmlNode::branch("start-buffered", Vec::new()),
            Request::StopBuffered => XmlNode::branch("stop-buffered", Vec::new()),
            Request::ClearBuffer => XmlNode::branch("clear-buffer", Vec::new()),
            Request::Status => XmlNode::branch("status", Vec::new()),
            Request::SetPower(dbm) => XmlNode::leaf("set-power", format!("{dbm}")),
            Request::Identify => XmlNode::branch("identify", Vec::new()),
        };
        XmlNode::branch("request", vec![body]).to_xml()
    }

    /// Decodes from the XML wire format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed XML or unknown commands.
    pub fn from_xml(xml: &str) -> Result<Request, WireError> {
        let root = XmlNode::parse(xml)?;
        if root.name != "request" || root.children.len() != 1 {
            return Err(WireError::new("expected a <request> with one command"));
        }
        let cmd = &root.children[0];
        match cmd.name.as_str() {
            "get-tags" => Ok(Request::GetTags),
            "start-buffered" => Ok(Request::StartBuffered),
            "stop-buffered" => Ok(Request::StopBuffered),
            "clear-buffer" => Ok(Request::ClearBuffer),
            "status" => Ok(Request::Status),
            "set-power" => cmd
                .text
                .parse()
                .map(Request::SetPower)
                .map_err(|_| WireError::new("set-power requires a number")),
            "identify" => Ok(Request::Identify),
            other => Err(WireError::new(format!("unknown command <{other}>"))),
        }
    }
}

/// A reader reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Command accepted.
    Ok,
    /// The requested tag list.
    Tags(Vec<TagRecord>),
    /// Status snapshot.
    Status(StatusReport),
    /// The reader's portal index, answering [`Request::Identify`].
    Identity(usize),
    /// Command failed.
    Error(String),
}

impl Response {
    /// Encodes to the XML wire format.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let body = match self {
            Response::Ok => XmlNode::branch("ok", Vec::new()),
            Response::Error(message) => XmlNode::leaf("error", message.clone()),
            Response::Identity(reader) => XmlNode::leaf("identity", reader.to_string()),
            Response::Tags(tags) => XmlNode::branch(
                "tags",
                tags.iter()
                    .map(|t| {
                        XmlNode::branch(
                            "tag",
                            vec![
                                XmlNode::leaf("epc", t.epc.clone()),
                                XmlNode::leaf("antenna", t.antenna.to_string()),
                                // Shortest-round-trip float text: the wire
                                // must hand back the exact timestamp it was
                                // fed, or the streaming data plane downstream
                                // of the adapter diverges from the recorded
                                // truth.
                                XmlNode::leaf("time", format!("{}", t.time_s)),
                            ],
                        )
                    })
                    .collect(),
            ),
            Response::Status(status) => XmlNode::branch(
                "status",
                vec![
                    XmlNode::leaf(
                        "mode",
                        match status.mode {
                            ReaderMode::Polled => "polled",
                            ReaderMode::Buffered => "buffered",
                        },
                    ),
                    XmlNode::leaf("power", format!("{}", status.power_dbm)),
                    XmlNode::leaf("buffered", status.buffered.to_string()),
                ],
            ),
        };
        XmlNode::branch("response", vec![body]).to_xml()
    }

    /// Decodes from the XML wire format.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for malformed XML or unknown reply shapes.
    pub fn from_xml(xml: &str) -> Result<Response, WireError> {
        let root = XmlNode::parse(xml)?;
        if root.name != "response" || root.children.len() != 1 {
            return Err(WireError::new("expected a <response> with one body"));
        }
        let body = &root.children[0];
        match body.name.as_str() {
            "ok" => Ok(Response::Ok),
            "error" => Ok(Response::Error(body.text.clone())),
            "identity" => body
                .text
                .parse()
                .map(Response::Identity)
                .map_err(|_| WireError::new("identity requires a reader index")),
            "tags" => {
                let mut tags = Vec::new();
                for tag in &body.children {
                    if tag.name != "tag" {
                        return Err(WireError::new("expected <tag> entries"));
                    }
                    let field = |name: &str| -> Result<&str, WireError> {
                        tag.child(name)
                            .map(|n| n.text.as_str())
                            .ok_or_else(|| WireError::new(format!("missing <{name}>")))
                    };
                    tags.push(TagRecord {
                        epc: field("epc")?.to_owned(),
                        antenna: field("antenna")?
                            .parse()
                            .map_err(|_| WireError::new("bad antenna number"))?,
                        time_s: field("time")?
                            .parse()
                            .map_err(|_| WireError::new("bad timestamp"))?,
                    });
                }
                Ok(Response::Tags(tags))
            }
            "status" => {
                let field = |name: &str| -> Result<&str, WireError> {
                    body.child(name)
                        .map(|n| n.text.as_str())
                        .ok_or_else(|| WireError::new(format!("missing <{name}>")))
                };
                let mode = match field("mode")? {
                    "polled" => ReaderMode::Polled,
                    "buffered" => ReaderMode::Buffered,
                    other => return Err(WireError::new(format!("unknown mode {other:?}"))),
                };
                Ok(Response::Status(StatusReport {
                    mode,
                    power_dbm: field("power")?
                        .parse()
                        .map_err(|_| WireError::new("bad power"))?,
                    buffered: field("buffered")?
                        .parse()
                        .map_err(|_| WireError::new("bad buffer count"))?,
                }))
            }
            other => Err(WireError::new(format!("unknown response <{other}>"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        for request in [
            Request::GetTags,
            Request::StartBuffered,
            Request::StopBuffered,
            Request::ClearBuffer,
            Request::Status,
            Request::SetPower(27.5),
            Request::Identify,
        ] {
            let xml = request.to_xml();
            assert_eq!(Request::from_xml(&xml).unwrap(), request, "{xml}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Ok,
            Response::Error("antenna fault".into()),
            Response::Tags(vec![
                TagRecord {
                    epc: "AA00000000000000000000BB".into(),
                    antenna: 1,
                    time_s: 1.25,
                },
                TagRecord {
                    epc: "AA00000000000000000000CC".into(),
                    antenna: 2,
                    time_s: 2.5,
                },
            ]),
            Response::Status(StatusReport {
                mode: ReaderMode::Buffered,
                power_dbm: 30.0,
                buffered: 17,
            }),
            Response::Identity(0),
            Response::Identity(7),
        ];
        for response in responses {
            let xml = response.to_xml();
            assert_eq!(Response::from_xml(&xml).unwrap(), response, "{xml}");
        }
    }

    #[test]
    fn empty_tag_list_round_trips() {
        let xml = Response::Tags(Vec::new()).to_xml();
        assert_eq!(
            Response::from_xml(&xml).unwrap(),
            Response::Tags(Vec::new())
        );
    }

    #[test]
    fn unknown_commands_are_rejected() {
        assert!(Request::from_xml("<request><reboot/></request>").is_err());
        assert!(Request::from_xml("<request/>").is_err());
        assert!(Response::from_xml("<response><maybe/></response>").is_err());
    }

    #[test]
    fn set_power_requires_a_number() {
        assert!(Request::from_xml("<request><set-power>loud</set-power></request>").is_err());
        assert_eq!(
            Request::from_xml("<request><set-power>12.5</set-power></request>").unwrap(),
            Request::SetPower(12.5)
        );
    }

    #[test]
    fn control_characters_in_payloads_round_trip_in_one_frame() {
        // Regression: an epc or error message containing a newline used
        // to serialize as a raw `\n`, splitting the document across two
        // newline-delimited frames and desyncing the stream.
        let nasty = Response::Tags(vec![TagRecord {
            epc: "AA00\nBB\r\u{1}".into(),
            antenna: 1,
            time_s: 0.5,
        }]);
        let xml = nasty.to_xml();
        assert!(
            xml.chars().all(|c| !c.is_control()),
            "frame must stay single-line: {xml:?}"
        );
        assert_eq!(Response::from_xml(&xml).unwrap(), nasty);

        let error = Response::Error("first line\nsecond line".into());
        let xml = error.to_xml();
        assert!(!xml.contains('\n'));
        assert_eq!(Response::from_xml(&xml).unwrap(), error);
    }

    #[test]
    fn timestamps_round_trip_bit_exactly() {
        // Regression: `{:.6}` formatting used to quantize timestamps to
        // microseconds on the wire, so a replayed session diverged from
        // the recorded truth downstream of the adapter.
        let awkward = Response::Tags(vec![TagRecord {
            epc: "AA00000000000000000000BB".into(),
            antenna: 1,
            time_s: 0.008_420_024_999_999_998,
        }]);
        let decoded = Response::from_xml(&awkward.to_xml()).unwrap();
        assert_eq!(decoded, awkward);
    }

    #[test]
    fn wire_format_is_stable() {
        // Downstream parsers depend on these exact shapes.
        assert_eq!(Request::GetTags.to_xml(), "<request><get-tags/></request>");
        assert_eq!(Response::Ok.to_xml(), "<response><ok/></response>");
    }
}
