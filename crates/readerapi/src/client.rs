//! The application-side reader client.

use crate::counters;
use crate::error::TransportError;
use crate::protocol::{Request, Response, StatusReport, TagRecord};
use crate::server::ReaderEmulator;
use crate::wire::WireError;
use std::error::Error;
use std::fmt;

/// A request/response byte transport to a reader.
///
/// The paper's harness spoke HTTP to the AR400; any blocking
/// request-response carrier fits this trait. An exchange either yields
/// the peer's response document or a typed [`TransportError`] — there
/// is no in-band error sentinel. Implementations in this crate:
/// [`InMemoryTransport`] (loopback), [`crate::TcpTransport`]
/// (deadline-guarded TCP), [`crate::RetryingTransport`] (bounded
/// deterministic retry), and [`crate::FaultTransport`] (seeded chaos).
pub trait Transport {
    /// Sends one request document and returns the response document.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] when the exchange could not be
    /// completed (I/O failure, timeout, disconnect, truncation).
    fn exchange(&mut self, request_xml: &str) -> Result<String, TransportError>;

    /// Restores the transport to a usable state after a failed
    /// exchange — a TCP transport reconnects; stateless transports need
    /// nothing and keep this default no-op.
    ///
    /// # Errors
    ///
    /// Returns a [`TransportError`] when recovery itself failed.
    fn reset(&mut self) -> Result<(), TransportError> {
        Ok(())
    }
}

/// Loopback transport embedding a [`ReaderEmulator`].
#[derive(Debug, Clone, Default)]
pub struct InMemoryTransport {
    emulator: ReaderEmulator,
}

impl InMemoryTransport {
    /// Wraps an emulator.
    #[must_use]
    pub fn new(emulator: ReaderEmulator) -> Self {
        Self { emulator }
    }

    /// Shared access to the embedded emulator.
    #[must_use]
    pub fn emulator(&self) -> &ReaderEmulator {
        &self.emulator
    }

    /// Exclusive access to the embedded emulator (to feed reads).
    pub fn emulator_mut(&mut self) -> &mut ReaderEmulator {
        &mut self.emulator
    }
}

impl Transport for InMemoryTransport {
    fn exchange(&mut self, request_xml: &str) -> Result<String, TransportError> {
        counters::record_request();
        Ok(self.emulator.handle_xml(request_xml))
    }
}

/// Errors surfaced by [`ReaderClient`] calls.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClientError {
    /// The exchange itself failed (I/O, timeout, disconnect, retries
    /// exhausted).
    Transport(TransportError),
    /// The response was not parseable.
    Wire(WireError),
    /// The reader returned an error.
    Reader(String),
    /// The reader returned a well-formed but unexpected response kind.
    UnexpectedResponse(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Transport(err) => write!(f, "transport error: {err}"),
            ClientError::Wire(err) => write!(f, "wire error: {err}"),
            ClientError::Reader(message) => write!(f, "reader error: {message}"),
            ClientError::UnexpectedResponse(kind) => {
                write!(f, "unexpected response: {kind}")
            }
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Transport(err) => Some(err),
            ClientError::Wire(err) => Some(err),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(err: WireError) -> Self {
        ClientError::Wire(err)
    }
}

impl From<TransportError> for ClientError {
    fn from(err: TransportError) -> Self {
        ClientError::Transport(err)
    }
}

/// A typed client over any [`Transport`].
#[derive(Debug, Clone)]
pub struct ReaderClient<T> {
    transport: T,
}

impl<T: Transport> ReaderClient<T> {
    /// Creates a client over the given transport.
    #[must_use]
    pub fn new(transport: T) -> Self {
        Self { transport }
    }

    /// Borrows the transport (e.g. to feed an in-memory emulator).
    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let reply = self.transport.exchange(&request.to_xml())?;
        let response = Response::from_xml(&reply)?;
        if let Response::Error(message) = response {
            return Err(ClientError::Reader(message));
        }
        Ok(response)
    }

    fn expect_ok(&mut self, request: &Request) -> Result<(), ClientError> {
        match self.call(request)? {
            Response::Ok => Ok(()),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches (and drains) the reader's tag list.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, wire, or reader failures.
    pub fn get_tags(&mut self) -> Result<Vec<TagRecord>, ClientError> {
        match self.call(&Request::GetTags)? {
            Response::Tags(tags) => Ok(tags),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Enters buffered (continuous) read mode.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, wire, or reader failures.
    pub fn start_buffered(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::StartBuffered)
    }

    /// Leaves buffered mode.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, wire, or reader failures.
    pub fn stop_buffered(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::StopBuffered)
    }

    /// Clears the read buffer.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, wire, or reader failures.
    pub fn clear_buffer(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::ClearBuffer)
    }

    /// Fetches reader status.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, wire, or reader failures.
    pub fn status(&mut self) -> Result<StatusReport, ClientError> {
        match self.call(&Request::Status)? {
            Response::Status(status) => Ok(status),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Asks the reader which portal it is (reverse-connection
    /// deployments route sessions by this index).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] on transport, wire, or reader failures.
    pub fn identify(&mut self) -> Result<usize, ClientError> {
        match self.call(&Request::Identify)? {
            Response::Identity(reader) => Ok(reader),
            other => Err(ClientError::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Sets transmit power.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Reader`] if the reader rejects the power
    /// level, or other variants on transport/wire failures.
    pub fn set_power(&mut self, dbm: f64) -> Result<(), ClientError> {
        self.expect_ok(&Request::SetPower(dbm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReaderMode;

    fn client() -> ReaderClient<InMemoryTransport> {
        ReaderClient::new(InMemoryTransport::new(ReaderEmulator::new()))
    }

    #[test]
    fn full_buffered_session() {
        let mut client = client();
        client.start_buffered().unwrap();
        client.transport_mut().emulator_mut().feed(TagRecord {
            epc: "AA00000000000000000000BB".into(),
            antenna: 1,
            time_s: 0.5,
        });
        let status = client.status().unwrap();
        assert_eq!(status.mode, ReaderMode::Buffered);
        assert_eq!(status.buffered, 1);
        let tags = client.get_tags().unwrap();
        assert_eq!(tags.len(), 1);
        assert_eq!(tags[0].epc, "AA00000000000000000000BB");
        client.stop_buffered().unwrap();
        assert_eq!(client.status().unwrap().mode, ReaderMode::Polled);
    }

    #[test]
    fn identify_round_trips_the_portal_index() {
        let mut client =
            ReaderClient::new(InMemoryTransport::new(ReaderEmulator::with_reader_id(4)));
        assert_eq!(client.identify().unwrap(), 4);
    }

    #[test]
    fn reader_errors_surface_as_client_errors() {
        let mut client = client();
        let err = client.set_power(99.0).unwrap_err();
        assert!(matches!(err, ClientError::Reader(_)));
        assert!(err.to_string().contains("99"));
    }

    #[test]
    fn set_power_round_trips() {
        let mut client = client();
        client.set_power(25.0).unwrap();
        assert_eq!(client.status().unwrap().power_dbm, 25.0);
    }

    #[test]
    fn garbage_transport_yields_wire_errors() {
        struct Garbage;
        impl Transport for Garbage {
            fn exchange(&mut self, _request_xml: &str) -> Result<String, TransportError> {
                Ok("<<<not xml".to_owned())
            }
        }
        let mut client = ReaderClient::new(Garbage);
        assert!(matches!(client.get_tags(), Err(ClientError::Wire(_))));
    }

    #[test]
    fn transport_failures_surface_typed() {
        struct Dead;
        impl Transport for Dead {
            fn exchange(&mut self, _request_xml: &str) -> Result<String, TransportError> {
                Err(TransportError::Disconnected)
            }
        }
        let mut client = ReaderClient::new(Dead);
        let err = client.get_tags().unwrap_err();
        assert_eq!(
            err,
            ClientError::Transport(TransportError::Disconnected),
            "the typed failure crosses the client unchanged"
        );
        assert!(err.source().is_some(), "transport error is the source");
    }

    #[test]
    fn clear_buffer_works_through_the_client() {
        let mut client = client();
        client.start_buffered().unwrap();
        client.transport_mut().emulator_mut().feed(TagRecord {
            epc: "AA".into(),
            antenna: 1,
            time_s: 0.0,
        });
        client.clear_buffer().unwrap();
        assert!(client.get_tags().unwrap().is_empty());
    }
}
