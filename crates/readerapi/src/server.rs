//! The reader emulator.

use crate::protocol::{ReaderMode, Request, Response, StatusReport, TagRecord};
use rfid_sim::SimOutput;

/// An AR400-style reader emulator.
///
/// The emulator sits between an RF truth source and a client speaking the
/// XML command set. Reads are *fed* to it (from a simulation run, a trace,
/// or a test) and served according to the mode:
///
/// * **Buffered** — fed reads accumulate and `get-tags` drains the buffer,
/// * **Polled** — fed reads are dropped unless a `get-tags` is in flight;
///   clients use [`ReaderEmulator::poll_window`] to run a single
///   inventory's worth of truth through the reader.
#[derive(Debug, Clone, Default)]
pub struct ReaderEmulator {
    mode: ReaderMode,
    power_dbm: f64,
    buffer: Vec<TagRecord>,
    reader_id: usize,
}

impl ReaderEmulator {
    /// Creates a reader in polled mode at 30 dBm (the paper's default
    /// power), identifying as portal 0.
    #[must_use]
    pub fn new() -> Self {
        Self {
            mode: ReaderMode::Polled,
            power_dbm: 30.0,
            buffer: Vec::new(),
            reader_id: 0,
        }
    }

    /// Creates a reader identifying as portal `reader_id` — the index a
    /// site server routes this session's reads under.
    #[must_use]
    pub fn with_reader_id(reader_id: usize) -> Self {
        let mut reader = Self::new();
        reader.reader_id = reader_id;
        reader
    }

    /// The portal index served to [`Request::Identify`].
    #[must_use]
    pub fn reader_id(&self) -> usize {
        self.reader_id
    }

    /// Re-labels the portal index served to [`Request::Identify`].
    pub fn set_reader_id(&mut self, reader_id: usize) {
        self.reader_id = reader_id;
    }

    /// Current mode.
    #[must_use]
    pub fn mode(&self) -> ReaderMode {
        self.mode
    }

    /// Current transmit power.
    #[must_use]
    pub fn power_dbm(&self) -> f64 {
        self.power_dbm
    }

    /// Number of buffered reads.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Feeds one read from the RF front end. Buffered mode accumulates;
    /// polled mode drops it (the read happened while nobody asked).
    pub fn feed(&mut self, record: TagRecord) {
        if self.mode == ReaderMode::Buffered {
            self.buffer.push(record);
        }
    }

    /// Feeds one simulator read, mapping the simulator's 0-based antenna
    /// port to the reader's 1-based convention — the streaming face of
    /// [`ReaderEmulator::feed_simulation`].
    pub fn feed_sim_read(&mut self, read: &rfid_sim::ReadEvent) {
        self.feed(TagRecord {
            epc: read.epc.to_string(),
            antenna: (read.antenna + 1) as u8,
            time_s: read.time_s,
        });
    }

    /// Feeds every read of a simulation output, mapping the simulator's
    /// 0-based antenna ports to the reader's 1-based convention.
    pub fn feed_simulation(&mut self, output: &SimOutput) {
        for read in &output.reads {
            self.feed_sim_read(read);
        }
    }

    /// Runs one polled inventory: serves exactly the given reads as the
    /// response to the *next* `get-tags`, regardless of mode.
    pub fn poll_window(&mut self, records: Vec<TagRecord>) {
        self.buffer = records;
    }

    /// Handles a decoded request.
    pub fn handle(&mut self, request: &Request) -> Response {
        match request {
            Request::GetTags => Response::Tags(std::mem::take(&mut self.buffer)),
            Request::StartBuffered => {
                self.mode = ReaderMode::Buffered;
                Response::Ok
            }
            Request::StopBuffered => {
                self.mode = ReaderMode::Polled;
                Response::Ok
            }
            Request::ClearBuffer => {
                self.buffer.clear();
                Response::Ok
            }
            Request::Status => Response::Status(StatusReport {
                mode: self.mode,
                power_dbm: self.power_dbm,
                buffered: self.buffer.len(),
            }),
            Request::Identify => Response::Identity(self.reader_id),
            Request::SetPower(dbm) => {
                if (10.0..=33.0).contains(dbm) {
                    self.power_dbm = *dbm;
                    Response::Ok
                } else {
                    Response::Error(format!("power {dbm} dBm outside 10-33 dBm"))
                }
            }
        }
    }

    /// Handles a raw XML request, returning raw XML — the full wire
    /// path. A malformed request is answered in-band with an `<error>`
    /// response (and tallied in [`crate::counters`]); it never kills
    /// the connection serving it.
    #[must_use]
    pub fn handle_xml(&mut self, request_xml: &str) -> String {
        match Request::from_xml(request_xml) {
            Ok(request) => self.handle(&request).to_xml(),
            Err(err) => {
                crate::counters::record_malformed_frame();
                Response::Error(err.to_string()).to_xml()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(epc: &str, time_s: f64) -> TagRecord {
        TagRecord {
            epc: epc.to_owned(),
            antenna: 1,
            time_s,
        }
    }

    #[test]
    fn polled_mode_drops_unsolicited_reads() {
        let mut reader = ReaderEmulator::new();
        reader.feed(record("AA", 1.0));
        assert_eq!(reader.handle(&Request::GetTags), Response::Tags(Vec::new()));
    }

    #[test]
    fn buffered_mode_accumulates_and_drains() {
        let mut reader = ReaderEmulator::new();
        assert_eq!(reader.handle(&Request::StartBuffered), Response::Ok);
        reader.feed(record("AA", 1.0));
        reader.feed(record("BB", 2.0));
        match reader.handle(&Request::GetTags) {
            Response::Tags(tags) => assert_eq!(tags.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        // Drained.
        assert_eq!(reader.handle(&Request::GetTags), Response::Tags(Vec::new()));
    }

    #[test]
    fn clear_buffer_discards() {
        let mut reader = ReaderEmulator::new();
        reader.handle(&Request::StartBuffered);
        reader.feed(record("AA", 1.0));
        reader.handle(&Request::ClearBuffer);
        assert_eq!(reader.handle(&Request::GetTags), Response::Tags(Vec::new()));
    }

    #[test]
    fn status_reflects_state() {
        let mut reader = ReaderEmulator::new();
        reader.handle(&Request::StartBuffered);
        reader.feed(record("AA", 1.0));
        match reader.handle(&Request::Status) {
            Response::Status(status) => {
                assert_eq!(status.mode, ReaderMode::Buffered);
                assert_eq!(status.buffered, 1);
                assert_eq!(status.power_dbm, 30.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn power_is_validated() {
        let mut reader = ReaderEmulator::new();
        assert_eq!(reader.handle(&Request::SetPower(27.0)), Response::Ok);
        assert_eq!(reader.power_dbm(), 27.0);
        assert!(matches!(
            reader.handle(&Request::SetPower(99.0)),
            Response::Error(_)
        ));
        assert_eq!(reader.power_dbm(), 27.0);
    }

    #[test]
    fn identify_serves_the_configured_portal_index() {
        let mut reader = ReaderEmulator::new();
        assert_eq!(reader.handle(&Request::Identify), Response::Identity(0));
        let mut portal = ReaderEmulator::with_reader_id(3);
        assert_eq!(portal.reader_id(), 3);
        assert_eq!(portal.handle(&Request::Identify), Response::Identity(3));
        portal.set_reader_id(5);
        assert_eq!(portal.handle(&Request::Identify), Response::Identity(5));
    }

    #[test]
    fn xml_path_serves_errors_for_garbage() {
        let mut reader = ReaderEmulator::new();
        let response = reader.handle_xml("not xml at all");
        assert!(response.contains("<error>"));
    }

    #[test]
    fn poll_window_serves_once() {
        let mut reader = ReaderEmulator::new();
        reader.poll_window(vec![record("AA", 0.1)]);
        match reader.handle(&Request::GetTags) {
            Response::Tags(tags) => assert_eq!(tags.len(), 1),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(reader.handle(&Request::GetTags), Response::Tags(Vec::new()));
    }
}
