//! The transport error taxonomy.
//!
//! The paper's harness ran against a flaky network link to the AR400;
//! every way that link failed in the field gets its own variant here so
//! retry layers and applications can react per failure class instead of
//! guessing from an empty string. `std::io::Error` is deliberately
//! flattened into `(kind, message)` so errors stay `Clone + PartialEq`
//! and can be asserted on, counted, and replayed in tests.

use std::error::Error;
use std::fmt;
use std::io;
use std::time::Duration;

/// One failed exchange on a reader transport.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportError {
    /// The operating system reported an I/O failure that is not one of
    /// the more specific classes below.
    Io {
        /// The `std::io::ErrorKind` of the underlying failure.
        kind: io::ErrorKind,
        /// The underlying error's message.
        message: String,
    },
    /// The peer did not answer within the configured deadline.
    Timeout {
        /// The deadline that expired (None when the OS reported a
        /// timeout on a transport with no explicit deadline).
        deadline: Option<Duration>,
    },
    /// The connection is closed: the peer disconnected before or during
    /// the exchange.
    Disconnected,
    /// The peer closed the connection mid-frame: bytes arrived but the
    /// frame terminator never did.
    Truncated,
    /// The response arrived framed but is not a parseable wire document
    /// (garbled or corrupted in flight).
    MalformedFrame {
        /// Parse-level detail for diagnostics.
        detail: String,
    },
    /// A retrying transport gave up: every attempt failed.
    RetriesExhausted {
        /// How many attempts were made.
        attempts: u32,
        /// The error from the final attempt.
        last: Box<TransportError>,
    },
}

impl TransportError {
    /// Classifies an `std::io::Error` into the taxonomy, tagging
    /// timeouts with the deadline that was armed.
    #[must_use]
    pub fn from_io(err: &io::Error, deadline: Option<Duration>) -> Self {
        match err.kind() {
            io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => {
                TransportError::Timeout { deadline }
            }
            io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected => TransportError::Disconnected,
            io::ErrorKind::UnexpectedEof => TransportError::Truncated,
            kind => TransportError::Io {
                kind,
                message: err.to_string(),
            },
        }
    }

    /// True for failures where a fresh attempt can plausibly succeed.
    /// Every current variant qualifies except [`RetriesExhausted`],
    /// which already *is* the verdict of a retry loop.
    ///
    /// [`RetriesExhausted`]: TransportError::RetriesExhausted
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        !matches!(self, TransportError::RetriesExhausted { .. })
    }
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Io { kind, message } => {
                write!(f, "transport I/O error ({kind:?}): {message}")
            }
            TransportError::Timeout {
                deadline: Some(deadline),
            } => {
                write!(f, "transport timeout after {:.3} s", deadline.as_secs_f64())
            }
            TransportError::Timeout { deadline: None } => write!(f, "transport timeout"),
            TransportError::Disconnected => write!(f, "transport disconnected"),
            TransportError::Truncated => write!(f, "transport frame truncated mid-line"),
            TransportError::MalformedFrame { detail } => {
                write!(f, "malformed response frame: {detail}")
            }
            TransportError::RetriesExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} attempts: {last}")
            }
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::RetriesExhausted { last, .. } => Some(last.as_ref()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_classification_covers_the_field_failures() {
        let timeout = io::Error::new(io::ErrorKind::TimedOut, "slow");
        assert_eq!(
            TransportError::from_io(&timeout, Some(Duration::from_millis(250))),
            TransportError::Timeout {
                deadline: Some(Duration::from_millis(250))
            }
        );
        let would_block = io::Error::new(io::ErrorKind::WouldBlock, "later");
        assert!(matches!(
            TransportError::from_io(&would_block, None),
            TransportError::Timeout { deadline: None }
        ));
        for kind in [
            io::ErrorKind::ConnectionReset,
            io::ErrorKind::ConnectionAborted,
            io::ErrorKind::BrokenPipe,
            io::ErrorKind::NotConnected,
        ] {
            assert_eq!(
                TransportError::from_io(&io::Error::new(kind, "gone"), None),
                TransportError::Disconnected,
                "{kind:?}"
            );
        }
        assert_eq!(
            TransportError::from_io(&io::Error::new(io::ErrorKind::UnexpectedEof, "cut"), None),
            TransportError::Truncated
        );
        assert!(matches!(
            TransportError::from_io(&io::Error::new(io::ErrorKind::AddrInUse, "busy"), None),
            TransportError::Io {
                kind: io::ErrorKind::AddrInUse,
                ..
            }
        ));
    }

    #[test]
    fn display_is_informative() {
        let err = TransportError::Timeout {
            deadline: Some(Duration::from_millis(500)),
        };
        assert!(err.to_string().contains("0.500 s"));
        let exhausted = TransportError::RetriesExhausted {
            attempts: 4,
            last: Box::new(TransportError::Disconnected),
        };
        let text = exhausted.to_string();
        assert!(text.contains("4 attempts"));
        assert!(text.contains("disconnected"));
    }

    #[test]
    fn retries_exhausted_exposes_its_source() {
        let exhausted = TransportError::RetriesExhausted {
            attempts: 2,
            last: Box::new(TransportError::Truncated),
        };
        let source = exhausted.source().expect("has a source");
        assert_eq!(source.to_string(), TransportError::Truncated.to_string());
        assert!(TransportError::Disconnected.source().is_none());
    }

    #[test]
    fn retryability_excludes_only_the_verdict() {
        assert!(TransportError::Disconnected.is_retryable());
        assert!(TransportError::Truncated.is_retryable());
        assert!(TransportError::Timeout { deadline: None }.is_retryable());
        assert!(!TransportError::RetriesExhausted {
            attempts: 1,
            last: Box::new(TransportError::Disconnected),
        }
        .is_retryable());
    }
}
