//! A TCP carrier for the reader wire format.
//!
//! The paper's software spoke to the AR400 over its network interface;
//! this module provides the equivalent: newline-delimited XML documents
//! over a TCP stream (our compact XML writer never emits newlines, so
//! line framing is unambiguous).

use crate::client::Transport;
use crate::server::ReaderEmulator;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// A [`Transport`] over a TCP connection to a reader endpoint.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl TcpTransport {
    /// Connects to a reader at `addr`.
    ///
    /// # Errors
    ///
    /// Returns any connection error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

impl Transport for TcpTransport {
    fn exchange(&mut self, request_xml: &str) -> String {
        // I/O failures surface as an empty response document, which the
        // client reports as a wire error; a request/response carrier has
        // no richer in-band signal.
        let mut line = String::new();
        let sent = self
            .writer
            .write_all(request_xml.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        if sent.is_ok() {
            let _ = self.reader.read_line(&mut line);
        }
        line.trim_end().to_owned()
    }
}

/// Serves one client connection: reads newline-framed XML requests and
/// writes XML responses until the peer disconnects.
///
/// # Errors
///
/// Returns I/O errors other than a clean disconnect.
pub fn serve_connection(stream: TcpStream, emulator: &mut ReaderEmulator) -> io::Result<()> {
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let request = line?;
        if request.trim().is_empty() {
            continue;
        }
        let response = emulator.handle_xml(&request);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Accepts exactly one connection on `listener` and serves it to
/// completion — enough for tests and single-client deployments; loop it
/// for more.
///
/// # Errors
///
/// Returns accept/serve I/O errors.
pub fn serve_once(listener: &TcpListener, emulator: &mut ReaderEmulator) -> io::Result<()> {
    let (stream, _peer) = listener.accept()?;
    serve_connection(stream, emulator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::ReaderClient;
    use crate::protocol::{ReaderMode, TagRecord};

    fn spawn_reader() -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<ReaderEmulator>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let mut emulator = ReaderEmulator::new();
            emulator.feed(TagRecord {
                epc: "AA00000000000000000000BB".into(),
                antenna: 1,
                time_s: 0.25,
            }); // dropped: still polled mode
            serve_once(&listener, &mut emulator).expect("serve");
            emulator
        });
        (addr, handle)
    }

    #[test]
    fn full_session_over_tcp() {
        let (addr, server) = spawn_reader();
        let transport = TcpTransport::connect(addr).expect("connect");
        let mut client = ReaderClient::new(transport);

        client.start_buffered().expect("start buffered");
        let status = client.status().expect("status");
        assert_eq!(status.mode, ReaderMode::Buffered);
        assert_eq!(status.buffered, 0, "pre-buffering feed was dropped");
        client.set_power(27.0).expect("set power");
        assert_eq!(client.status().expect("status").power_dbm, 27.0);
        assert!(client.get_tags().expect("tags").is_empty());
        drop(client);

        let emulator = server.join().expect("server thread");
        assert_eq!(emulator.power_dbm(), 27.0, "state persisted server-side");
    }

    #[test]
    fn reader_errors_cross_the_wire() {
        let (addr, server) = spawn_reader();
        let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect"));
        let err = client.set_power(99.0).expect_err("99 dBm is rejected");
        assert!(err.to_string().contains("99"));
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn disconnect_yields_wire_errors_not_panics() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Server accepts and immediately closes.
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            drop(stream);
        });
        let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect"));
        server.join().expect("server thread");
        assert!(client.get_tags().is_err());
    }
}
