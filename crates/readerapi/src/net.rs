//! A TCP carrier for the reader wire format.
//!
//! The paper's software spoke to the AR400 over its network interface;
//! this module provides the equivalent: newline-delimited XML documents
//! over a TCP stream (our compact XML writer never emits newlines — it
//! escapes control characters — so line framing is unambiguous).
//!
//! The transport is built for the link failures the paper's harness
//! actually saw: every exchange is guarded by a read/write deadline, a
//! stalled peer surfaces as [`TransportError::Timeout`] instead of a
//! hang, a closed peer as [`TransportError::Disconnected`], and a frame
//! cut mid-line as [`TransportError::Truncated`]. A failed transport
//! [`Transport::reset`]s by reconnecting to the same peer, which is what
//! lets [`crate::RetryingTransport`] ride out connection loss.

use crate::client::Transport;
use crate::counters;
use crate::error::TransportError;
use crate::server::ReaderEmulator;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

/// The deadline [`TcpTransport::connect`] arms when none is given: long
/// enough for any real reader, short enough that a wedged peer cannot
/// hang an application.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(5);

/// A [`Transport`] over a TCP connection to a reader endpoint.
#[derive(Debug)]
pub struct TcpTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
    deadline: Option<Duration>,
}

impl TcpTransport {
    /// Connects to a reader at `addr` with the [`DEFAULT_DEADLINE`].
    ///
    /// # Errors
    ///
    /// Returns any connection error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        Self::connect_with_deadline(addr, Some(DEFAULT_DEADLINE))
    }

    /// Connects to a reader at `addr`, arming `deadline` on every read
    /// and write (`None` waits forever — only for debugging).
    ///
    /// # Errors
    ///
    /// Returns any connection error.
    pub fn connect_with_deadline<A: ToSocketAddrs>(
        addr: A,
        deadline: Option<Duration>,
    ) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream, deadline)
    }

    /// Wraps an already-accepted connection as a transport, arming
    /// `deadline` on every read and write.
    ///
    /// This is the server-side mirror of [`TcpTransport::connect`]: a
    /// daemon that lets readers dial *in* (reverse sessions) accepts the
    /// stream and then speaks the protocol as the client over it. Note
    /// that [`Transport::reset`] on such a transport reconnects *out*
    /// to the recorded peer address, which an inbound-only reader will
    /// refuse — wrap with retry only when the peer also listens.
    ///
    /// # Errors
    ///
    /// Returns any socket-option error.
    pub fn from_accepted(stream: TcpStream, deadline: Option<Duration>) -> io::Result<Self> {
        Self::from_stream(stream, deadline)
    }

    fn from_stream(stream: TcpStream, deadline: Option<Duration>) -> io::Result<Self> {
        stream.set_nodelay(true)?;
        stream.set_read_timeout(deadline)?;
        stream.set_write_timeout(deadline)?;
        let peer = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            peer,
            deadline,
        })
    }

    /// The deadline armed on reads and writes.
    #[must_use]
    pub fn deadline(&self) -> Option<Duration> {
        self.deadline
    }

    /// The peer this transport is (re)connecting to.
    #[must_use]
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Re-arms the read/write deadline on the live connection.
    ///
    /// # Errors
    ///
    /// Returns any socket-option error.
    pub fn set_deadline(&mut self, deadline: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(deadline)?;
        self.writer.set_write_timeout(deadline)?;
        self.deadline = deadline;
        Ok(())
    }

    fn classify(&self, err: &io::Error) -> TransportError {
        let classified = TransportError::from_io(err, self.deadline);
        match classified {
            TransportError::Timeout { .. } => counters::record_timeout(),
            TransportError::Disconnected => counters::record_disconnect(),
            TransportError::Truncated => counters::record_truncation(),
            _ => {}
        }
        classified
    }
}

impl Transport for TcpTransport {
    fn exchange(&mut self, request_xml: &str) -> Result<String, TransportError> {
        counters::record_request();
        self.writer
            .write_all(request_xml.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|err| self.classify(&err))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => {
                counters::record_disconnect();
                Err(TransportError::Disconnected)
            }
            Ok(_) if !line.ends_with('\n') => {
                // EOF arrived mid-frame: the peer died while writing.
                counters::record_malformed_frame();
                counters::record_truncation();
                Err(TransportError::Truncated)
            }
            Ok(_) => Ok(line.trim_end().to_owned()),
            Err(err) => Err(self.classify(&err)),
        }
    }

    /// Reconnects to the same peer with the same deadline, discarding
    /// the (possibly desynchronized) old connection.
    fn reset(&mut self) -> Result<(), TransportError> {
        let stream = match self.deadline {
            Some(deadline) => TcpStream::connect_timeout(&self.peer, deadline),
            None => TcpStream::connect(self.peer),
        }
        .map_err(|err| self.classify(&err))?;
        *self = Self::from_stream(stream, self.deadline).map_err(|err| self.classify(&err))?;
        Ok(())
    }
}

/// Tallies a peer that vanished abortively mid-session, then hands the
/// error back for the serve loop's per-connection accounting.
fn classify_serve_error(err: io::Error) -> io::Error {
    match err.kind() {
        io::ErrorKind::ConnectionReset
        | io::ErrorKind::ConnectionAborted
        | io::ErrorKind::BrokenPipe
        | io::ErrorKind::NotConnected => counters::record_disconnect(),
        io::ErrorKind::UnexpectedEof => counters::record_truncation(),
        _ => {}
    }
    err
}

/// The request/response loop shared by every serve entry point.
///
/// Frames are read with an explicit `read_line` loop rather than
/// `BufRead::lines()`: `lines()` yields a final *unterminated* partial
/// line as `Ok`, which silently promoted a client that died mid-frame
/// into a complete request. Here a frame without its closing newline is
/// a typed truncation — counted in [`crate::counters`] and surfaced as
/// an `UnexpectedEof` connection error — while EOF at a frame boundary
/// stays a clean disconnect.
fn serve_stream(stream: TcpStream, mut handle: impl FnMut(&str) -> String) -> io::Result<()> {
    // Request/response frames are tiny; without nodelay, Nagle plus
    // delayed ACKs adds ~40 ms to every exchange.
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(()), // clean disconnect at a frame boundary
            Ok(_) if !line.ends_with('\n') => {
                counters::record_truncation();
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "client disconnected mid-frame",
                ));
            }
            Ok(_) => {
                let request = line.trim();
                if request.is_empty() {
                    continue;
                }
                let response = handle(request);
                writer
                    .write_all(response.as_bytes())
                    .and_then(|()| writer.write_all(b"\n"))
                    .and_then(|()| writer.flush())
                    .map_err(classify_serve_error)?;
            }
            Err(err) => return Err(classify_serve_error(err)),
        }
    }
}

/// Serves one client connection: reads newline-framed XML requests and
/// writes XML responses until the peer disconnects.
///
/// # Errors
///
/// Returns I/O errors other than a clean disconnect; a client dying
/// mid-frame is an `UnexpectedEof` error (and a counted truncation),
/// not a silent success.
pub fn serve_connection(stream: TcpStream, emulator: &mut ReaderEmulator) -> io::Result<()> {
    serve_stream(stream, |request| emulator.handle_xml(request))
}

/// Serves one client connection against an emulator shared with other
/// threads, locking only for the duration of each request — the
/// per-connection body of [`serve`], exposed so daemons can run the
/// same loop over connections they accepted themselves (e.g. a portal
/// process dialing out to a site server).
///
/// # Errors
///
/// Returns I/O errors other than a clean disconnect, including typed
/// mid-frame truncations.
pub fn serve_shared(stream: TcpStream, emulator: &Mutex<ReaderEmulator>) -> io::Result<()> {
    serve_stream(stream, |request| {
        emulator
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .handle_xml(request)
    })
}

/// Accepts exactly one connection on `listener` and serves it to
/// completion — enough for tests and single-client deployments; use
/// [`serve`] for concurrent clients.
///
/// # Errors
///
/// Returns accept/serve I/O errors.
pub fn serve_once(listener: &TcpListener, emulator: &mut ReaderEmulator) -> io::Result<()> {
    let (stream, _peer) = listener.accept()?;
    counters::record_connection();
    serve_connection(stream, emulator)
}

/// Configuration for the multi-connection [`serve`] loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeOptions {
    /// Stop accepting after this many connections (`None` serves
    /// forever). The call returns once every accepted connection has
    /// been served to completion.
    pub max_connections: Option<usize>,
    /// Per-connection read deadline: a client that stalls longer than
    /// this has its connection closed (and counted as errored) instead
    /// of pinning a server thread forever. `None` waits forever.
    pub read_timeout: Option<Duration>,
}

/// What a [`serve`] loop did before returning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSummary {
    /// Connections accepted.
    pub connections: u64,
    /// Connections that ended in an I/O error (timeout, reset,
    /// poisoned state) rather than a clean disconnect.
    pub connection_errors: u64,
}

/// Serves concurrent client connections against one shared emulator,
/// one thread per connection, until `options.max_connections` have been
/// accepted and completed.
///
/// Failures are isolated per connection: a client that stalls, resets,
/// or sends garbage gets its connection dropped (tallied in the
/// [`ServeSummary`] and the wire counters) while every other connection
/// keeps being served. Malformed XML on a healthy connection is *not* a
/// connection error — the emulator answers it in-band with an
/// `<error>` response, exactly as the AR400 did.
///
/// # Errors
///
/// Returns only listener-level `accept` failures; per-connection errors
/// never escape.
pub fn serve(
    listener: &TcpListener,
    emulator: &Mutex<ReaderEmulator>,
    options: ServeOptions,
) -> io::Result<ServeSummary> {
    let connections = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    std::thread::scope(|scope| -> io::Result<()> {
        let mut accepted = 0usize;
        while options.max_connections.is_none_or(|max| accepted < max) {
            let (stream, _peer) = listener.accept()?;
            accepted += 1;
            connections.fetch_add(1, Relaxed);
            counters::record_connection();
            let errors = &errors;
            scope.spawn(move || {
                let outcome = stream
                    .set_read_timeout(options.read_timeout)
                    .and_then(|()| serve_shared(stream, emulator));
                if outcome.is_err() {
                    errors.fetch_add(1, Relaxed);
                    counters::record_connection_error();
                }
            });
        }
        Ok(())
    })?;
    Ok(ServeSummary {
        connections: connections.load(Relaxed),
        connection_errors: errors.load(Relaxed),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientError, ReaderClient};
    use crate::protocol::{ReaderMode, TagRecord};

    fn spawn_reader() -> (
        std::net::SocketAddr,
        std::thread::JoinHandle<ReaderEmulator>,
    ) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = listener.local_addr().expect("local addr");
        let handle = std::thread::spawn(move || {
            let mut emulator = ReaderEmulator::new();
            emulator.feed(TagRecord {
                epc: "AA00000000000000000000BB".into(),
                antenna: 1,
                time_s: 0.25,
            }); // dropped: still polled mode
            serve_once(&listener, &mut emulator).expect("serve");
            emulator
        });
        (addr, handle)
    }

    #[test]
    fn full_session_over_tcp() {
        let (addr, server) = spawn_reader();
        let transport = TcpTransport::connect(addr).expect("connect");
        assert_eq!(transport.deadline(), Some(DEFAULT_DEADLINE));
        let mut client = ReaderClient::new(transport);

        client.start_buffered().expect("start buffered");
        let status = client.status().expect("status");
        assert_eq!(status.mode, ReaderMode::Buffered);
        assert_eq!(status.buffered, 0, "pre-buffering feed was dropped");
        client.set_power(27.0).expect("set power");
        assert_eq!(client.status().expect("status").power_dbm, 27.0);
        assert!(client.get_tags().expect("tags").is_empty());
        drop(client);

        let emulator = server.join().expect("server thread");
        assert_eq!(emulator.power_dbm(), 27.0, "state persisted server-side");
    }

    #[test]
    fn reader_errors_cross_the_wire() {
        let (addr, server) = spawn_reader();
        let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect"));
        let err = client.set_power(99.0).expect_err("99 dBm is rejected");
        assert!(err.to_string().contains("99"));
        drop(client);
        server.join().expect("server thread");
    }

    #[test]
    fn disconnect_yields_typed_errors_not_panics() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Server accepts and immediately closes.
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            drop(stream);
        });
        let mut client = ReaderClient::new(TcpTransport::connect(addr).expect("connect"));
        server.join().expect("server thread");
        match client.get_tags() {
            Err(ClientError::Transport(err)) => assert!(
                matches!(
                    err,
                    TransportError::Disconnected | TransportError::Io { .. }
                ),
                "unexpected class {err:?}"
            ),
            other => panic!("expected a transport error, got {other:?}"),
        }
    }

    #[test]
    fn reset_reconnects_to_the_same_peer() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            // First connection: accept and drop. Second: serve a session.
            let (first, _) = listener.accept().expect("accept");
            drop(first);
            let mut emulator = ReaderEmulator::new();
            serve_once(&listener, &mut emulator).expect("serve second connection");
        });
        let mut transport = TcpTransport::connect(addr).expect("connect");
        let peer = transport.peer();
        // The first connection is dead; an exchange fails...
        assert!(transport.exchange("<request><status/></request>").is_err());
        // ...reset reconnects, and the next exchange succeeds.
        transport.reset().expect("reconnect");
        assert_eq!(transport.peer(), peer);
        let reply = transport
            .exchange("<request><status/></request>")
            .expect("exchange after reset");
        assert!(reply.contains("<status>"));
        drop(transport);
        server.join().expect("server thread");
    }
}
