//! Global wire-path counters: requests, retries, timeouts, faults.
//!
//! The transport stack tallies a small set of process-wide counters as
//! it runs, in the same style as `rfid_sim::counters`: cumulative
//! relaxed atomics with a [`snapshot`]/[`reset`]/`since` discipline so
//! soak tests and deployments can see how hard the wire worked —
//! how many exchanges the application asked for, how many attempts the
//! retry layer spent getting them through, and what failure classes it
//! rode out.
//!
//! Unlike the simulator's per-evaluation counters, wire events fire at
//! most a handful of times per reader exchange — nowhere near the
//! channel hot path — so these update the shared atomics directly with
//! no thread-local staging.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

static REQUESTS: AtomicU64 = AtomicU64::new(0);
static RETRIES: AtomicU64 = AtomicU64::new(0);
static TIMEOUTS: AtomicU64 = AtomicU64::new(0);
static MALFORMED_FRAMES: AtomicU64 = AtomicU64::new(0);
static TRUNCATIONS: AtomicU64 = AtomicU64::new(0);
static DISCONNECTS: AtomicU64 = AtomicU64::new(0);
static FAULTS_INJECTED: AtomicU64 = AtomicU64::new(0);
static CONNECTIONS: AtomicU64 = AtomicU64::new(0);
static CONNECTION_ERRORS: AtomicU64 = AtomicU64::new(0);

pub(crate) fn record_request() {
    REQUESTS.fetch_add(1, Relaxed);
}

pub(crate) fn record_retry() {
    RETRIES.fetch_add(1, Relaxed);
}

pub(crate) fn record_timeout() {
    TIMEOUTS.fetch_add(1, Relaxed);
}

pub(crate) fn record_malformed_frame() {
    MALFORMED_FRAMES.fetch_add(1, Relaxed);
}

pub(crate) fn record_truncation() {
    TRUNCATIONS.fetch_add(1, Relaxed);
}

pub(crate) fn record_disconnect() {
    DISCONNECTS.fetch_add(1, Relaxed);
}

pub(crate) fn record_fault_injected() {
    FAULTS_INJECTED.fetch_add(1, Relaxed);
}

pub(crate) fn record_connection() {
    CONNECTIONS.fetch_add(1, Relaxed);
}

pub(crate) fn record_connection_error() {
    CONNECTION_ERRORS.fetch_add(1, Relaxed);
}

/// A point-in-time copy of the wire counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireCounters {
    /// Transport exchanges attempted (every attempt counts, including
    /// retries of the same logical request).
    pub requests: u64,
    /// Attempts beyond the first spent by a retrying transport.
    pub retries: u64,
    /// Exchanges that ended in a deadline or OS-level timeout.
    pub timeouts: u64,
    /// Frames that arrived but failed wire-format validation
    /// (client-side garbled responses and server-side garbled requests).
    pub malformed_frames: u64,
    /// Frames cut mid-line by a peer dying while writing, on either
    /// side of the wire (also tallied under `malformed_frames` for the
    /// client path, which predates this counter).
    pub truncations: u64,
    /// Peers that vanished abortively (reset, broken pipe) or closed
    /// while a response was owed.
    pub disconnects: u64,
    /// Faults a chaos transport injected on purpose.
    pub faults_injected: u64,
    /// Connections accepted by a serve loop.
    pub connections: u64,
    /// Connections that ended in an I/O error rather than a clean
    /// disconnect (isolated per connection; the loop keeps serving).
    pub connection_errors: u64,
}

impl WireCounters {
    /// Counter deltas accumulated since an earlier snapshot.
    ///
    /// Saturates at zero if `earlier` was taken after `self` (or after
    /// a [`reset`]).
    #[must_use]
    pub const fn since(&self, earlier: &WireCounters) -> WireCounters {
        WireCounters {
            requests: self.requests.saturating_sub(earlier.requests),
            retries: self.retries.saturating_sub(earlier.retries),
            timeouts: self.timeouts.saturating_sub(earlier.timeouts),
            malformed_frames: self
                .malformed_frames
                .saturating_sub(earlier.malformed_frames),
            truncations: self.truncations.saturating_sub(earlier.truncations),
            disconnects: self.disconnects.saturating_sub(earlier.disconnects),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            connections: self.connections.saturating_sub(earlier.connections),
            connection_errors: self
                .connection_errors
                .saturating_sub(earlier.connection_errors),
        }
    }
}

impl std::fmt::Display for WireCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} requests ({} retries), {} timeouts, {} malformed frames, \
             {} truncations, {} disconnects, {} faults injected, \
             {} connections ({} errored)",
            self.requests,
            self.retries,
            self.timeouts,
            self.malformed_frames,
            self.truncations,
            self.disconnects,
            self.faults_injected,
            self.connections,
            self.connection_errors,
        )
    }
}

/// Reads the current counter values.
#[must_use]
pub fn snapshot() -> WireCounters {
    WireCounters {
        requests: REQUESTS.load(Relaxed),
        retries: RETRIES.load(Relaxed),
        timeouts: TIMEOUTS.load(Relaxed),
        malformed_frames: MALFORMED_FRAMES.load(Relaxed),
        truncations: TRUNCATIONS.load(Relaxed),
        disconnects: DISCONNECTS.load(Relaxed),
        faults_injected: FAULTS_INJECTED.load(Relaxed),
        connections: CONNECTIONS.load(Relaxed),
        connection_errors: CONNECTION_ERRORS.load(Relaxed),
    }
}

/// Zeroes every counter (start of a measurement window).
pub fn reset() {
    REQUESTS.store(0, Relaxed);
    RETRIES.store(0, Relaxed);
    TIMEOUTS.store(0, Relaxed);
    MALFORMED_FRAMES.store(0, Relaxed);
    TRUNCATIONS.store(0, Relaxed);
    DISCONNECTS.store(0, Relaxed);
    FAULTS_INJECTED.store(0, Relaxed);
    CONNECTIONS.store(0, Relaxed);
    CONNECTION_ERRORS.store(0, Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    // Counters are process-global and tests run in parallel threads, so
    // assertions are relative to deltas each test produced itself.

    #[test]
    fn snapshot_reflects_recorded_events() {
        let before = snapshot();
        record_request();
        record_retry();
        record_timeout();
        record_malformed_frame();
        record_truncation();
        record_disconnect();
        record_fault_injected();
        record_connection();
        record_connection_error();
        let delta = snapshot().since(&before);
        assert!(delta.requests >= 1);
        assert!(delta.retries >= 1);
        assert!(delta.timeouts >= 1);
        assert!(delta.malformed_frames >= 1);
        assert!(delta.truncations >= 1);
        assert!(delta.disconnects >= 1);
        assert!(delta.faults_injected >= 1);
        assert!(delta.connections >= 1);
        assert!(delta.connection_errors >= 1);
    }

    #[test]
    fn since_saturates_rather_than_wrapping() {
        let newer = WireCounters {
            requests: 1,
            ..WireCounters::default()
        };
        let older = WireCounters {
            requests: 9,
            ..WireCounters::default()
        };
        assert_eq!(newer.since(&older).requests, 0);
    }

    #[test]
    fn display_mentions_the_key_figures() {
        let snap = WireCounters {
            requests: 120,
            retries: 17,
            timeouts: 9,
            malformed_frames: 5,
            truncations: 3,
            disconnects: 2,
            faults_injected: 31,
            connections: 4,
            connection_errors: 1,
        };
        let text = snap.to_string();
        assert!(text.contains("120 requests"));
        assert!(text.contains("17 retries"));
        assert!(text.contains("9 timeouts"));
        assert!(text.contains("5 malformed frames"));
        assert!(text.contains("3 truncations"));
        assert!(text.contains("2 disconnects"));
        assert!(text.contains("31 faults injected"));
        assert!(text.contains("4 connections (1 errored)"));
    }
}
