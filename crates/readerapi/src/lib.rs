//! An emulated RFID reader control interface.
//!
//! The paper's methodology section: "We developed software in Java to
//! interface with the reader. Our software sends commands to the reader
//! over its HTTP interface and the reader responds with a list of tags in
//! XML format. For all but the read range experiment, the readers were
//! operated in a buffered (continuous) read mode."
//!
//! This crate reproduces that integration surface so applications built on
//! the reproduction consume reads exactly the way the paper's harness did:
//!
//! * [`Request`]/[`Response`] — the command set (get-tags, buffered-mode
//!   control, status, power) with an XML wire format,
//! * [`ReaderEmulator`] — the "reader": it is fed the RF truth (read
//!   events from the simulator) and serves the command set, buffering
//!   reads in continuous mode,
//! * [`ReaderClient`] — the application side, speaking XML over a
//!   pluggable [`Transport`] (in-memory by default, like a loopback HTTP
//!   connection).
//!
//! The transport layer is built for the flaky links the paper's harness
//! ran on: exchanges return typed [`TransportError`]s, [`TcpTransport`]
//! arms read/write deadlines so a stalled reader cannot hang a client,
//! [`RetryingTransport`] adds bounded exponential backoff with
//! seed-deterministic jitter, and [`FaultTransport`] injects
//! seed-deterministic chaos (drops, disconnects, garbles, truncations,
//! delays) for soak testing. Wire-level health is tallied in
//! [`counters`], mirroring `rfid_sim::counters`.
//!
//! # Examples
//!
//! ```
//! use rfid_readerapi::{InMemoryTransport, ReaderClient, ReaderEmulator, TagRecord};
//!
//! let mut emulator = ReaderEmulator::new();
//! emulator.feed(TagRecord { epc: "AA00000000000000000000BB".into(), antenna: 1, time_s: 0.5 });
//!
//! let mut client = ReaderClient::new(InMemoryTransport::new(emulator));
//! client.start_buffered().unwrap();
//! // Reads arriving while buffering accumulate...
//! client.transport_mut().emulator_mut().feed(TagRecord {
//!     epc: "AA00000000000000000000CC".into(), antenna: 2, time_s: 1.0,
//! });
//! let tags = client.get_tags().unwrap();
//! assert_eq!(tags.len(), 1, "only the read fed while buffering is served");
//! assert_eq!(tags[0].antenna, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
pub mod counters;
mod error;
mod fault;
mod net;
mod protocol;
mod retry;
mod server;
mod stream;
mod wire;

pub use client::{ClientError, InMemoryTransport, ReaderClient, Transport};
pub use error::TransportError;
pub use fault::{FaultPlan, FaultStats, FaultTransport};
pub use net::{
    serve, serve_connection, serve_once, serve_shared, ServeOptions, ServeSummary, TcpTransport,
    DEFAULT_DEADLINE,
};
pub use protocol::{ReaderMode, Request, Response, StatusReport, TagRecord};
pub use retry::{BackoffPolicy, RetryingTransport};
pub use server::ReaderEmulator;
pub use stream::{AdapterError, WireEventAdapter};
pub use wire::{valid_name, WireError, XmlNode};
