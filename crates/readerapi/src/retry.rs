//! Bounded retry with deterministic exponential backoff.
//!
//! Jacobsen et al. ("Reliable Identification of RFID Tags Using
//! Multiple Independent Reader Sessions") treat *repeated independent
//! sessions* as the recovery primitive for an unreliable read channel;
//! [`RetryingTransport`] is that idea formalized at the wire layer: a
//! failed exchange is simply retried as a fresh, independent attempt,
//! up to a bounded budget, with exponential backoff between attempts.
//!
//! Backoff delays are *deterministic*: jitter comes from the same
//! hash-addressed [`RngStream`] discipline as `sim::rng`, keyed by
//! `(logical call, attempt)`, so a given seed always produces the same
//! retry schedule — soak tests replay bit-identically and a field
//! incident can be reproduced from its seed.

use crate::client::Transport;
use crate::counters;
use crate::error::TransportError;
use crate::wire::XmlNode;
use rfid_sim::RngStream;
use std::time::Duration;

/// A bounded exponential-backoff policy.
///
/// Attempt `n` (1-based; the first retry) waits
/// `min(cap, base * 2^(n-1))` scaled by a jitter factor in `[0.5, 1.0)`
/// drawn deterministically from the transport's [`RngStream`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts allowed per logical exchange (first try included).
    /// Clamped to at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
}

impl Default for BackoffPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(250),
        }
    }
}

impl BackoffPolicy {
    /// A policy that never waits between attempts — for tests and
    /// in-memory transports where backoff buys nothing.
    #[must_use]
    pub const fn immediate(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// The deterministic delay before retry `attempt` (1-based) of
    /// logical exchange `call`.
    ///
    /// Implements the documented `min(cap, base * 2^(attempt-1))`
    /// exactly for every attempt number: the exponent is grown by
    /// saturating doubling (never a shift), stopping as soon as it
    /// reaches `cap`, so `attempt > 20` cannot overflow and a `cap`
    /// below `base` clamps the very first retry. `attempt = 0` is
    /// treated as the first retry (`2^0`), so callers counting from
    /// either convention get a well-defined, bounded delay.
    #[must_use]
    pub fn delay(&self, rng: &RngStream, call: u64, attempt: u32) -> Duration {
        if self.base.is_zero() {
            return Duration::ZERO;
        }
        let mut exp = self.base;
        let mut doublings = attempt.saturating_sub(1);
        while doublings > 0 && exp < self.cap {
            exp = exp.saturating_mul(2);
            doublings -= 1;
        }
        let exp = exp.min(self.cap);
        let jitter = 0.5 + 0.5 * rng.uniform(&[call, u64::from(attempt)]);
        exp.mul_f64(jitter)
    }
}

/// Wraps any [`Transport`] with bounded, seed-deterministic retry.
///
/// Each logical exchange is attempted up to `policy.max_attempts`
/// times. Between attempts the wrapper sleeps the policy's backoff and
/// asks the inner transport to [`Transport::reset`] (a `TcpTransport`
/// reconnects; in-memory transports are a no-op). A response that
/// arrives but does not parse as a wire document counts as a
/// [`TransportError::MalformedFrame`] and is retried too — a garbled
/// frame is a transport failure, not an application response.
#[derive(Debug, Clone)]
pub struct RetryingTransport<T> {
    inner: T,
    policy: BackoffPolicy,
    rng: RngStream,
    calls: u64,
}

impl<T: Transport> RetryingTransport<T> {
    /// Wraps `inner` with `policy`, drawing jitter from `rng`.
    #[must_use]
    pub fn new(inner: T, policy: BackoffPolicy, rng: RngStream) -> Self {
        Self {
            inner,
            policy,
            rng,
            calls: 0,
        }
    }

    /// Shared access to the wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Exclusive access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// The retry policy in force.
    #[must_use]
    pub fn policy(&self) -> BackoffPolicy {
        self.policy
    }

    /// Logical exchanges attempted so far (retries not counted).
    #[must_use]
    pub fn calls(&self) -> u64 {
        self.calls
    }
}

impl<T: Transport> Transport for RetryingTransport<T> {
    fn exchange(&mut self, request_xml: &str) -> Result<String, TransportError> {
        let call = self.calls;
        self.calls += 1;
        let attempts = self.policy.max_attempts.max(1);
        let mut last = TransportError::Disconnected;
        for attempt in 0..attempts {
            if attempt > 0 {
                counters::record_retry();
                let delay = self.policy.delay(&self.rng, call, attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                if let Err(err) = self.inner.reset() {
                    last = err;
                    continue;
                }
            }
            match self.inner.exchange(request_xml) {
                Ok(reply) => match XmlNode::parse(&reply) {
                    Ok(_) => return Ok(reply),
                    Err(err) => {
                        counters::record_malformed_frame();
                        last = TransportError::MalformedFrame {
                            detail: err.to_string(),
                        };
                    }
                },
                Err(err) => last = err,
            }
        }
        Err(TransportError::RetriesExhausted {
            attempts,
            last: Box::new(last),
        })
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fails `failures` times (cycling drop kinds), then succeeds.
    struct Flaky {
        failures: u32,
        exchanges: u32,
        resets: u32,
    }

    impl Transport for Flaky {
        fn exchange(&mut self, _request_xml: &str) -> Result<String, TransportError> {
            self.exchanges += 1;
            if self.exchanges <= self.failures {
                return match self.exchanges % 3 {
                    0 => Err(TransportError::Disconnected),
                    1 => Err(TransportError::Timeout { deadline: None }),
                    _ => Ok("<<garbled".to_owned()),
                };
            }
            Ok("<response><ok/></response>".to_owned())
        }

        fn reset(&mut self) -> Result<(), TransportError> {
            self.resets += 1;
            Ok(())
        }
    }

    fn retrying(failures: u32, max_attempts: u32) -> RetryingTransport<Flaky> {
        RetryingTransport::new(
            Flaky {
                failures,
                exchanges: 0,
                resets: 0,
            },
            BackoffPolicy::immediate(max_attempts),
            RngStream::new(7),
        )
    }

    #[test]
    fn rides_out_transient_failures() {
        let mut transport = retrying(3, 5);
        let reply = transport.exchange("<request><status/></request>");
        assert_eq!(reply.unwrap(), "<response><ok/></response>");
        assert_eq!(transport.inner().exchanges, 4, "3 failures + 1 success");
        assert_eq!(transport.inner().resets, 3, "reset before every retry");
    }

    #[test]
    fn exhausts_and_reports_the_last_error() {
        let mut transport = retrying(100, 4);
        let err = transport.exchange("<request><status/></request>");
        match err.unwrap_err() {
            TransportError::RetriesExhausted { attempts, last } => {
                assert_eq!(attempts, 4);
                assert!(last.is_retryable());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(transport.inner().exchanges, 4);
    }

    #[test]
    fn garbled_frames_are_retried_as_transport_failures() {
        // failures=2 with the cycle above yields one timeout and one
        // garbled (non-XML) success-shaped reply; both must burn
        // attempts, not surface to the caller.
        let mut transport = retrying(2, 4);
        assert!(transport.exchange("<request><status/></request>").is_ok());
        assert_eq!(transport.inner().exchanges, 3);
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_bounded() {
        let policy = BackoffPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(80),
        };
        let rng = RngStream::new(99);
        let schedule: Vec<Duration> = (1..6).map(|a| policy.delay(&rng, 3, a)).collect();
        let replay: Vec<Duration> = (1..6).map(|a| policy.delay(&rng, 3, a)).collect();
        assert_eq!(schedule, replay, "same seed, same schedule");
        for (i, delay) in schedule.iter().enumerate() {
            let exp = Duration::from_millis(10 << i).min(Duration::from_millis(80));
            assert!(*delay >= exp.mul_f64(0.5), "jitter floor at attempt {i}");
            assert!(*delay < exp, "jitter keeps delay under the raw exponent");
        }
        assert_ne!(
            policy.delay(&rng, 3, 1),
            policy.delay(&rng, 4, 1),
            "different calls draw different jitter"
        );
        assert_ne!(
            policy.delay(&RngStream::new(100), 3, 1),
            policy.delay(&rng, 3, 1),
            "different seeds draw different jitter"
        );
    }

    #[test]
    fn cap_below_base_clamps_every_retry() {
        let policy = BackoffPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(4),
        };
        let rng = RngStream::new(11);
        for attempt in [0, 1, 2, 7, 40] {
            let delay = policy.delay(&rng, 0, attempt);
            let cap = policy.cap;
            assert!(
                delay >= cap.mul_f64(0.5) && delay < cap,
                "attempt {attempt}: min(cap, base*2^(n-1)) = cap when cap < base"
            );
        }
    }

    #[test]
    fn huge_attempt_numbers_cannot_overflow_the_exponent() {
        // attempt - 1 > 20 used to clamp the shift at 2^20; the doubling
        // loop honors the documented formula all the way to saturation.
        let policy = BackoffPolicy {
            max_attempts: u32::MAX,
            base: Duration::from_millis(1),
            cap: Duration::MAX,
        };
        let rng = RngStream::new(11);
        for attempt in [21, 64, 1_000, u32::MAX] {
            let delay = policy.delay(&rng, 1, attempt);
            assert!(delay <= policy.cap, "attempt {attempt} stays bounded");
        }
        // Past the old 2^20 clamp the formula keeps doubling: attempt 25
        // must wait jitter * base * 2^24, not jitter * base * 2^20.
        let exp = Duration::from_millis(1 << 24);
        let delay = policy.delay(&rng, 1, 25);
        assert!(
            delay >= exp.mul_f64(0.5) && delay < exp,
            "attempt 25 honors base*2^24 ({delay:?} vs {exp:?})"
        );
    }

    #[test]
    fn attempt_zero_is_well_defined() {
        let policy = BackoffPolicy::default();
        let rng = RngStream::new(11);
        let delay = policy.delay(&rng, 0, 0);
        assert!(
            delay >= policy.base.mul_f64(0.5) && delay < policy.base,
            "attempt 0 behaves as the first retry (2^0 exponent)"
        );
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let policy = BackoffPolicy::immediate(3);
        assert_eq!(policy.delay(&RngStream::new(1), 0, 1), Duration::ZERO);
        assert_eq!(policy.delay(&RngStream::new(1), 5, 9), Duration::ZERO);
    }

    #[test]
    fn zero_max_attempts_still_tries_once() {
        let mut transport = retrying(0, 0);
        assert!(transport.exchange("<request><status/></request>").is_ok());
        assert_eq!(transport.inner().exchanges, 1);
    }
}
