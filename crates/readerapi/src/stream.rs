//! Wire records back into simulator read events.
//!
//! [`WireEventAdapter`] is the bridge from the reader control interface
//! to the tracking data plane: each [`TagRecord`] a client drains off
//! the wire is converted to the [`ReadEvent`] the `rfid-track`
//! streaming operators consume, so a live session feeds tracking with
//! no intermediate batch — record in, event out.

use crate::protocol::TagRecord;
use rfid_gen2::Epc96;
use rfid_sim::{ReadEvent, World};
use std::collections::BTreeMap;
use std::fmt;

/// Why a wire record could not be converted to a read event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdapterError {
    /// The EPC field did not parse as 24 hex digits.
    BadEpc {
        /// The offending EPC text.
        epc: String,
        /// The parser's reason.
        reason: String,
    },
    /// The EPC parsed but names no tag this adapter knows.
    UnknownEpc(Epc96),
    /// The antenna field was 0: the wire convention is 1-based.
    BadAntenna,
    /// The timestamp was `NaN` or infinite. Non-finite times parse
    /// cleanly off the wire but poison every downstream ordering
    /// structure (watermarks, reorder heaps), so the adapter is the
    /// last safe place to reject them. Carries the offending value
    /// rendered as text.
    NonFiniteTime(String),
}

impl fmt::Display for AdapterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdapterError::BadEpc { epc, reason } => {
                write!(f, "unparseable EPC {epc:?}: {reason}")
            }
            AdapterError::UnknownEpc(epc) => write!(f, "EPC {epc} is not a known tag"),
            AdapterError::BadAntenna => write!(f, "antenna 0 on the wire (ports are 1-based)"),
            AdapterError::NonFiniteTime(time) => {
                write!(f, "non-finite timestamp {time} on the wire")
            }
        }
    }
}

impl std::error::Error for AdapterError {}

/// Converts drained [`TagRecord`]s into [`ReadEvent`]s.
///
/// A wire record carries the EPC as hex text and a 1-based antenna
/// port, and says nothing about which reader served it (each session
/// IS one reader). The adapter restores the simulator's conventions:
/// EPCs are parsed and resolved to world tag indices through a lookup
/// built at construction, antennas shift back to 0-based, and every
/// event is stamped with the adapter's fixed reader index.
///
/// # Examples
///
/// ```
/// use rfid_gen2::Epc96;
/// use rfid_readerapi::{TagRecord, WireEventAdapter};
///
/// let adapter = WireEventAdapter::new(0, [Epc96::from_u128(0xBB)]);
/// let record = TagRecord {
///     epc: "0000000000000000000000BB".into(),
///     antenna: 1,
///     time_s: 0.5,
/// };
/// let event = adapter.convert(&record).unwrap();
/// assert_eq!(event.tag, 0);
/// assert_eq!(event.antenna, 0);
/// assert_eq!(event.reader, 0);
/// ```
#[derive(Debug, Clone)]
pub struct WireEventAdapter {
    reader: usize,
    tag_of: BTreeMap<Epc96, usize>,
}

impl WireEventAdapter {
    /// Creates an adapter for one reader session. `epcs` lists the known
    /// tags in world order: position in the iterator becomes the
    /// [`ReadEvent::tag`] index. A duplicate EPC keeps its first index,
    /// matching how the tracking registry resolves identity.
    #[must_use]
    pub fn new(reader: usize, epcs: impl IntoIterator<Item = Epc96>) -> Self {
        let mut tag_of = BTreeMap::new();
        for (index, epc) in epcs.into_iter().enumerate() {
            tag_of.entry(epc).or_insert(index);
        }
        Self { reader, tag_of }
    }

    /// Creates an adapter resolving against a simulation world's tag
    /// list, so converted events use the same tag indices the simulator
    /// itself emits.
    #[must_use]
    pub fn for_world(reader: usize, world: &World) -> Self {
        Self::new(reader, world.tags.iter().map(|tag| tag.epc))
    }

    /// The reader index stamped on converted events.
    #[must_use]
    pub fn reader(&self) -> usize {
        self.reader
    }

    /// Converts one wire record to a read event.
    ///
    /// # Errors
    ///
    /// Returns [`AdapterError`] for an unparseable EPC, an EPC naming no
    /// known tag, a 0 antenna port, or a non-finite timestamp.
    pub fn convert(&self, record: &TagRecord) -> Result<ReadEvent, AdapterError> {
        let epc: Epc96 = record.epc.parse().map_err(|err| AdapterError::BadEpc {
            epc: record.epc.clone(),
            reason: format!("{err}"),
        })?;
        let tag = *self.tag_of.get(&epc).ok_or(AdapterError::UnknownEpc(epc))?;
        if record.antenna == 0 {
            return Err(AdapterError::BadAntenna);
        }
        if !record.time_s.is_finite() {
            return Err(AdapterError::NonFiniteTime(format!("{}", record.time_s)));
        }
        Ok(ReadEvent {
            time_s: record.time_s,
            reader: self.reader,
            antenna: usize::from(record.antenna) - 1,
            tag,
            epc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adapter() -> WireEventAdapter {
        WireEventAdapter::new(3, [Epc96::from_u128(0xAA), Epc96::from_u128(0xBB)])
    }

    fn record(epc: &str, antenna: u8, time_s: f64) -> TagRecord {
        TagRecord {
            epc: epc.to_owned(),
            antenna,
            time_s,
        }
    }

    #[test]
    fn restores_simulator_conventions() {
        let event = adapter()
            .convert(&record("0000000000000000000000BB", 2, 1.5))
            .expect("valid record");
        assert_eq!(event.tag, 1);
        assert_eq!(event.antenna, 1, "wire port 2 is simulator antenna 1");
        assert_eq!(event.reader, 3);
        assert_eq!(event.epc, Epc96::from_u128(0xBB));
        assert_eq!(event.time_s, 1.5);
    }

    #[test]
    fn rejects_garbage_epcs() {
        let err = adapter()
            .convert(&record("not-hex", 1, 0.0))
            .expect_err("7 chars of not-hex");
        assert!(matches!(err, AdapterError::BadEpc { .. }));
        assert!(format!("{err}").contains("not-hex"));
    }

    #[test]
    fn rejects_foreign_epcs() {
        let err = adapter()
            .convert(&record("0000000000000000000000CC", 1, 0.0))
            .expect_err("unknown tag");
        assert_eq!(err, AdapterError::UnknownEpc(Epc96::from_u128(0xCC)));
    }

    #[test]
    fn rejects_zero_antennas() {
        let err = adapter()
            .convert(&record("0000000000000000000000AA", 0, 0.0))
            .expect_err("0 is not a wire port");
        assert_eq!(err, AdapterError::BadAntenna);
    }

    #[test]
    fn rejects_non_finite_timestamps() {
        for (text, time_s) in [
            ("NaN", f64::NAN),
            ("inf", f64::INFINITY),
            ("-inf", f64::NEG_INFINITY),
        ] {
            let err = adapter()
                .convert(&record("0000000000000000000000AA", 1, time_s))
                .expect_err("non-finite time must not convert");
            assert_eq!(err, AdapterError::NonFiniteTime(text.to_owned()));
            assert!(format!("{err}").contains(text));
        }
    }

    #[test]
    fn duplicate_epcs_keep_their_first_index() {
        let adapter = WireEventAdapter::new(0, [Epc96::from_u128(1), Epc96::from_u128(1)]);
        let event = adapter
            .convert(&record("000000000000000000000001", 1, 0.0))
            .expect("valid record");
        assert_eq!(event.tag, 0);
    }

    #[test]
    fn round_trips_the_emulator_feed_format() {
        // The emulator serves EPCs as uppercase hex and 1-based antennas;
        // the adapter must invert that mapping exactly.
        let epc = Epc96::from_u128(0xDEADBEEF);
        let adapter = WireEventAdapter::new(0, [epc]);
        let served = TagRecord {
            epc: epc.to_string(),
            antenna: 1,
            time_s: 2.0,
        };
        let event = adapter.convert(&served).expect("round trip");
        assert_eq!(event.epc, epc);
        assert_eq!(event.antenna, 0);
    }
}
