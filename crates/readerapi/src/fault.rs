//! Seed-deterministic fault injection for reader transports.
//!
//! [`FaultTransport`] sits between a client and any inner [`Transport`]
//! and injects the failure classes a flaky reader link produces in the
//! field: dropped exchanges (timeout), peer disconnects, garbled
//! frames, frames truncated mid-line, and delayed responses. Which
//! fault (if any) fires on a given exchange is decided by hashing the
//! exchange ordinal with an [`RngStream`] — the same addressed-RNG
//! discipline as `sim::rng` — so a seed fully determines the fault
//! schedule and a failing soak run replays bit-identically.
//!
//! # Fault model
//!
//! All faults except `delay` fire *before* the inner transport sees the
//! request: the wire ate the exchange, the reader's state machine never
//! observed it. This is the conservative at-most-once model under which
//! a retry is loss-free even for non-idempotent commands (`get-tags`
//! drains the buffer — a retry of an exchange the reader already
//! processed would silently discard reads). A real TCP link can also
//! fail *after* the server processed a request; surviving that for
//! draining commands needs sequence numbers above the transport, which
//! is out of scope here and called out in DESIGN.md.

use crate::client::Transport;
use crate::counters;
use crate::error::TransportError;
use rfid_sim::RngStream;
use std::time::Duration;

/// Per-exchange fault probabilities (each in `[0, 1]`, summing to at
/// most 1; the remainder is the clean-exchange probability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Exchange vanishes: the client observes a timeout.
    pub drop: f64,
    /// Peer closes the connection: the client observes a disconnect.
    pub disconnect: f64,
    /// The response frame is replaced with deterministic junk.
    pub garble: f64,
    /// The response frame is cut mid-line.
    pub truncate: f64,
    /// The exchange goes through, but only after `delay_for`.
    pub delay: f64,
    /// How long a delayed exchange is held back.
    pub delay_for: Duration,
}

impl Default for FaultPlan {
    /// No faults at all — a transparent wrapper.
    fn default() -> Self {
        Self {
            drop: 0.0,
            disconnect: 0.0,
            garble: 0.0,
            truncate: 0.0,
            delay: 0.0,
            delay_for: Duration::ZERO,
        }
    }
}

impl FaultPlan {
    /// A noisy-link preset: every fault class active, ~30% of
    /// exchanges faulted overall. Delays are microsecond-scale so soak
    /// tests stay fast.
    #[must_use]
    pub const fn noisy() -> Self {
        Self {
            drop: 0.08,
            disconnect: 0.06,
            garble: 0.06,
            truncate: 0.05,
            delay: 0.05,
            delay_for: Duration::from_micros(50),
        }
    }

    /// Total probability that an exchange is faulted (delay included).
    #[must_use]
    pub fn fault_probability(&self) -> f64 {
        self.drop + self.disconnect + self.garble + self.truncate + self.delay
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop", self.drop),
            ("disconnect", self.disconnect),
            ("garble", self.garble),
            ("truncate", self.truncate),
            ("delay", self.delay),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "fault probability {name} = {p} outside [0, 1]"
            );
        }
        assert!(
            self.fault_probability() <= 1.0 + 1e-12,
            "fault probabilities sum to {} > 1",
            self.fault_probability()
        );
    }
}

/// Per-instance tallies of injected faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Exchanges dropped (surfaced as timeouts).
    pub drops: u64,
    /// Exchanges ended by an injected disconnect.
    pub disconnects: u64,
    /// Responses replaced with junk.
    pub garbles: u64,
    /// Responses cut mid-line.
    pub truncates: u64,
    /// Exchanges delayed but delivered.
    pub delays: u64,
    /// Exchanges passed through untouched.
    pub clean: u64,
}

impl FaultStats {
    /// Total faults injected (delays included; clean excluded).
    #[must_use]
    pub const fn total_faults(&self) -> u64 {
        self.drops + self.disconnects + self.garbles + self.truncates + self.delays
    }
}

/// A chaos wrapper over any [`Transport`].
#[derive(Debug, Clone)]
pub struct FaultTransport<T> {
    inner: T,
    plan: FaultPlan,
    rng: RngStream,
    exchanges: u64,
    stats: FaultStats,
}

impl<T: Transport> FaultTransport<T> {
    /// Wraps `inner`, injecting faults per `plan` on a schedule fully
    /// determined by `rng`'s seed.
    ///
    /// # Panics
    ///
    /// Panics if any probability in `plan` is outside `[0, 1]` or the
    /// probabilities sum past 1.
    #[must_use]
    pub fn new(inner: T, plan: FaultPlan, rng: RngStream) -> Self {
        plan.validate();
        Self {
            inner,
            plan,
            rng,
            exchanges: 0,
            stats: FaultStats::default(),
        }
    }

    /// Shared access to the wrapped transport.
    #[must_use]
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Exclusive access to the wrapped transport.
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// What this instance has injected so far.
    #[must_use]
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// The plan in force.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }
}

impl<T: Transport> Transport for FaultTransport<T> {
    fn exchange(&mut self, request_xml: &str) -> Result<String, TransportError> {
        let call = self.exchanges;
        self.exchanges += 1;
        let u = self.rng.uniform(&[call]);
        let p = &self.plan;

        let mut threshold = p.drop;
        if u < threshold {
            self.stats.drops += 1;
            counters::record_fault_injected();
            counters::record_timeout();
            return Err(TransportError::Timeout {
                deadline: Some(Duration::ZERO),
            });
        }
        threshold += p.disconnect;
        if u < threshold {
            self.stats.disconnects += 1;
            counters::record_fault_injected();
            return Err(TransportError::Disconnected);
        }
        threshold += p.garble;
        if u < threshold {
            self.stats.garbles += 1;
            counters::record_fault_injected();
            // Deterministic junk that can never parse as a wire
            // document (no leading '<').
            return Ok(format!("\u{1}garble {:016x}", self.rng.value(&[call, 1])));
        }
        threshold += p.truncate;
        if u < threshold {
            self.stats.truncates += 1;
            counters::record_fault_injected();
            // A plausible response cut mid-frame, length seed-varied.
            let frame = "<response><tags><tag><epc>AA00000000000000000000BB</epc>";
            let keep = 8 + (self.rng.value(&[call, 2]) as usize % (frame.len() - 8));
            return Ok(frame[..keep].to_owned());
        }
        threshold += p.delay;
        if u < threshold {
            self.stats.delays += 1;
            counters::record_fault_injected();
            if !p.delay_for.is_zero() {
                std::thread::sleep(p.delay_for);
            }
            return self.inner.exchange(request_xml);
        }
        self.stats.clean += 1;
        self.inner.exchange(request_xml)
    }

    fn reset(&mut self) -> Result<(), TransportError> {
        self.inner.reset()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::InMemoryTransport;
    use crate::server::ReaderEmulator;
    use crate::wire::XmlNode;

    fn faulty(seed: u64, plan: FaultPlan) -> FaultTransport<InMemoryTransport> {
        FaultTransport::new(
            InMemoryTransport::new(ReaderEmulator::new()),
            plan,
            RngStream::new(seed),
        )
    }

    #[test]
    fn default_plan_is_transparent() {
        let mut transport = faulty(1, FaultPlan::default());
        for _ in 0..50 {
            let reply = transport.exchange("<request><status/></request>").unwrap();
            assert!(XmlNode::parse(&reply).is_ok());
        }
        assert_eq!(transport.stats().clean, 50);
        assert_eq!(transport.stats().total_faults(), 0);
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        let plan = FaultPlan::noisy();
        let run = |seed| {
            let mut transport = faulty(seed, plan);
            for _ in 0..300 {
                let _ = transport.exchange("<request><status/></request>");
            }
            transport.stats()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn noisy_plan_exercises_every_fault_class() {
        let mut transport = faulty(7, FaultPlan::noisy());
        for _ in 0..500 {
            let _ = transport.exchange("<request><status/></request>");
        }
        let stats = transport.stats();
        assert!(stats.drops > 0, "{stats:?}");
        assert!(stats.disconnects > 0, "{stats:?}");
        assert!(stats.garbles > 0, "{stats:?}");
        assert!(stats.truncates > 0, "{stats:?}");
        assert!(stats.delays > 0, "{stats:?}");
        assert!(stats.clean > 250, "{stats:?}");
        let rate = stats.total_faults() as f64 / 500.0;
        assert!((rate - 0.3).abs() < 0.08, "fault rate {rate} far from plan");
    }

    #[test]
    fn garbled_and_truncated_frames_fail_wire_parsing() {
        let plan = FaultPlan {
            garble: 0.5,
            truncate: 0.5,
            ..FaultPlan::default()
        };
        let mut transport = faulty(3, plan);
        for _ in 0..100 {
            let reply = transport.exchange("<request><status/></request>").unwrap();
            assert!(
                XmlNode::parse(&reply).is_err(),
                "injected frame must be malformed: {reply:?}"
            );
        }
        assert_eq!(transport.stats().clean, 0);
    }

    #[test]
    fn faults_fire_before_the_reader_sees_the_request() {
        // Every exchange faulted: the emulator must never observe a
        // request, so its state (polled mode) cannot change.
        let plan = FaultPlan {
            drop: 0.5,
            disconnect: 0.5,
            ..FaultPlan::default()
        };
        let mut transport = faulty(5, plan);
        for _ in 0..40 {
            assert!(transport
                .exchange("<request><start-buffered/></request>")
                .is_err());
        }
        assert_eq!(
            transport.inner().emulator().mode(),
            crate::protocol::ReaderMode::Polled,
            "faulted exchanges must not mutate reader state"
        );
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn invalid_probabilities_are_rejected() {
        let plan = FaultPlan {
            drop: 1.5,
            ..FaultPlan::default()
        };
        let _ = faulty(1, plan);
    }

    #[test]
    #[should_panic(expected = "sum to")]
    fn oversubscribed_probabilities_are_rejected() {
        let plan = FaultPlan {
            drop: 0.6,
            garble: 0.6,
            ..FaultPlan::default()
        };
        let _ = faulty(1, plan);
    }
}
