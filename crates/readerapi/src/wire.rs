//! A minimal XML subset for the reader wire format.
//!
//! The format uses elements and text only — no attributes, comments,
//! processing instructions, or namespaces — mirroring the flat tag-list
//! XML that first-generation readers actually emitted. The parser is a
//! small recursive-descent matcher over that subset, written here to keep
//! the reproduction dependency-free.

use std::error::Error;
use std::fmt;

/// A parsed XML element: a name plus children and/or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Child elements, in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content (children's text excluded), trimmed.
    pub text: String,
}

/// True if `name` is a legal element name — nonempty ASCII alphanumerics
/// and `-` — the exact set [`XmlNode::parse`] accepts, so anything the
/// writer emits is guaranteed to parse back.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    !name.is_empty() && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-')
}

impl XmlNode {
    /// Creates a text-only element.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a [`valid_name`] (the parser would
    /// reject the serialized form, silently breaking round-trip
    /// symmetry). Use [`XmlNode::try_leaf`] for fallible construction.
    #[must_use]
    pub fn leaf(name: &str, text: impl Into<String>) -> XmlNode {
        // audit:allow(panic-in-prod, reason = "documented panicking constructor for static element names; wire-facing code uses try_leaf")
        Self::try_leaf(name, text).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Creates an element with children.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a [`valid_name`]. Use
    /// [`XmlNode::try_branch`] for fallible construction.
    #[must_use]
    pub fn branch(name: &str, children: Vec<XmlNode>) -> XmlNode {
        // audit:allow(panic-in-prod, reason = "documented panicking constructor for static element names; wire-facing code uses try_branch")
        Self::try_branch(name, children).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Creates a text-only element, rejecting invalid names.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if `name` is not a [`valid_name`].
    pub fn try_leaf(name: &str, text: impl Into<String>) -> Result<XmlNode, WireError> {
        check_name(name)?;
        Ok(XmlNode {
            name: name.to_owned(),
            children: Vec::new(),
            text: text.into(),
        })
    }

    /// Creates an element with children, rejecting invalid names.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if `name` is not a [`valid_name`].
    pub fn try_branch(name: &str, children: Vec<XmlNode>) -> Result<XmlNode, WireError> {
        check_name(name)?;
        Ok(XmlNode {
            name: name.to_owned(),
            children,
            text: String::new(),
        })
    }

    /// First child with the given name.
    #[must_use]
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Serializes to compact XML.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        if self.children.is_empty() && self.text.is_empty() {
            out.push('<');
            out.push_str(&self.name);
            out.push_str("/>");
            return;
        }
        out.push('<');
        out.push_str(&self.name);
        out.push('>');
        out.push_str(&escape(&self.text));
        for child in &self.children {
            child.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a document containing exactly one root element.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input or trailing content.
    pub fn parse(input: &str) -> Result<XmlNode, WireError> {
        let mut parser = Parser {
            input: input.trim(),
            pos: 0,
        };
        let node = parser.element()?;
        parser.skip_whitespace();
        if parser.pos != parser.input.len() {
            return Err(WireError::new("trailing content after root element"));
        }
        Ok(node)
    }
}

/// Error parsing the XML wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data: {}", self.message)
    }
}

impl Error for WireError {}

fn check_name(name: &str) -> Result<(), WireError> {
    if valid_name(name) {
        Ok(())
    } else {
        Err(WireError::new(format!("invalid element name {name:?}")))
    }
}

/// Escapes markup characters *and every control character* (as decimal
/// character references). Escaping control characters is load-bearing:
/// the TCP carrier frames documents with newlines, so a raw `\n` or
/// `\r` in tag text would split one document across two frames and
/// desynchronize the stream.
fn escape(text: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            c if c.is_control() => {
                let _ = write!(out, "&#{};", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Single-pass entity decoder: `&lt;`, `&gt;`, `&amp;`, and decimal
/// `&#N;` references. Single-pass matters — sequential `replace` calls
/// would decode the output of an earlier replacement (e.g. source text
/// `&amp;lt;` must yield `&lt;`, not `<`). Unrecognized `&` sequences
/// pass through literally, as first-generation readers emitted them.
fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut rest = text;
    while let Some(amp) = rest.find('&') {
        out.push_str(&rest[..amp]);
        rest = &rest[amp..];
        let decoded = rest.find(';').and_then(|semi| {
            let entity = &rest[1..semi];
            let c = match entity {
                "lt" => Some('<'),
                "gt" => Some('>'),
                "amp" => Some('&'),
                _ => entity
                    .strip_prefix('#')
                    .and_then(|digits| digits.parse::<u32>().ok())
                    .and_then(char::from_u32),
            };
            c.map(|c| (c, semi))
        });
        match decoded {
            Some((c, semi)) => {
                out.push(c);
                rest = &rest[semi + 1..];
            }
            None => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn skip_whitespace(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn element(&mut self) -> Result<XmlNode, WireError> {
        self.skip_whitespace();
        if !self.rest().starts_with('<') {
            return Err(WireError::new("expected '<'"));
        }
        self.pos += 1;
        let name_end = self
            .rest()
            .find(|c: char| c == '>' || c == '/' || c.is_whitespace())
            .ok_or_else(|| WireError::new("unterminated tag"))?;
        let name = self.rest()[..name_end].to_owned();
        check_name(&name)?;
        self.pos += name_end;
        self.skip_whitespace();

        // Self-closing element.
        if self.rest().starts_with("/>") {
            self.pos += 2;
            return Ok(XmlNode::branch(&name, Vec::new()));
        }
        if !self.rest().starts_with('>') {
            return Err(WireError::new("expected '>'"));
        }
        self.pos += 1;

        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            let close = format!("</{name}>");
            if self.rest().starts_with(&close) {
                self.pos += close.len();
                return Ok(XmlNode {
                    name,
                    children,
                    text: unescape(text.trim()),
                });
            }
            if self.rest().starts_with("</") {
                return Err(WireError::new(format!("mismatched close for <{name}>")));
            }
            if self.rest().starts_with('<') {
                children.push(self.element()?);
            } else {
                let next_tag = self
                    .rest()
                    .find('<')
                    .ok_or_else(|| WireError::new(format!("unclosed element <{name}>")))?;
                text.push_str(&self.rest()[..next_tag]);
                self.pos += next_tag;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_a_tag_list() {
        let doc = XmlNode::branch(
            "response",
            vec![XmlNode::branch(
                "tags",
                vec![
                    XmlNode::branch(
                        "tag",
                        vec![XmlNode::leaf("epc", "AABB"), XmlNode::leaf("antenna", "1")],
                    ),
                    XmlNode::branch("tag", vec![XmlNode::leaf("epc", "CCDD")]),
                ],
            )],
        );
        let xml = doc.to_xml();
        assert_eq!(XmlNode::parse(&xml).unwrap(), doc);
    }

    #[test]
    fn parses_self_closing_and_whitespace() {
        let node = XmlNode::parse("  <request>\n  <get-tags/>\n</request> ").unwrap();
        assert_eq!(node.name, "request");
        assert!(node.child("get-tags").is_some());
    }

    #[test]
    fn escapes_special_characters() {
        let doc = XmlNode::leaf("error", "power < 10 & > 0");
        let xml = doc.to_xml();
        assert!(!xml.contains("< 10"));
        assert_eq!(XmlNode::parse(&xml).unwrap().text, "power < 10 & > 0");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "plain text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a b='1'/>",
        ] {
            assert!(XmlNode::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn child_lookup_finds_first_match() {
        let doc = XmlNode::parse("<r><x>1</x><x>2</x></r>").unwrap();
        assert_eq!(doc.child("x").unwrap().text, "1");
        assert!(doc.child("y").is_none());
    }

    #[test]
    fn control_characters_never_reach_the_frame_raw() {
        // Regression: a newline in tag text used to be serialized
        // verbatim, splitting one document across two TCP frames.
        let doc = XmlNode::leaf("error", "line one\r\nline two\ttabbed\u{1}");
        let xml = doc.to_xml();
        assert!(
            xml.chars().all(|c| !c.is_control()),
            "serialized frame must be control-free: {xml:?}"
        );
        assert_eq!(
            XmlNode::parse(&xml).unwrap().text,
            "line one\r\nline two\ttabbed\u{1}",
            "escaped control characters round-trip exactly"
        );
    }

    #[test]
    fn unescape_is_single_pass() {
        // Source text that *looks like* an entity must survive: the old
        // sequential-replace decoder turned `&amp;lt;` into `<`.
        let doc = XmlNode::leaf("v", "&lt; literally, and &#10; literally");
        let parsed = XmlNode::parse(&doc.to_xml()).unwrap();
        assert_eq!(parsed.text, "&lt; literally, and &#10; literally");
    }

    #[test]
    fn unknown_entities_pass_through() {
        let parsed = XmlNode::parse("<v>a &nope; b &#notanum; c &unterminated</v>").unwrap();
        assert_eq!(parsed.text, "a &nope; b &#notanum; c &unterminated");
    }

    #[test]
    fn constructors_reject_names_the_parser_rejects() {
        for bad in ["", "a b", "a<b", "tag/", "über", "a\nb"] {
            assert!(!valid_name(bad), "{bad:?}");
            assert!(XmlNode::try_leaf(bad, "x").is_err(), "{bad:?}");
            assert!(XmlNode::try_branch(bad, Vec::new()).is_err(), "{bad:?}");
        }
        for good in ["a", "get-tags", "0day", "-"] {
            assert!(valid_name(good), "{good:?}");
            assert!(XmlNode::try_leaf(good, "x").is_ok(), "{good:?}");
        }
    }

    #[test]
    #[should_panic(expected = "invalid element name")]
    fn leaf_panics_on_invalid_name() {
        let _ = XmlNode::leaf("a b", "text");
    }

    #[test]
    #[should_panic(expected = "invalid element name")]
    fn branch_panics_on_invalid_name() {
        let _ = XmlNode::branch("<", Vec::new());
    }

    proptest! {
        #[test]
        fn leaf_text_round_trips(text in "[ -~]{0,64}") {
            let doc = XmlNode::leaf("v", text.trim().to_owned());
            let parsed = XmlNode::parse(&doc.to_xml()).unwrap();
            prop_assert_eq!(parsed.text, text.trim());
        }

        /// Control characters anywhere in the text survive the frame:
        /// only literal leading/trailing spaces are trimmed by parsing.
        #[test]
        fn control_heavy_text_round_trips(text in "[ -~\n\r\t\u{0}-\u{8}\u{7f}]{0,64}") {
            let text = text.trim_matches(' ').to_owned();
            let doc = XmlNode::leaf("v", text.clone());
            let xml = doc.to_xml();
            prop_assert!(xml.chars().all(|c| !c.is_control()), "{:?}", xml);
            let parsed = XmlNode::parse(&xml).unwrap();
            prop_assert_eq!(parsed.text, text);
        }
    }
}
