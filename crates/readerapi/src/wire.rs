//! A minimal XML subset for the reader wire format.
//!
//! The format uses elements and text only — no attributes, comments,
//! processing instructions, or namespaces — mirroring the flat tag-list
//! XML that first-generation readers actually emitted. The parser is a
//! small recursive-descent matcher over that subset, written here to keep
//! the reproduction dependency-free.

use std::error::Error;
use std::fmt;

/// A parsed XML element: a name plus children and/or text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlNode {
    /// Element name.
    pub name: String,
    /// Child elements, in document order.
    pub children: Vec<XmlNode>,
    /// Concatenated text content (children's text excluded), trimmed.
    pub text: String,
}

impl XmlNode {
    /// Creates a text-only element.
    #[must_use]
    pub fn leaf(name: &str, text: impl Into<String>) -> XmlNode {
        XmlNode {
            name: name.to_owned(),
            children: Vec::new(),
            text: text.into(),
        }
    }

    /// Creates an element with children.
    #[must_use]
    pub fn branch(name: &str, children: Vec<XmlNode>) -> XmlNode {
        XmlNode {
            name: name.to_owned(),
            children,
            text: String::new(),
        }
    }

    /// First child with the given name.
    #[must_use]
    pub fn child(&self, name: &str) -> Option<&XmlNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Serializes to compact XML.
    #[must_use]
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        if self.children.is_empty() && self.text.is_empty() {
            out.push('<');
            out.push_str(&self.name);
            out.push_str("/>");
            return;
        }
        out.push('<');
        out.push_str(&self.name);
        out.push('>');
        out.push_str(&escape(&self.text));
        for child in &self.children {
            child.write(out);
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }

    /// Parses a document containing exactly one root element.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input or trailing content.
    pub fn parse(input: &str) -> Result<XmlNode, WireError> {
        let mut parser = Parser {
            input: input.trim(),
            pos: 0,
        };
        let node = parser.element()?;
        parser.skip_whitespace();
        if parser.pos != parser.input.len() {
            return Err(WireError::new("trailing content after root element"));
        }
        Ok(node)
    }
}

/// Error parsing the XML wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    message: String,
}

impl WireError {
    pub(crate) fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed wire data: {}", self.message)
    }
}

impl Error for WireError {}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn unescape(text: &str) -> String {
    text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn skip_whitespace(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.input.len() - trimmed.len();
    }

    fn element(&mut self) -> Result<XmlNode, WireError> {
        self.skip_whitespace();
        if !self.rest().starts_with('<') {
            return Err(WireError::new("expected '<'"));
        }
        self.pos += 1;
        let name_end = self
            .rest()
            .find(|c: char| c == '>' || c == '/' || c.is_whitespace())
            .ok_or_else(|| WireError::new("unterminated tag"))?;
        let name = self.rest()[..name_end].to_owned();
        if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return Err(WireError::new(format!("invalid element name {name:?}")));
        }
        self.pos += name_end;
        self.skip_whitespace();

        // Self-closing element.
        if self.rest().starts_with("/>") {
            self.pos += 2;
            return Ok(XmlNode::branch(&name, Vec::new()));
        }
        if !self.rest().starts_with('>') {
            return Err(WireError::new("expected '>'"));
        }
        self.pos += 1;

        let mut children = Vec::new();
        let mut text = String::new();
        loop {
            let close = format!("</{name}>");
            if self.rest().starts_with(&close) {
                self.pos += close.len();
                return Ok(XmlNode {
                    name,
                    children,
                    text: unescape(text.trim()),
                });
            }
            if self.rest().starts_with("</") {
                return Err(WireError::new(format!("mismatched close for <{name}>")));
            }
            if self.rest().starts_with('<') {
                children.push(self.element()?);
            } else {
                let next_tag = self
                    .rest()
                    .find('<')
                    .ok_or_else(|| WireError::new(format!("unclosed element <{name}>")))?;
                text.push_str(&self.rest()[..next_tag]);
                self.pos += next_tag;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trips_a_tag_list() {
        let doc = XmlNode::branch(
            "response",
            vec![XmlNode::branch(
                "tags",
                vec![
                    XmlNode::branch(
                        "tag",
                        vec![XmlNode::leaf("epc", "AABB"), XmlNode::leaf("antenna", "1")],
                    ),
                    XmlNode::branch("tag", vec![XmlNode::leaf("epc", "CCDD")]),
                ],
            )],
        );
        let xml = doc.to_xml();
        assert_eq!(XmlNode::parse(&xml).unwrap(), doc);
    }

    #[test]
    fn parses_self_closing_and_whitespace() {
        let node = XmlNode::parse("  <request>\n  <get-tags/>\n</request> ").unwrap();
        assert_eq!(node.name, "request");
        assert!(node.child("get-tags").is_some());
    }

    #[test]
    fn escapes_special_characters() {
        let doc = XmlNode::leaf("error", "power < 10 & > 0");
        let xml = doc.to_xml();
        assert!(!xml.contains("< 10"));
        assert_eq!(XmlNode::parse(&xml).unwrap().text, "power < 10 & > 0");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "plain text",
            "<a>",
            "<a></b>",
            "<a><b></a></b>",
            "<a/><b/>",
            "<a b='1'/>",
        ] {
            assert!(XmlNode::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn child_lookup_finds_first_match() {
        let doc = XmlNode::parse("<r><x>1</x><x>2</x></r>").unwrap();
        assert_eq!(doc.child("x").unwrap().text, "1");
        assert!(doc.child("y").is_none());
    }

    proptest! {
        #[test]
        fn leaf_text_round_trips(text in "[ -~]{0,64}") {
            let doc = XmlNode::leaf("v", text.trim().to_owned());
            let parsed = XmlNode::parse(&doc.to_xml()).unwrap();
            prop_assert_eq!(parsed.text, text.trim());
        }
    }
}
