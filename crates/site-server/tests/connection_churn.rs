//! Connection-churn soak: portals that connect, drain part of their
//! recorded session over a fault-injected transport, disconnect, and
//! reconnect — concurrently, across every lane — must leave the shared
//! tracker in exactly the state a clean single-shot batch replay
//! produces, with every session accounted for.
//!
//! The run is seed-deterministic: all chaos comes from seeded
//! `RngStream`s, and the merge's release order is invariant to thread
//! interleaving, so two runs with the same seeds produce identical
//! reports even though the OS scheduler differs.

use rfid_readerapi::{
    BackoffPolicy, FaultPlan, FaultTransport, InMemoryTransport, ReaderClient, ReaderEmulator,
    Request, RetryingTransport,
};
use rfid_sim::{ReadEvent, RngStream};
use rfid_site_server::{
    drive_session, recorded_reads, synthetic_world, ServerReport, SessionEnd, SharedIngest,
};
use rfid_track::stream::Operator;
use rfid_track::LocationTracker;
use std::sync::atomic::AtomicBool;
use std::thread;
use std::time::Duration;

const PORTALS: usize = 3;
const TAGS: usize = 4;
const STEPS: usize = 32;
const CYCLES: usize = 4;

/// One full churn run: every lane concurrently replays its recorded
/// session as `CYCLES` separate connect → drain → disconnect sessions
/// over a noisy transport. Returns the drained server report and the
/// total number of injected faults.
fn churn_run(seed: u64) -> (ServerReport, u64) {
    let world = synthetic_world(PORTALS, TAGS);
    let reads = recorded_reads(PORTALS, TAGS, STEPS);
    let per_lane: Vec<Vec<ReadEvent>> = (0..PORTALS)
        .map(|p| reads.iter().copied().filter(|r| r.reader == p).collect())
        .collect();

    let ingest = SharedIngest::new(&world.site, &world.registry, &world.adapters, 3600.0, 4);
    let shutdown = AtomicBool::new(false);
    let faults: u64 = thread::scope(|scope| {
        let handles: Vec<_> = (0..PORTALS)
            .map(|lane| {
                let lane_reads = &per_lane[lane];
                let ingest = &ingest;
                let shutdown = &shutdown;
                scope.spawn(move || {
                    let mut faults = 0;
                    let chunk = lane_reads.len().div_ceil(CYCLES);
                    for cycle in 0..CYCLES {
                        let slice = lane_reads
                            .get(cycle * chunk..((cycle + 1) * chunk).min(lane_reads.len()))
                            .unwrap_or(&[]);
                        // A fresh portal process for this session:
                        // buffered before connect, pre-fed its chunk.
                        let mut emulator = ReaderEmulator::with_reader_id(lane);
                        let _ = emulator.handle(&Request::StartBuffered);
                        for read in slice {
                            emulator.feed_sim_read(read);
                        }
                        let chaos = FaultTransport::new(
                            InMemoryTransport::new(emulator),
                            FaultPlan::noisy(),
                            RngStream::new(seed ^ (lane as u64 * 101 + cycle as u64)),
                        );
                        let mut client = ReaderClient::new(RetryingTransport::new(
                            chaos,
                            BackoffPolicy::immediate(8),
                            RngStream::new(seed ^ (0xACE + lane as u64 * 7 + cycle as u64)),
                        ));
                        let outcome = drive_session(
                            &mut client,
                            ingest,
                            shutdown,
                            Duration::ZERO,
                            SessionEnd::OnDrained,
                        );
                        assert!(outcome.clean, "lane {lane} cycle {cycle} must drain");
                        assert_eq!(outcome.session, Some(lane));
                        assert_eq!(outcome.records as usize, slice.len());
                        faults += client.transport_mut().inner_mut().stats().total_faults();
                    }
                    faults
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("lane")).sum()
    });
    ingest.finish();
    (ingest.into_report(), faults)
}

#[test]
fn churned_faulted_sessions_replay_to_the_clean_batch_state() {
    let (report, faults) = churn_run(0xC0FFEE);
    assert!(faults > 0, "the noisy plan should have fired");

    // Counters balance: every connect has a matching disconnect, no
    // session died, nothing was dropped on the way in.
    let sessions = (PORTALS * CYCLES) as u64;
    assert_eq!(report.counters.sessions_attached, sessions);
    assert_eq!(report.counters.sessions_detached, sessions);
    assert_eq!(report.counters.session_errors, 0);
    assert_eq!(report.counters.session_rejects, 0);
    assert_eq!(report.counters.adapter_rejects, 0);
    assert_eq!(report.counters.merge_rejects, 0);
    let total = (TAGS * STEPS) as u64;
    assert_eq!(report.counters.events_ingested, total);
    assert_eq!(report.counters.events_released, total);

    // The churned, faulted, concurrent replay equals a clean batch run.
    let world = synthetic_world(PORTALS, TAGS);
    let reads = recorded_reads(PORTALS, TAGS, STEPS);
    let mut batch = LocationTracker::new(3600.0);
    let expected: Vec<_> = world
        .site
        .observations(&world.registry, &reads)
        .iter()
        .flat_map(|obs| batch.push(*obs))
        .collect();
    assert_eq!(report.tracker, batch, "bit-identical to the clean replay");
    assert_eq!(report.transitions, expected);
}

#[test]
fn churn_runs_are_seed_deterministic() {
    let (first, first_faults) = churn_run(0x5EED);
    let (second, second_faults) = churn_run(0x5EED);
    assert_eq!(first.tracker, second.tracker);
    assert_eq!(first.transitions, second.transitions);
    assert_eq!(first.counters, second.counters);
    assert_eq!(first_faults, second_faults);

    let (other, _) = churn_run(0xD1FF);
    // A different seed shifts the chaos but never the tracked state.
    assert_eq!(other.tracker, first.tracker);
    assert_eq!(other.transitions, first.transitions);
}
