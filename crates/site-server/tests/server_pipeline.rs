//! The acceptance proof for the site-server daemon: a recorded
//! simulation, split into per-portal sessions and replayed over real
//! TCP through the live server, drains to a zone history that is
//! **bit-identical** to the batch pipeline over the same reads — while
//! the query surface answers live and shutdown is graceful.

use rfid_gen2::{ReaderRf, Session};
use rfid_geom::{Pose, Rotation, Vec3};
use rfid_readerapi::WireEventAdapter;
use rfid_sim::{run_scenario, Antenna, Motion, ReadEvent, Scenario, ScenarioBuilder, SimReader};
use rfid_site_server::{run_portal, QueryClient, ServerConfig, SiteServer};
use rfid_track::stream::Operator;
use rfid_track::{LocationTracker, ObjectRegistry, Site};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

/// Raises the shutdown flag when dropped, so a failed assertion in the
/// test scope unwinds the daemon instead of deadlocking the join.
struct RaiseOnDrop<'a>(&'a AtomicBool);

impl Drop for RaiseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

fn dense_portal(x: f64, ports: usize, channel: u8) -> SimReader {
    let antennas = (0..ports)
        .map(|i| {
            let offset = (i as f64 - (ports as f64 - 1.0) / 2.0) * 2.0;
            Antenna::portal(Pose::from_translation(Vec3::new(x + offset, 0.0, 1.0)))
        })
        .collect();
    let mut reader = SimReader::ar400(antennas);
    reader.rf = ReaderRf::dense(channel);
    reader
}

/// Two cases carted down a dock → aisle corridor, as in the streaming
/// wire pipeline test, so both portals record a real session.
fn corridor_scenario() -> Scenario {
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    ScenarioBuilder::new()
        .duration_s(8.0)
        .session(Session::S0)
        .reader(dense_portal(0.0, 2, 0))
        .reader(dense_portal(4.0, 1, 1))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-1.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            8.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-1.5, 1.0, 1.25), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            8.0,
        ))
        .build()
}

#[test]
fn recorded_sessions_over_tcp_reach_the_batch_state_bit_for_bit() {
    let scenario = corridor_scenario();
    let output = run_scenario(&scenario, 33);
    assert!(
        output.reads.iter().any(|r| r.reader == 0) && output.reads.iter().any(|r| r.reader == 1),
        "the corridor pass must exercise both readers"
    );

    let mut registry = ObjectRegistry::new();
    let mut cases = Vec::new();
    for (index, tag) in scenario.world.tags.iter().enumerate() {
        let case = registry.register(format!("case-{index}"));
        registry.attach_tag(case, tag.epc);
        cases.push((case, tag.epc));
    }
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    let aisle = site.add_zone("aisle");
    site.assign_portal(0, 0, dock);
    site.assign_portal(0, 1, dock);
    site.assign_portal(1, 0, aisle);
    let adapters: Vec<WireEventAdapter> = (0..2)
        .map(|reader| WireEventAdapter::for_world(reader, &scenario.world))
        .collect();

    // The batch reference over the recorded reads, in the canonical
    // replay order the merge defines: (time, portal lane), stable —
    // identical to the recorded order except where two portals read at
    // the exact same instant.
    let mut canonical = output.reads.clone();
    canonical.sort_by(|a, b| {
        a.time_s
            .partial_cmp(&b.time_s)
            .expect("recorded times are finite")
            .then(a.reader.cmp(&b.reader))
    });
    let mut batch_tracker = LocationTracker::new(5.0);
    let expected_transitions: Vec<_> = site
        .observations(&registry, &canonical)
        .iter()
        .flat_map(|obs| batch_tracker.push(*obs))
        .collect();
    assert!(
        !expected_transitions.is_empty(),
        "the pass should move a case between zones"
    );

    // The live replay: each reader's recorded session dials in as a
    // portal; the daemon merges both into the streaming chain.
    let per_portal: Vec<Vec<ReadEvent>> = (0..2)
        .map(|p| {
            output
                .reads
                .iter()
                .copied()
                .filter(|r| r.reader == p)
                .collect()
        })
        .collect();
    let mut config = ServerConfig::new("corridor-token");
    config.staleness_s = 5.0;
    let server = SiteServer::new(&site, &registry, &adapters, config);
    let reader_listener = TcpListener::bind("127.0.0.1:0").expect("bind reader port");
    let query_listener = TcpListener::bind("127.0.0.1:0").expect("bind query port");
    let reader_addr = reader_listener.local_addr().expect("reader addr");
    let query_addr = query_listener.local_addr().expect("query addr");
    let shutdown = AtomicBool::new(false);

    let report = thread::scope(|scope| {
        let _guard = RaiseOnDrop(&shutdown);
        let daemon = scope.spawn(|| server.run(&reader_listener, &query_listener, &shutdown));
        let portals: Vec<_> = (0..2)
            .map(|p| {
                let chunk = &per_portal[p];
                scope.spawn(move || run_portal(reader_addr, p, chunk, Duration::ZERO))
            })
            .collect();

        let mut client = QueryClient::connect(query_addr, "corridor-token").expect("connect");
        let total = output.reads.len() as u64;
        let mut ingested = 0;
        for _ in 0..1000 {
            ingested = client.counter("events_ingested").expect("counters rpc");
            if ingested == total {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ingested, total, "every recorded read reaches the merge");

        // Live queries answer from the released prefix of the canonical
        // stream: each tag's streamed history must be a prefix of its
        // batch history.
        for (case, epc) in &cases {
            let live = client.zone_history(&epc.to_string()).expect("history rpc");
            let batch: Vec<_> = batch_tracker.history_of(*case).collect();
            assert!(
                live.len() <= batch.len(),
                "released history cannot exceed the batch history"
            );
            for (row, obs) in live.iter().zip(&batch) {
                assert_eq!(row.zone, obs.zone);
                assert_eq!(row.time_s, obs.time_s, "times are bit-exact over the wire");
                assert_eq!(row.inferred, obs.inferred);
            }
            client.location_of(&epc.to_string()).expect("location rpc");
        }

        client.shutdown().expect("shutdown rpc");
        for portal in portals {
            portal
                .join()
                .expect("portal thread")
                .expect("portal session");
        }
        daemon.join().expect("daemon thread")
    })
    .expect("server run");

    // The drained daemon state is the batch state, bit for bit:
    // the tracker (full zone history + location estimates) and the
    // transition log both match exactly.
    assert_eq!(report.tracker, batch_tracker);
    assert_eq!(report.transitions, expected_transitions);
    assert_eq!(report.counters.events_ingested, output.reads.len() as u64);
    assert_eq!(report.counters.events_released, output.reads.len() as u64);
    assert_eq!(report.counters.sessions_attached, 2);
    assert_eq!(report.counters.sessions_detached, 2);
    assert_eq!(report.counters.session_errors, 0);
    assert_eq!(report.counters.adapter_rejects, 0);
    assert_eq!(report.counters.merge_rejects, 0);
}

#[test]
fn a_nan_timestamp_on_the_wire_is_rejected_without_killing_the_daemon() {
    use rfid_gen2::Epc96;

    let mut site = Site::new();
    let dock = site.add_zone("dock");
    site.assign_portal(0, 0, dock);
    let mut registry = ObjectRegistry::new();
    let epc = Epc96::from_u128(0xDEAD);
    let case = registry.register("case");
    registry.attach_tag(case, epc);
    let adapters = vec![WireEventAdapter::new(0, [epc])];
    let server = SiteServer::new(&site, &registry, &adapters, ServerConfig::new("tok"));
    let reader_listener = TcpListener::bind("127.0.0.1:0").expect("bind reader port");
    let query_listener = TcpListener::bind("127.0.0.1:0").expect("bind query port");
    let reader_addr = reader_listener.local_addr().expect("reader addr");
    let query_addr = query_listener.local_addr().expect("query addr");
    let shutdown = AtomicBool::new(false);

    // A poisoned recorded session: a NaN-time read between two clean
    // ones. `f64::from_str("NaN")` parses, so the frame crosses the
    // wire intact and only the adapter can stop it.
    let read = |time_s: f64| ReadEvent {
        time_s,
        reader: 0,
        antenna: 0,
        tag: 0,
        epc,
    };
    let reads = vec![read(1.0), read(f64::NAN), read(2.0)];

    let report = thread::scope(|scope| {
        let _guard = RaiseOnDrop(&shutdown);
        let daemon = scope.spawn(|| server.run(&reader_listener, &query_listener, &shutdown));
        let portal = scope.spawn(|| run_portal(reader_addr, 0, &reads, Duration::ZERO));
        let mut client = QueryClient::connect(query_addr, "tok").expect("connect");
        let mut drained = 0;
        for _ in 0..1000 {
            drained = client.counter("records_drained").expect("counters rpc");
            if drained == 3 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(drained, 3, "all three frames crossed the wire");
        client
            .shutdown()
            .expect("daemon still answers after the NaN frame");
        portal
            .join()
            .expect("portal thread")
            .expect("portal session");
        daemon.join().expect("daemon thread")
    })
    .expect("server run");

    assert_eq!(report.counters.adapter_rejects, 1, "the NaN frame, typed");
    assert_eq!(report.counters.events_ingested, 2);
    assert_eq!(report.counters.session_errors, 0, "the session survived");
    // The clean reads still tracked.
    let clean: Vec<ReadEvent> = vec![read(1.0), read(2.0)];
    let mut batch = LocationTracker::new(3600.0);
    batch
        .observe_all(site.observations(&registry, &clean))
        .expect("finite times");
    assert_eq!(report.tracker, batch);
}
