//! Durability acceptance for `--store-dir` mode: a daemon run that
//! appends every released observation to a `ZoneHistoryStore` drains
//! to the same state a batch replay produces, a *restarted* daemon
//! recovers that state from disk alone, and the `location_at` query
//! surface answers history — without any of it being panicable from
//! the wire.

use rfid_gen2::Epc96;
use rfid_readerapi::WireEventAdapter;
use rfid_sim::ReadEvent;
use rfid_site_server::{run_portal, QueryClient, RpcError, ServerConfig, SiteServer};
use rfid_track::{LocationTracker, ObjectRegistry, Site, StoreConfig, ZoneHistoryStore};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

/// Raises the shutdown flag when dropped, so a failed assertion in the
/// test scope unwinds the daemon instead of deadlocking the join.
struct RaiseOnDrop<'a>(&'a AtomicBool);

impl Drop for RaiseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

struct World {
    site: Site,
    registry: ObjectRegistry,
    adapters: Vec<WireEventAdapter>,
    epc: Epc96,
}

/// One case, two portals: reader 0 is the dock, reader 1 the aisle.
fn world() -> World {
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    let aisle = site.add_zone("aisle");
    site.assign_portal(0, 0, dock);
    site.assign_portal(1, 0, aisle);
    let mut registry = ObjectRegistry::new();
    let epc = Epc96::from_u128(0xC0FFEE);
    let case = registry.register("case");
    registry.attach_tag(case, epc);
    let adapters = (0..2).map(|r| WireEventAdapter::new(r, [epc])).collect();
    World {
        site,
        registry,
        adapters,
        epc,
    }
}

fn read(epc: Epc96, time_s: f64, reader: usize) -> ReadEvent {
    ReadEvent {
        time_s,
        reader,
        antenna: 0,
        tag: 0,
        epc,
    }
}

fn store_dir(name: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("store-replay-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one durable daemon over per-portal feeds, returning the
/// drained report after `check` ran against the live query surface.
fn durable_run(
    world: &World,
    dir: &std::path::Path,
    feeds: &[Vec<ReadEvent>],
    check: impl FnOnce(&mut QueryClient) + Send,
) -> rfid_site_server::ServerReport {
    let mut config = ServerConfig::new("store-token");
    config.staleness_s = 3600.0;
    config.shards = 2;
    config.store_dir = Some(dir.to_path_buf());
    let server = SiteServer::new(&world.site, &world.registry, &world.adapters, config);
    let reader_listener = TcpListener::bind("127.0.0.1:0").expect("bind reader port");
    let query_listener = TcpListener::bind("127.0.0.1:0").expect("bind query port");
    let reader_addr = reader_listener.local_addr().expect("reader addr");
    let query_addr = query_listener.local_addr().expect("query addr");
    let shutdown = AtomicBool::new(false);
    let total: u64 = feeds.iter().map(|f| f.len() as u64).sum();

    thread::scope(|scope| {
        let _guard = RaiseOnDrop(&shutdown);
        let daemon = scope.spawn(|| server.run(&reader_listener, &query_listener, &shutdown));
        let portals: Vec<_> = feeds
            .iter()
            .enumerate()
            .map(|(p, chunk)| {
                scope.spawn(move || run_portal(reader_addr, p, chunk, Duration::ZERO))
            })
            .collect();
        let mut client = QueryClient::connect(query_addr, "store-token").expect("connect");
        let mut ingested = 0;
        for _ in 0..1000 {
            ingested = client.counter("events_ingested").expect("counters rpc");
            if ingested == total {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ingested, total, "every feed read reaches the merge");
        check(&mut client);
        client.shutdown().expect("shutdown rpc");
        for portal in portals {
            portal
                .join()
                .expect("portal thread")
                .expect("portal session");
        }
        daemon.join().expect("daemon thread")
    })
    .expect("server run")
}

#[test]
fn a_durable_run_drains_to_the_batch_state_and_replays_from_disk_alone() {
    let world = world();
    let dir = store_dir("replay");
    // The case crosses dock (t=0,1) then aisle (t=2,3); distinct times
    // keep the canonical merge order unambiguous across lanes.
    let feeds = vec![
        vec![read(world.epc, 0.0, 0), read(world.epc, 1.0, 0)],
        vec![read(world.epc, 2.0, 1), read(world.epc, 3.0, 1)],
    ];
    let epc_text = world.epc.to_string();
    let report = durable_run(&world, &dir, &feeds, |client| {
        // The released prefix is queryable back in time while live.
        let at_dock = client.location_at(&epc_text, 1.5).expect("location_at rpc");
        assert_eq!(at_dock, Some((0, "dock".to_owned())));
    });

    // The batch reference over the same reads in canonical order.
    let reads: Vec<ReadEvent> = feeds.concat();
    let mut batch = LocationTracker::new(3600.0);
    batch
        .observe_all(world.site.observations(&world.registry, &reads))
        .expect("finite times");
    assert_eq!(
        report.tracker, batch,
        "durable drain equals the batch replay bit for bit"
    );
    assert_eq!(report.counters.store_appends, 4);
    assert_eq!(report.counters.store_errors, 0);
    assert_eq!(report.counters.store_recovered, 0, "the store began empty");

    // Replay from disk alone — no daemon, no sessions — reaches the
    // identical tracker: recovery IS the report path.
    let store = ZoneHistoryStore::open(&dir, StoreConfig::default()).expect("reopen store");
    assert_eq!(store.len(), 4);
    let mut replayed = LocationTracker::new(3600.0);
    replayed
        .observe_all(store.observations().expect("replay stream"))
        .expect("stored times are finite");
    assert_eq!(replayed, batch, "disk replay equals the live run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_restarted_daemon_recovers_the_store_and_continues_the_history() {
    let world = world();
    let dir = store_dir("restart");
    let epc_text = world.epc.to_string();

    // Run 1: dock at t=0,1 and aisle at t=2,3.
    let first = vec![
        vec![read(world.epc, 0.0, 0), read(world.epc, 1.0, 0)],
        vec![read(world.epc, 2.0, 1), read(world.epc, 3.0, 1)],
    ];
    durable_run(&world, &dir, &first, |_| {});

    // Run 2, same directory: the case returns to the dock at t=4,5.
    // `with_store` must replay the four stored observations before
    // accepting connections, and the history must answer across the
    // restart boundary.
    let second = vec![
        vec![read(world.epc, 4.0, 0), read(world.epc, 5.0, 0)],
        Vec::new(),
    ];
    let report = durable_run(&world, &dir, &second, |client| {
        let before_restart = client.location_at(&epc_text, 2.5).expect("location_at rpc");
        assert_eq!(
            before_restart,
            Some((1, "aisle".to_owned())),
            "history from the previous run answers after the restart"
        );
    });

    assert_eq!(report.counters.store_recovered, 4, "run 1's observations");
    assert_eq!(report.counters.store_appends, 2, "run 2's observations");
    assert_eq!(report.counters.store_errors, 0);

    // The drained state equals one batch over BOTH runs' reads.
    let reads: Vec<ReadEvent> = first.concat().into_iter().chain(second.concat()).collect();
    let mut batch = LocationTracker::new(3600.0);
    batch
        .observe_all(world.site.observations(&world.registry, &reads))
        .expect("finite times");
    assert_eq!(
        report.tracker, batch,
        "restart + continuation equals one uninterrupted run"
    );

    // And the store now holds the full six-observation history.
    let store = ZoneHistoryStore::open(&dir, StoreConfig::default()).expect("reopen store");
    assert_eq!(store.len(), 6);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_query_times_are_errors_not_panics() {
    let world = world();
    let dir = store_dir("hostile");
    let feeds = [
        vec![read(world.epc, 0.0, 0), read(world.epc, 1.0, 0)],
        vec![read(world.epc, 2.0, 1), read(world.epc, 3.0, 1)],
    ];
    let epc_text = world.epc.to_string();

    let mut config = ServerConfig::new("store-token");
    config.staleness_s = 3600.0;
    config.store_dir = Some(dir.clone());
    let server = SiteServer::new(&world.site, &world.registry, &world.adapters, config);
    let reader_listener = TcpListener::bind("127.0.0.1:0").expect("bind reader port");
    let query_listener = TcpListener::bind("127.0.0.1:0").expect("bind query port");
    let reader_addr = reader_listener.local_addr().expect("reader addr");
    let query_addr = query_listener.local_addr().expect("query addr");
    let shutdown = AtomicBool::new(false);

    thread::scope(|scope| {
        let _guard = RaiseOnDrop(&shutdown);
        let daemon = scope.spawn(|| server.run(&reader_listener, &query_listener, &shutdown));
        let portals: Vec<_> = feeds
            .iter()
            .enumerate()
            .map(|(p, chunk)| {
                scope.spawn(move || run_portal(reader_addr, p, chunk, Duration::ZERO))
            })
            .collect();
        let mut client = QueryClient::connect(query_addr, "store-token").expect("connect");
        let mut ingested = 0;
        for _ in 0..1000 {
            ingested = client.counter("events_ingested").expect("counters rpc");
            if ingested == 4 {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(ingested, 4);

        // The typed client refuses to put a non-finite time on the wire.
        assert!(matches!(
            client.location_at(&epc_text, f64::NAN),
            Err(RpcError::Protocol(_))
        ));

        // A raw connection smuggling `1e999` (infinite once parsed) in
        // `time_s` gets a typed error frame, and the connection — and
        // the daemon — survive to answer the next request.
        let stream = TcpStream::connect(query_addr).expect("raw connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("timeout");
        let mut writer = stream.try_clone().expect("clone");
        let mut lines = BufReader::new(stream);
        let hostile = format!(
            "{{\"token\":\"store-token\",\"method\":\"location_at\",\
             \"params\":{{\"epc\":\"{epc_text}\",\"time_s\":1e999}}}}\n"
        );
        writer.write_all(hostile.as_bytes()).expect("send hostile");
        let mut response = String::new();
        lines.read_line(&mut response).expect("hostile response");
        assert!(
            response.contains("\"ok\":false"),
            "hostile time must be a typed error frame, got: {response}"
        );
        // Watermark floor is the dock lane's 1.0, so t=0 is released
        // (and stored) for sure; query inside that prefix.
        let followup = format!(
            "{{\"token\":\"store-token\",\"method\":\"location_at\",\
             \"params\":{{\"epc\":\"{epc_text}\",\"time_s\":0.5}}}}\n"
        );
        writer
            .write_all(followup.as_bytes())
            .expect("send followup");
        response.clear();
        lines.read_line(&mut response).expect("followup response");
        assert!(
            response.contains("\"ok\":true") && response.contains("dock"),
            "the connection answers normally after the hostile frame, got: {response}"
        );

        client.shutdown().expect("shutdown rpc");
        for portal in portals {
            portal
                .join()
                .expect("portal thread")
                .expect("portal session");
        }
        daemon.join().expect("daemon thread")
    })
    .expect("server run");
    let _ = std::fs::remove_dir_all(&dir);
}
