//! One reader session: drain a connected portal into the shared ingest.
//!
//! The server is the *protocol client* on an inbound connection: the
//! portal dials in and serves the XML reader protocol, the server
//! identifies it, switches it to buffered mode, and polls `get_tags`
//! drains into [`SharedIngest`]. The driver is generic over
//! [`Transport`] so the TCP daemon, the in-memory churn tests, and the
//! fault-injected soak runs all exercise the identical session logic.

use crate::ingest::SharedIngest;
use rfid_readerapi::{ClientError, ReaderClient, Transport};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

/// When a session driver should stop polling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionEnd {
    /// Run until the shutdown flag is raised, then take one final
    /// drain (the graceful-shutdown path of the daemon).
    OnShutdown,
    /// Return as soon as a drain comes back empty (batch replay of a
    /// pre-fed recorded session, as in the churn tests).
    OnDrained,
}

/// What one session did, for logging and test assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOutcome {
    /// The portal lane the session claimed, if identification and
    /// attach both succeeded.
    pub session: Option<usize>,
    /// Wire records drained (before validation).
    pub records: u64,
    /// Whether the session ended cleanly (shutdown or drained), as
    /// opposed to a transport/protocol error.
    pub clean: bool,
}

fn rejected(ingest: &SharedIngest<'_>) -> SessionOutcome {
    ingest.record_session_error();
    SessionOutcome {
        session: None,
        records: 0,
        clean: false,
    }
}

/// Drives one connected reader session to completion.
///
/// Flow: `identify` → validate the portal index → attach the merge
/// lane → `start_buffered` → poll `get_tags`, pushing every drain into
/// the ingest plane. On the shutdown flag, one final drain runs before
/// detaching, so every record the reader buffered before shutdown
/// reaches the tracker. All failures are typed, counted, and end only
/// this session — never the daemon.
pub fn drive_session<T: Transport>(
    client: &mut ReaderClient<T>,
    ingest: &SharedIngest<'_>,
    shutdown: &AtomicBool,
    poll: Duration,
    end: SessionEnd,
) -> SessionOutcome {
    let session = match client.identify() {
        Ok(session) if session < ingest.sessions() => session,
        Ok(_) | Err(_) => return rejected(ingest),
    };
    if ingest.attach(session).is_err() {
        // attach() already counted the reject; the extra lane claim is
        // a session-level error too (two portals claiming one lane).
        return rejected(ingest);
    }
    let mut outcome = SessionOutcome {
        session: Some(session),
        records: 0,
        clean: false,
    };
    let drain = |client: &mut ReaderClient<T>,
                 outcome: &mut SessionOutcome|
     -> Result<usize, ClientError> {
        let records = client.get_tags()?;
        outcome.records += records.len() as u64;
        ingest.ingest_records(session, &records);
        Ok(records.len())
    };
    let run = (|| -> Result<bool, ClientError> {
        client.start_buffered()?;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                // Final drain: collect whatever buffered since the
                // last poll, then leave cleanly.
                drain(client, &mut outcome)?;
                return Ok(true);
            }
            let drained = drain(client, &mut outcome)?;
            if drained == 0 {
                if end == SessionEnd::OnDrained {
                    return Ok(true);
                }
                // Idle: let the reader buffer instead of spinning.
                if !poll.is_zero() {
                    thread::sleep(poll);
                }
            }
        }
    })();
    match run {
        Ok(clean) => outcome.clean = clean,
        Err(_) => ingest.record_session_error(),
    }
    ingest.detach(session);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::Epc96;
    use rfid_readerapi::{InMemoryTransport, ReaderEmulator, WireEventAdapter};
    use rfid_sim::ReadEvent;
    use rfid_track::{ObjectRegistry, Site};

    fn world() -> (Site, ObjectRegistry, Epc96) {
        let mut site = Site::new();
        let dock = site.add_zone("dock");
        site.assign_portal(0, 0, dock);
        let mut registry = ObjectRegistry::new();
        let epc = Epc96::from_u128(0x77);
        let case = registry.register("case");
        registry.attach_tag(case, epc);
        (site, registry, epc)
    }

    fn fed_emulator(reader: usize, epc: Epc96, times: &[f64]) -> ReaderEmulator {
        let mut emulator = ReaderEmulator::with_reader_id(reader);
        emulator.handle(&rfid_readerapi::Request::StartBuffered);
        for &time_s in times {
            emulator.feed_sim_read(&ReadEvent {
                time_s,
                reader,
                antenna: 0,
                tag: 0,
                epc,
            });
        }
        emulator
    }

    #[test]
    fn drains_a_prefed_session_to_completion() {
        let (site, registry, epc) = world();
        let adapters = vec![WireEventAdapter::new(0, [epc])];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 2);
        let emulator = fed_emulator(0, epc, &[1.0, 2.0, 3.0]);
        let mut client = ReaderClient::new(InMemoryTransport::new(emulator));
        let shutdown = AtomicBool::new(false);
        let outcome = drive_session(
            &mut client,
            &ingest,
            &shutdown,
            Duration::ZERO,
            SessionEnd::OnDrained,
        );
        assert_eq!(outcome.session, Some(0));
        assert_eq!(outcome.records, 3);
        assert!(outcome.clean);
        let counters = ingest.counters();
        assert_eq!(counters.events_ingested, 3);
        assert_eq!(counters.sessions_attached, 1);
        assert_eq!(counters.sessions_detached, 1);
        assert_eq!(counters.session_errors, 0);
    }

    #[test]
    fn out_of_range_portal_index_is_rejected() {
        let (site, registry, epc) = world();
        let adapters = vec![WireEventAdapter::new(0, [epc])];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 2);
        let emulator = fed_emulator(9, epc, &[]);
        let mut client = ReaderClient::new(InMemoryTransport::new(emulator));
        let shutdown = AtomicBool::new(false);
        let outcome = drive_session(
            &mut client,
            &ingest,
            &shutdown,
            Duration::ZERO,
            SessionEnd::OnDrained,
        );
        assert_eq!(outcome.session, None);
        assert!(!outcome.clean);
        assert_eq!(ingest.counters().session_errors, 1);
    }

    #[test]
    fn second_session_on_a_busy_lane_is_refused() {
        let (site, registry, epc) = world();
        let adapters = vec![WireEventAdapter::new(0, [epc])];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 2);
        ingest.attach(0).expect("claim the lane first");
        let emulator = fed_emulator(0, epc, &[1.0]);
        let mut client = ReaderClient::new(InMemoryTransport::new(emulator));
        let shutdown = AtomicBool::new(false);
        let outcome = drive_session(
            &mut client,
            &ingest,
            &shutdown,
            Duration::ZERO,
            SessionEnd::OnDrained,
        );
        assert_eq!(outcome.session, None);
        let counters = ingest.counters();
        assert_eq!(counters.session_rejects, 1);
        assert_eq!(counters.session_errors, 1);
        assert_eq!(counters.sessions_attached, 1, "only the manual attach");
    }

    #[test]
    fn shutdown_takes_a_final_drain() {
        let (site, registry, epc) = world();
        let adapters = vec![WireEventAdapter::new(0, [epc])];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 2);
        let emulator = fed_emulator(0, epc, &[1.0, 2.0]);
        let mut client = ReaderClient::new(InMemoryTransport::new(emulator));
        let shutdown = AtomicBool::new(true);
        let outcome = drive_session(
            &mut client,
            &ingest,
            &shutdown,
            Duration::from_millis(1),
            SessionEnd::OnShutdown,
        );
        assert!(outcome.clean, "shutdown is a clean exit");
        assert_eq!(outcome.records, 2, "the final drain still ran");
    }
}
