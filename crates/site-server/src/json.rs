//! A minimal JSON value, writer, and recursive-descent parser.
//!
//! The query surface is line-delimited JSON and the workspace is
//! offline (no serde_json), so this module implements exactly the
//! subset the RPC layer needs: the six JSON value kinds, strict parsing
//! with a recursion-depth cap, and escaping that keeps every document
//! on one line (control characters are `\u` escaped, so newline framing
//! stays unambiguous — the same discipline as the XML wire writer).
//!
//! Every malformed input is a typed [`JsonError`]; the parser faces
//! untrusted client bytes and must never panic.

use std::fmt;

/// Maximum nesting depth the parser accepts. Query documents are flat;
/// the cap exists so hostile input cannot exhaust the stack.
const MAX_DEPTH: usize = 32;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Serializes to a single-line JSON document.
    ///
    /// # Errors
    ///
    /// [`NonFiniteNumber`] if any number in the document is NaN or
    /// infinite. JSON has no spelling for those values; the old writer
    /// emitted `NaN`/`inf` via `format!` (an unparseable document on
    /// the wire), so serialization now refuses them with a typed error
    /// the RPC layer can turn into an honest error frame.
    pub fn to_json(&self) -> Result<String, NonFiniteNumber> {
        let mut out = String::new();
        self.write(&mut out)?;
        Ok(out)
    }

    fn write(&self, out: &mut String) -> Result<(), NonFiniteNumber> {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if !n.is_finite() {
                    return Err(NonFiniteNumber { value: *n });
                }
                out.push_str(&format!("{n}"));
            }
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out)?;
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(key, out);
                    out.push(':');
                    value.write(out)?;
                }
                out.push('}');
            }
        }
        Ok(())
    }

    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] for any syntax violation, over-deep
    /// nesting, or bytes after the document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value(0)?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(JsonError::at(parser.pos, "trailing bytes after document"));
        }
        Ok(value)
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A document that cannot be serialized: it contains a NaN or
/// infinite number, which JSON has no spelling for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteNumber {
    /// The offending value.
    pub value: f64,
}

impl fmt::Display for NonFiniteNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-finite number {} cannot be serialized as JSON",
            self.value
        )
    }
}

impl std::error::Error for NonFiniteNumber {}

/// Why a document failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub detail: String,
}

impl JsonError {
    fn at(at: usize, detail: impl Into<String>) -> Self {
        Self {
            at,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.detail)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), JsonError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(
                self.pos,
                format!("expected {:?}", expected as char),
            ))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected {text}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::at(self.pos, "nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(JsonError::at(
                self.pos,
                format!("unexpected byte {:?}", other as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of document")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(JsonError::at(self.pos, "expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(JsonError::at(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|b| std::str::from_utf8(b).ok())
                                .ok_or_else(|| JsonError::at(start, "short \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(start, "bad \\u escape"))?;
                            // Surrogates are rejected rather than paired:
                            // the wire protocol never emits them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError::at(start, "non-scalar \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::at(start, "unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(JsonError::at(self.pos, "raw control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let step = match std::str::from_utf8(rest) {
                        Ok(s) => s.chars().next().map_or(1, char::len_utf8),
                        Err(_) => 1,
                    };
                    let end = self.pos + step;
                    if let Ok(s) = std::str::from_utf8(&self.bytes[self.pos..end]) {
                        out.push_str(s);
                    }
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid number bytes"))?;
        let value: f64 = text
            .parse()
            .map_err(|_| JsonError::at(start, format!("bad number {text:?}")))?;
        if !value.is_finite() {
            return Err(JsonError::at(start, "non-finite number"));
        }
        Ok(Json::Num(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_documents() {
        let doc = Json::Obj(vec![
            ("token".into(), Json::Str("s3cr3t".into())),
            ("method".into(), Json::Str("location_of".into())),
            (
                "params".into(),
                Json::Obj(vec![("epc".into(), Json::Str("AA00".into()))]),
            ),
            ("n".into(), Json::Num(2.5)),
            ("flag".into(), Json::Bool(true)),
            (
                "list".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Str("x".into())]),
            ),
        ]);
        let text = doc.to_json().expect("finite document");
        assert!(!text.contains('\n'), "one frame per line: {text:?}");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn strings_with_control_characters_stay_single_line() {
        let doc = Json::Str("a\nb\r\tc\u{1}\"quoted\"\\slash".into());
        let text = doc.to_json().expect("finite document");
        assert!(text.chars().all(|c| !c.is_control()), "{text:?}");
        assert_eq!(Json::parse(&text).unwrap(), doc);
    }

    #[test]
    fn unicode_round_trips() {
        let doc = Json::Str("zoné-λ-📦".into());
        assert_eq!(Json::parse(&doc.to_json().expect("finite")).unwrap(), doc);
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "tru",
            "01x",
            "{\"a\":1}garbage",
            "nan",
            "\"\\q\"",
            "\"\\u12\"",
            "{\"a\" 1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        let err = Json::parse(&deep).expect_err("over-deep");
        assert!(err.to_string().contains("deep"));
        let ok = "[".repeat(10) + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn non_finite_numbers_are_typed_serialization_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = Json::Num(bad).to_json().expect_err("must refuse");
            assert!(err.to_string().contains("non-finite"), "{err}");
            // Nested occurrences are caught too, not just top level.
            let nested = Json::Obj(vec![(
                "rows".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Num(bad)]),
            )]);
            let err = nested.to_json().expect_err("nested must refuse");
            assert_eq!(err.value.to_bits(), bad.to_bits());
        }
        assert!(Json::Num(1.5e308).to_json().is_ok(), "finite extremes pass");
    }

    #[test]
    fn accessors_cover_the_rpc_shapes() {
        let doc = Json::parse(r#"{"ok":true,"zone":2,"name":"dock"}"#).unwrap();
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(doc.get("zone").and_then(Json::as_f64), Some(2.0));
        assert_eq!(doc.get("name").and_then(Json::as_str), Some("dock"));
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("x").is_none());
    }
}
