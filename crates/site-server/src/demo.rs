//! A self-contained demonstration run: synthetic portals, a live
//! server, real TCP, and a batch-equivalence check at the end.
//!
//! [`self_drive`] is what `rfid-site-server --self-drive` and the CI
//! smoke stage execute: build a synthetic site, boot the daemon on
//! ephemeral ports, dial in one portal process per dock door, drive
//! queries over the JSON surface, shut down gracefully, and verify the
//! drained tracker is **bit-identical** to a batch replay of the same
//! recorded reads. The synthetic world builders are public so the
//! benchmark harness can load the same topology at larger scale.

use crate::counters::IngestCounters;
use crate::portal::run_portal;
use crate::rpc::QueryClient;
use crate::server::{ServerConfig, SiteServer};
use rfid_gen2::Epc96;
use rfid_readerapi::WireEventAdapter;
use rfid_sim::ReadEvent;
use rfid_track::{LocationTracker, ObjectRegistry, Site};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

/// Raises the shutdown flag when dropped, so every early-error return
/// out of the demo scope unwinds the daemon and the portal threads
/// instead of deadlocking the scope join.
struct RaiseOnDrop<'a>(&'a AtomicBool);

impl Drop for RaiseOnDrop<'_> {
    fn drop(&mut self) {
        self.0.store(true, Ordering::SeqCst);
    }
}

/// A synthetic site: `portals` dock doors, each its own zone, and
/// `tags` registered cases with deterministic EPCs.
pub struct SyntheticWorld {
    /// The site model (zone per portal).
    pub site: Site,
    /// The tag registry (one object per tag).
    pub registry: ObjectRegistry,
    /// EPC of each tag, indexed by tag number.
    pub epcs: Vec<Epc96>,
    /// One wire adapter per portal.
    pub adapters: Vec<WireEventAdapter>,
}

/// Builds the deterministic demo topology.
#[must_use]
pub fn synthetic_world(portals: usize, tags: usize) -> SyntheticWorld {
    let mut site = Site::new();
    for p in 0..portals {
        let zone = site.add_zone(format!("zone-{p}"));
        site.assign_portal(p, 0, zone);
    }
    let mut registry = ObjectRegistry::new();
    let epcs: Vec<Epc96> = (0..tags)
        .map(|t| Epc96::from_u128(0xC0DE_0000 + t as u128))
        .collect();
    for (t, epc) in epcs.iter().enumerate() {
        let object = registry.register(format!("case-{t}"));
        registry.attach_tag(object, *epc);
    }
    let adapters: Vec<WireEventAdapter> = (0..portals)
        .map(|p| WireEventAdapter::new(p, epcs.iter().copied()))
        .collect();
    SyntheticWorld {
        site,
        registry,
        epcs,
        adapters,
    }
}

/// The recorded session set: at step `s`, tag `t` is read at portal
/// `(s + t) % portals` — every tag crosses every zone, so transitions
/// fire constantly. Times are globally unique and strictly increasing,
/// and each portal's subsequence is time-ordered, as a real recorded
/// session is.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn recorded_reads(portals: usize, tags: usize, steps: usize) -> Vec<ReadEvent> {
    let mut reads = Vec::with_capacity(steps * tags);
    for s in 0..steps {
        for t in 0..tags {
            reads.push(ReadEvent {
                time_s: (s * tags + t) as f64 * 1e-3,
                reader: (s + t) % portals.max(1),
                antenna: 0,
                tag: t,
                epc: Epc96::from_u128(0xC0DE_0000 + t as u128),
            });
        }
    }
    reads
}

/// What a demo run proved.
#[derive(Debug, Clone)]
pub struct DemoReport {
    /// Portals that connected, fed, and drained.
    pub portals: usize,
    /// Reads recorded and ingested.
    pub events: usize,
    /// Zone transitions the streaming tracker emitted.
    pub transitions: usize,
    /// Final server counters.
    pub counters: IngestCounters,
}

/// Runs the full demonstration; see the module docs for the plot.
///
/// # Errors
///
/// Returns a human-readable description of the first failure — socket
/// errors, a stalled ingest, or (the one that matters) a streamed
/// tracker state that differs from the batch replay.
pub fn self_drive(portals: usize, tags: usize, steps: usize) -> Result<DemoReport, String> {
    let portals = portals.max(1);
    let tags = tags.max(1);
    let steps = steps.max(1);
    let world = synthetic_world(portals, tags);
    let reads = recorded_reads(portals, tags, steps);
    let per_portal: Vec<Vec<ReadEvent>> = (0..portals)
        .map(|p| reads.iter().copied().filter(|r| r.reader == p).collect())
        .collect();

    let token = "self-drive-demo";
    let mut config = ServerConfig::new(token);
    // Exercise the sharded application plane even on small hosts: the
    // batch-equivalence assertion below gates its bit-replayability.
    config.shards = 4;
    let staleness_s = config.staleness_s;
    let server = SiteServer::new(&world.site, &world.registry, &world.adapters, config);
    let reader_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind reader port: {e}"))?;
    let query_listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind query port: {e}"))?;
    let reader_addr = reader_listener
        .local_addr()
        .map_err(|e| format!("reader addr: {e}"))?;
    let query_addr = query_listener
        .local_addr()
        .map_err(|e| format!("query addr: {e}"))?;
    let shutdown = AtomicBool::new(false);

    let report = thread::scope(|scope| -> Result<_, String> {
        let _guard = RaiseOnDrop(&shutdown);
        let daemon = scope.spawn(|| server.run(&reader_listener, &query_listener, &shutdown));
        let portal_threads: Vec<_> = (0..portals)
            .map(|p| {
                let chunk = &per_portal[p];
                scope.spawn(move || run_portal(reader_addr, p, chunk, Duration::ZERO))
            })
            .collect();

        let mut client =
            QueryClient::connect(query_addr, token).map_err(|e| format!("query connect: {e}"))?;
        let total = reads.len() as u64;
        let mut ingested = 0;
        for _ in 0..3000 {
            ingested = client
                .counter("events_ingested")
                .map_err(|e| format!("counters query: {e}"))?;
            if ingested == total {
                break;
            }
            thread::sleep(Duration::from_millis(5));
        }
        if ingested != total {
            return Err(format!("ingest stalled at {ingested}/{total} events"));
        }
        // Exercise the query surface on a few tags.
        for t in 0..tags.min(3) {
            let epc = world.epcs[t].to_string();
            client
                .location_of(&epc)
                .map_err(|e| format!("location_of({epc}): {e}"))?;
            let history = client
                .zone_history(&epc)
                .map_err(|e| format!("zone_history({epc}): {e}"))?;
            if history.is_empty() && steps > 1 {
                return Err(format!("tag {t} has an empty zone history"));
            }
        }
        client
            .shutdown()
            .map_err(|e| format!("shutdown rpc: {e}"))?;
        for (p, handle) in portal_threads.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(_)) => {}
                Ok(Err(e)) => return Err(format!("portal {p} failed: {e}")),
                Err(_) => return Err(format!("portal {p} thread panicked")),
            }
        }
        match daemon.join() {
            Ok(Ok(report)) => Ok(report),
            Ok(Err(e)) => Err(format!("server run failed: {e}")),
            Err(_) => Err("server thread panicked".to_owned()),
        }
    })?;

    // The acceptance bar: the live daemon's final state is the batch
    // pipeline's state, bit for bit.
    let mut batch = LocationTracker::new(staleness_s);
    batch
        .observe_all(world.site.observations(&world.registry, &reads))
        .map_err(|e| format!("batch replay: {e}"))?;
    if report.tracker != batch {
        return Err("streamed tracker state diverged from the batch replay".to_owned());
    }

    Ok(DemoReport {
        portals,
        events: reads.len(),
        transitions: report.transitions.len(),
        counters: report.counters,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_demo_proves_batch_equivalence_over_real_tcp() {
        let report = self_drive(2, 3, 10).expect("demo run");
        assert_eq!(report.events, 30);
        assert_eq!(report.counters.events_ingested, 30);
        assert_eq!(report.counters.events_released, 30);
        assert!(report.transitions > 0, "tags moved between zones");
        assert_eq!(
            report.counters.sessions_attached,
            report.counters.sessions_detached
        );
    }
}
