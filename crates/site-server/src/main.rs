//! The `rfid-site-server` binary: the site tracking daemon, plus the
//! `--self-drive` demonstration mode CI uses as a smoke test.

use rfid_site_server::{self_drive, synthetic_world, ServerConfig, SiteServer};
use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::AtomicBool;

struct Options {
    self_drive: bool,
    portals: usize,
    tags: usize,
    steps: usize,
    reader_port: u16,
    query_port: u16,
    token: String,
    staleness_s: f64,
    shards: usize,
    store_dir: Option<std::path::PathBuf>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            self_drive: false,
            portals: 2,
            tags: 4,
            steps: 25,
            reader_port: 0,
            query_port: 0,
            token: "change-me".to_owned(),
            staleness_s: 3600.0,
            shards: 0,
            store_dir: None,
        }
    }
}

fn usage() -> String {
    [
        "usage: rfid-site-server [--self-drive] [options]",
        "",
        "modes:",
        "  --self-drive          boot a server, drive synthetic portals and",
        "                        queries against it, verify the final state",
        "                        matches a batch replay, exit",
        "  (default)             run the daemon until a `shutdown` RPC",
        "",
        "options:",
        "  --portals N           dock-door portals / merge lanes (default 2)",
        "  --tags N              registered tags (default 4)",
        "  --steps N             demo steps, --self-drive only (default 25)",
        "  --reader-port P       reader listener port (default 0 = ephemeral)",
        "  --query-port P        query listener port (default 0 = ephemeral)",
        "  --token T             query auth token (default: change-me)",
        "  --staleness S         tracker staleness horizon in seconds",
        "  --shards K            parallel ingest application shards",
        "                        (default 0 = machine parallelism; any K",
        "                        produces the same state, bit for bit)",
        "  --store-dir PATH      durable zone-history store directory;",
        "                        prior contents are recovered and replayed",
        "                        into the tracker before serving (daemon",
        "                        mode only; default: in-memory)",
    ]
    .join("\n")
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut options = Options::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--self-drive" => options.self_drive = true,
            "--portals" => {
                options.portals = value("--portals")?
                    .parse()
                    .map_err(|e| format!("--portals: {e}"))?;
            }
            "--tags" => {
                options.tags = value("--tags")?
                    .parse()
                    .map_err(|e| format!("--tags: {e}"))?;
            }
            "--steps" => {
                options.steps = value("--steps")?
                    .parse()
                    .map_err(|e| format!("--steps: {e}"))?;
            }
            "--reader-port" => {
                options.reader_port = value("--reader-port")?
                    .parse()
                    .map_err(|e| format!("--reader-port: {e}"))?;
            }
            "--query-port" => {
                options.query_port = value("--query-port")?
                    .parse()
                    .map_err(|e| format!("--query-port: {e}"))?;
            }
            "--token" => options.token = value("--token")?.clone(),
            "--staleness" => {
                options.staleness_s = value("--staleness")?
                    .parse()
                    .map_err(|e| format!("--staleness: {e}"))?;
            }
            "--shards" => {
                options.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
            }
            "--store-dir" => {
                options.store_dir = Some(std::path::PathBuf::from(value("--store-dir")?));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag {other}\n\n{}", usage())),
        }
    }
    Ok(options)
}

fn run_self_drive(options: &Options) -> Result<(), String> {
    println!(
        "self-drive: {} portals x {} tags x {} steps over live TCP",
        options.portals, options.tags, options.steps
    );
    let report = self_drive(options.portals, options.tags, options.steps)?;
    println!(
        "site-server: {} portal sessions drained, {} events, {} transitions",
        report.portals, report.events, report.transitions
    );
    println!("counters: {}", report.counters);
    println!("final zone history matches batch replay");
    println!("graceful shutdown complete");
    Ok(())
}

fn run_daemon(options: &Options) -> Result<(), String> {
    let world = synthetic_world(options.portals, options.tags);
    let mut config = ServerConfig::new(&options.token);
    config.staleness_s = options.staleness_s;
    config.shards = options.shards;
    config.store_dir = options.store_dir.clone();
    if let Some(dir) = &config.store_dir {
        println!("durable store: {}", dir.display());
    }
    let server = SiteServer::new(&world.site, &world.registry, &world.adapters, config);
    let reader_listener = TcpListener::bind(("127.0.0.1", options.reader_port))
        .map_err(|e| format!("bind reader port: {e}"))?;
    let query_listener = TcpListener::bind(("127.0.0.1", options.query_port))
        .map_err(|e| format!("bind query port: {e}"))?;
    let reader_addr = reader_listener
        .local_addr()
        .map_err(|e| format!("reader addr: {e}"))?;
    let query_addr = query_listener
        .local_addr()
        .map_err(|e| format!("query addr: {e}"))?;
    println!("reader port: {reader_addr}");
    println!("query port: {query_addr}");
    println!(
        "serving {} portal lanes, {} registered tags; send a `shutdown` RPC to drain",
        options.portals, options.tags
    );
    let shutdown = AtomicBool::new(false);
    let report = server
        .run(&reader_listener, &query_listener, &shutdown)
        .map_err(|e| format!("server run failed: {e}"))?;
    println!("counters: {}", report.counters);
    println!("graceful shutdown complete");
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    let result = if options.self_drive {
        run_self_drive(&options)
    } else {
        run_daemon(&options)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("rfid-site-server: {message}");
            ExitCode::FAILURE
        }
    }
}
