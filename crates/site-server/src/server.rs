//! The site-server daemon: accept loops, session threads, graceful
//! shutdown.
//!
//! One [`SiteServer`] run owns two listeners. Portals dial the reader
//! port and serve the XML wire protocol; each accepted connection gets
//! a scoped thread running [`crate::session::drive_session`] into the
//! shared ingest plane. Clients dial the query port and speak the
//! line-delimited JSON RPC from [`crate::rpc`]. A `shutdown` RPC (or
//! an external raise of the shutdown flag) stops the accept loops,
//! lets every session take one final drain, joins all threads, and
//! flushes the merge — so the returned [`ServerReport`] holds exactly
//! the state a batch replay of the same recorded sessions produces.

use crate::ingest::{ServerReport, SharedIngest};
use crate::rpc::{self, Disposition};
use crate::session::{drive_session, SessionEnd};
use rfid_readerapi::{ReaderClient, TcpTransport, WireEventAdapter};
use rfid_track::{ObjectRegistry, Site, StoreConfig, ZoneHistoryStore};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;
use std::time::Duration;

/// Tunables for one server run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Shared secret every query request must carry.
    pub auth_token: String,
    /// Tracker staleness horizon (seconds of silence before
    /// `location_of` stops answering for an object).
    pub staleness_s: f64,
    /// How long a session thread sleeps when a drain comes back empty.
    pub poll: Duration,
    /// Per-exchange deadline on reader transports.
    pub session_deadline: Duration,
    /// Parallel application shards in the ingest plane; `0` selects
    /// the machine's available parallelism. Any value yields the same
    /// final report, bit for bit.
    pub shards: usize,
    /// Directory for the durable zone-history store. `None` keeps the
    /// run in-memory; `Some` opens (or recovers) a
    /// [`rfid_track::ZoneHistoryStore`] there, appends every released
    /// observation, and replays any prior contents into the tracker
    /// before accepting connections.
    pub store_dir: Option<std::path::PathBuf>,
}

impl ServerConfig {
    /// A config with the given auth token and deployment defaults.
    #[must_use]
    pub fn new(auth_token: &str) -> Self {
        Self {
            auth_token: auth_token.to_owned(),
            staleness_s: 3600.0,
            poll: Duration::from_millis(2),
            session_deadline: Duration::from_secs(5),
            shards: 0,
            store_dir: None,
        }
    }
}

/// The long-running site tracking daemon. Borrows the site model, the
/// tag registry, and one [`WireEventAdapter`] per portal for the
/// duration of a run.
pub struct SiteServer<'a> {
    site: &'a Site,
    registry: &'a ObjectRegistry,
    adapters: &'a [WireEventAdapter],
    config: ServerConfig,
}

impl<'a> SiteServer<'a> {
    /// Builds a server over a site model. `adapters[r]` validates and
    /// converts the wire records of portal `r`.
    #[must_use]
    pub fn new(
        site: &'a Site,
        registry: &'a ObjectRegistry,
        adapters: &'a [WireEventAdapter],
        config: ServerConfig,
    ) -> Self {
        Self {
            site,
            registry,
            adapters,
            config,
        }
    }

    /// Runs the daemon until shutdown, then returns the drained state.
    ///
    /// Blocks the calling thread. Shutdown triggers: the `shutdown`
    /// RPC, or an external `shutdown.store(true)`. On shutdown the
    /// accept loops close, every live session takes a final drain and
    /// detaches, all threads join, and the merge flushes through the
    /// streaming chain.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures. Per-connection
    /// failures never abort the run; they are counted in the report.
    pub fn run(
        &self,
        reader_listener: &TcpListener,
        query_listener: &TcpListener,
        shutdown: &AtomicBool,
    ) -> io::Result<ServerReport> {
        reader_listener.set_nonblocking(true)?;
        query_listener.set_nonblocking(true)?;
        let ingest = match &self.config.store_dir {
            Some(dir) => {
                let store = ZoneHistoryStore::open(dir, StoreConfig::default())
                    .map_err(|err| io::Error::other(err.to_string()))?;
                SharedIngest::with_store(
                    self.site,
                    self.registry,
                    self.adapters,
                    self.config.staleness_s,
                    self.config.shards,
                    store,
                )
                .map_err(|err| io::Error::other(err.to_string()))?
            }
            None => SharedIngest::new(
                self.site,
                self.registry,
                self.adapters,
                self.config.staleness_s,
                self.config.shards,
            ),
        };
        thread::scope(|scope| {
            while !shutdown.load(Ordering::SeqCst) {
                let mut idle = true;
                match reader_listener.accept() {
                    Ok((stream, _)) => {
                        idle = false;
                        let ingest = &ingest;
                        scope.spawn(move || self.reader_session(stream, ingest, shutdown));
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {
                        // Transient accept failure: back off, keep serving.
                    }
                }
                match query_listener.accept() {
                    Ok((stream, _)) => {
                        idle = false;
                        let ingest = &ingest;
                        scope.spawn(move || self.query_session(stream, ingest, shutdown));
                    }
                    Err(err) if err.kind() == io::ErrorKind::WouldBlock => {}
                    Err(_) => {}
                }
                if idle {
                    thread::sleep(Duration::from_millis(2));
                }
            }
            // Scope exit joins every session and query thread: each
            // session has taken its final drain and detached.
        });
        ingest.finish();
        Ok(ingest.into_report())
    }

    fn reader_session(&self, stream: TcpStream, ingest: &SharedIngest<'_>, shutdown: &AtomicBool) {
        match TcpTransport::from_accepted(stream, Some(self.config.session_deadline)) {
            Ok(transport) => {
                let mut client = ReaderClient::new(transport);
                let _ = drive_session(
                    &mut client,
                    ingest,
                    shutdown,
                    self.config.poll,
                    SessionEnd::OnShutdown,
                );
            }
            Err(_) => ingest.record_session_error(),
        }
    }

    fn query_session(&self, stream: TcpStream, ingest: &SharedIngest<'_>, shutdown: &AtomicBool) {
        // Short read timeout so the handler notices shutdown promptly
        // even on an idle connection.
        if stream
            .set_read_timeout(Some(Duration::from_millis(100)))
            .is_err()
            || stream.set_nodelay(true).is_err()
        {
            return;
        }
        let Ok(write_half) = stream.try_clone() else {
            return;
        };
        let mut writer = write_half;
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        loop {
            // `read_line` may return WouldBlock mid-line; the partial
            // bytes stay in `line`, so retrying continues the frame.
            match reader.read_line(&mut line) {
                Ok(0) => return, // client hung up
                Ok(_) => {
                    let request = line.trim_end_matches(['\r', '\n']).to_owned();
                    line.clear();
                    if request.is_empty() {
                        continue;
                    }
                    let (response, disposition) =
                        rpc::dispatch(&request, ingest, &self.config.auth_token);
                    let mut frame = response;
                    frame.push('\n');
                    if writer.write_all(frame.as_bytes()).is_err() {
                        return;
                    }
                    match disposition {
                        Disposition::Continue => {}
                        Disposition::Close => return,
                        Disposition::Shutdown => {
                            shutdown.store(true, Ordering::SeqCst);
                            return;
                        }
                    }
                }
                Err(err)
                    if matches!(
                        err.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(err) if err.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::portal::run_portal;
    use crate::rpc::QueryClient;
    use rfid_gen2::Epc96;
    use rfid_sim::ReadEvent;

    /// Raises the shutdown flag when dropped, so a failing assertion
    /// inside the test scope unwinds the daemon instead of deadlocking
    /// the scope join.
    struct RaiseOnDrop<'a>(&'a AtomicBool);

    impl Drop for RaiseOnDrop<'_> {
        fn drop(&mut self) {
            self.0.store(true, Ordering::SeqCst);
        }
    }

    #[test]
    fn two_portals_end_to_end_with_queries_and_shutdown() {
        let mut site = Site::new();
        let dock = site.add_zone("dock");
        let aisle = site.add_zone("aisle");
        site.assign_portal(0, 0, dock);
        site.assign_portal(1, 0, aisle);
        let mut registry = ObjectRegistry::new();
        let epc = Epc96::from_u128(0xBEEF);
        let case = registry.register("case");
        registry.attach_tag(case, epc);
        let adapters: Vec<_> = (0..2).map(|r| WireEventAdapter::new(r, [epc])).collect();
        let mut config = ServerConfig::new("hunter2");
        config.shards = 3;
        let server = SiteServer::new(&site, &registry, &adapters, config);
        let reader_listener = TcpListener::bind("127.0.0.1:0").expect("bind reader");
        let query_listener = TcpListener::bind("127.0.0.1:0").expect("bind query");
        let reader_addr = reader_listener.local_addr().expect("addr");
        let query_addr = query_listener.local_addr().expect("addr");
        let shutdown = AtomicBool::new(false);
        // The case crosses dock (t=0,1) then aisle (t=2,3).
        let read = |time_s: f64, reader: usize| ReadEvent {
            time_s,
            reader,
            antenna: 0,
            tag: 0,
            epc,
        };
        let dock_reads = vec![read(0.0, 0), read(1.0, 0)];
        let aisle_reads = vec![read(2.0, 1), read(3.0, 1)];

        let report = thread::scope(|scope| {
            let _guard = RaiseOnDrop(&shutdown);
            let daemon = scope.spawn(|| server.run(&reader_listener, &query_listener, &shutdown));
            let dock_portal =
                scope.spawn(|| run_portal(reader_addr, 0, &dock_reads, Duration::ZERO));
            let aisle_portal =
                scope.spawn(|| run_portal(reader_addr, 1, &aisle_reads, Duration::ZERO));
            let mut client = QueryClient::connect(query_addr, "hunter2").expect("connect");
            // Wait until everything both portals fed has been ingested.
            let mut ingested = 0;
            for _ in 0..500 {
                ingested = client.counter("events_ingested").expect("counters");
                if ingested == 4 {
                    break;
                }
                thread::sleep(Duration::from_millis(10));
            }
            assert_eq!(ingested, 4, "both portal feeds fully ingested");
            // Watermarks: dock lane 1.0, aisle lane 3.0 → floor 1.0, so
            // the t=0 dock read is released and answerable live.
            let location = client.location_of(&epc.to_string()).expect("query");
            assert_eq!(location, Some((0, "dock".to_owned())));
            // Wrong token: one error response, then the server closes.
            let mut intruder = QueryClient::connect(query_addr, "wrong").expect("connect");
            assert!(matches!(
                intruder.location_of(&epc.to_string()),
                Err(crate::rpc::RpcError::Denied(_))
            ));
            client.shutdown().expect("shutdown rpc");
            dock_portal
                .join()
                .expect("portal thread")
                .expect("portal io");
            aisle_portal
                .join()
                .expect("portal thread")
                .expect("portal io");
            daemon.join().expect("daemon thread")
        })
        .expect("server run");
        let reads: Vec<ReadEvent> = dock_reads
            .iter()
            .chain(aisle_reads.iter())
            .copied()
            .collect();

        assert_eq!(report.counters.events_ingested, 4);
        assert_eq!(
            report.counters.events_released, 4,
            "shutdown flushed the merge"
        );
        assert_eq!(report.counters.sessions_attached, 2);
        assert_eq!(report.counters.sessions_detached, 2);
        assert_eq!(report.counters.auth_failures, 1);
        assert_eq!(report.counters.session_errors, 0);
        // The drained tracker equals a batch replay of the same reads.
        let mut batch = rfid_track::LocationTracker::new(3600.0);
        batch
            .observe_all(site.observations(&registry, &reads))
            .expect("finite times");
        assert_eq!(report.tracker, batch);
    }
}
