//! A portal process: a reader emulator that dials *in* to the site
//! server and serves the XML reader protocol over that connection.
//!
//! Real dock-door readers sit behind NAT'd plant networks, so the
//! deployment model is reversed from the test-bench one: the portal
//! initiates the TCP connection, then acts as the protocol *server*
//! on it (the site server drives `identify`/`start_buffered`/
//! `get_tags` as the client). A feeder thread plays the recorded reads
//! into the emulator's buffer while the serve loop answers drains, so
//! ingestion and playback overlap exactly as they would on hardware.

use rfid_readerapi::{serve_shared, ReaderEmulator, Request};
use rfid_sim::ReadEvent;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// Runs one portal session: connect to `addr`, feed `reads` (already
/// filtered to this reader) into the emulator, and serve the wire
/// protocol until the server hangs up. Returns the number of reads fed.
///
/// The emulator starts in buffered mode *before* the listener can
/// drain, so no read can race past a mode switch and be dropped.
///
/// # Errors
///
/// Propagates connect/serve I/O failures. A clean hang-up by the
/// server (graceful shutdown) is `Ok`.
pub fn run_portal(
    addr: SocketAddr,
    reader_id: usize,
    reads: &[ReadEvent],
    pace: Duration,
) -> io::Result<usize> {
    let stream = TcpStream::connect(addr)?;
    let mut seed = ReaderEmulator::with_reader_id(reader_id);
    let _ = seed.handle(&Request::StartBuffered);
    let emulator = Mutex::new(seed);
    thread::scope(|scope| {
        let feeder = scope.spawn(|| {
            for read in reads {
                {
                    let mut guard = emulator
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    guard.feed_sim_read(read);
                }
                if !pace.is_zero() {
                    thread::sleep(pace);
                }
            }
            reads.len()
        });
        let served = serve_shared(stream, &emulator);
        let fed = feeder.join().unwrap_or(0);
        served.map(|()| fed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::Epc96;
    use rfid_readerapi::{ReaderClient, TcpTransport};
    use std::net::TcpListener;

    #[test]
    fn portal_dials_in_and_serves_until_hangup() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reads: Vec<ReadEvent> = (0..5)
            .map(|i| ReadEvent {
                time_s: f64::from(i),
                reader: 3,
                antenna: 0,
                tag: 0,
                epc: Epc96::from_u128(0xF00D),
            })
            .collect();
        thread::scope(|scope| {
            let portal = scope.spawn(|| run_portal(addr, 3, &reads, Duration::ZERO));
            let (stream, _) = listener.accept().expect("accept");
            let transport =
                TcpTransport::from_accepted(stream, Some(Duration::from_secs(5))).expect("wrap");
            let mut client = ReaderClient::new(transport);
            assert_eq!(client.identify().expect("identify"), 3);
            let mut drained = 0;
            while drained < reads.len() {
                drained += client.get_tags().expect("drain").len();
            }
            assert_eq!(drained, 5);
            drop(client); // hang up: the portal must exit cleanly
            let fed = portal.join().expect("portal thread").expect("portal io");
            assert_eq!(fed, 5);
        });
    }
}
