//! # rfid-site-server
//!
//! The long-running site tracking daemon for the DSN 2007 RFID
//! reliability reproduction: many concurrent reader sessions, one
//! consistent location picture.
//!
//! Portals (dock-door readers, emulated by
//! [`rfid_readerapi::ReaderEmulator`]) dial in over TCP and serve the
//! XML reader wire protocol; the server drives each session as a
//! protocol client — `identify`, `start_buffered`, periodic `get_tags`
//! drains — and funnels every record through the hardened streaming
//! chain: `WireEventAdapter` (validation) →
//! [`rfid_track::stream::SessionMerge`] (watermarked multi-session
//! ordering) → `ObservationStream` → `LocationTracker`. A
//! line-delimited JSON query surface (`location_of`, `zone_history`,
//! `counters`, `shutdown`) answers from the same state under the same
//! lock, guarded by a shared auth token.
//!
//! The defining guarantee, inherited from the streaming data plane
//! (DESIGN.md §12–13): after a graceful shutdown drain, the daemon's
//! tracker state is **bit-identical** to a batch replay of the same
//! recorded sessions. Reliability over unreliable readers is the
//! paper's theme; this crate is where all of its techniques —
//! typed wire errors, deadlines, deterministic retry, watermarked
//! reordering — compose into a deployable service.
//!
//! Run the proof yourself:
//!
//! ```text
//! rfid-site-server --self-drive --portals 4 --tags 8 --steps 50
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod demo;
pub mod ingest;
pub mod json;
pub mod portal;
pub mod rpc;
pub mod server;
pub mod session;

pub use counters::IngestCounters;
pub use demo::{recorded_reads, self_drive, synthetic_world, DemoReport, SyntheticWorld};
pub use ingest::{IngestOutcome, ServerReport, SharedIngest};
pub use json::{Json, JsonError, NonFiniteNumber};
pub use portal::run_portal;
pub use rpc::{HistoryRow, QueryClient, RpcError};
pub use server::{ServerConfig, SiteServer};
pub use session::{drive_session, SessionEnd, SessionOutcome};
