//! The query/control surface: line-delimited JSON over TCP.
//!
//! One request per line, one response per line. Every request carries
//! the shared auth token:
//!
//! ```json
//! {"token":"s3cr3t","method":"location_of","params":{"epc":"00..AA"}}
//! ```
//!
//! Responses are `{"ok":true,"result":…}` or `{"ok":false,"error":"…"}`.
//! Methods: `location_of`, `location_at`, `zone_history`, `counters`,
//! `shutdown`. A request with a bad token gets one error response and
//! the connection is closed — the error text does not reveal whether
//! the method or the EPC was otherwise valid.
//!
//! [`QueryClient`] is the matching typed client used by the demo, the
//! benchmarks, and the integration tests.

use crate::ingest::SharedIngest;
use crate::json::Json;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What the server should do after answering one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Keep the connection open for the next request.
    Continue,
    /// Close the connection (auth failure).
    Close,
    /// Begin graceful shutdown (drain sessions, then exit).
    Shutdown,
}

/// Serializes a response document, downgrading an unserializable one
/// (a non-finite number, now a typed [`crate::json::NonFiniteNumber`]
/// error) to an honest error frame instead of putting `NaN` on the
/// wire. The fallback frame is all-literal, so the final `unwrap_or`
/// string is statically parseable.
fn frame(doc: &Json) -> String {
    doc.to_json().unwrap_or_else(|err| {
        Json::Obj(vec![
            ("ok".into(), Json::Bool(false)),
            (
                "error".into(),
                Json::Str(format!("unserializable response: {err}")),
            ),
        ])
        .to_json()
        .unwrap_or_else(|_| r#"{"ok":false,"error":"unserializable response"}"#.to_owned())
    })
}

fn ok(result: Json) -> String {
    frame(&Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ]))
}

fn fail(error: impl Into<String>) -> String {
    frame(&Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(error.into())),
    ]))
}

#[allow(clippy::cast_precision_loss)]
fn num(value: u64) -> Json {
    Json::Num(value as f64)
}

/// Answers one request line. Every failure path is a JSON error
/// response — hostile bytes can never panic the daemon.
pub(crate) fn dispatch(
    line: &str,
    ingest: &SharedIngest<'_>,
    token: &str,
) -> (String, Disposition) {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(err) => {
            ingest.record_rpc_error();
            return (
                fail(format!("malformed request: {err}")),
                Disposition::Continue,
            );
        }
    };
    // Constant shape: token first, before the request is looked at.
    if doc.get("token").and_then(Json::as_str) != Some(token) {
        ingest.record_auth_failure();
        return (fail("auth token rejected"), Disposition::Close);
    }
    let Some(method) = doc.get("method").and_then(Json::as_str) else {
        ingest.record_rpc_error();
        return (fail("missing method"), Disposition::Continue);
    };
    let epc = |doc: &Json| -> Result<String, String> {
        doc.get("params")
            .and_then(|p| p.get("epc"))
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| "missing params.epc".to_owned())
    };
    match method {
        "location_of" => match epc(&doc).and_then(|epc| ingest.location_of(&epc)) {
            Ok(Some((zone, name))) => {
                ingest.record_query();
                let result = Json::Obj(vec![
                    ("zone".into(), num(zone as u64)),
                    ("name".into(), Json::Str(name)),
                ]);
                (ok(result), Disposition::Continue)
            }
            Ok(None) => {
                ingest.record_query();
                (ok(Json::Null), Disposition::Continue)
            }
            Err(reason) => {
                ingest.record_rpc_error();
                (fail(reason), Disposition::Continue)
            }
        },
        "location_at" => {
            let time_s = doc
                .get("params")
                .and_then(|p| p.get("time_s"))
                .and_then(Json::as_f64)
                .ok_or_else(|| "missing params.time_s".to_owned());
            match epc(&doc)
                .and_then(|epc| time_s.map(|t| (epc, t)))
                .and_then(|(epc, t)| ingest.location_at(&epc, t))
            {
                Ok(Some((zone, name))) => {
                    ingest.record_query();
                    let result = Json::Obj(vec![
                        ("zone".into(), num(zone as u64)),
                        ("name".into(), Json::Str(name)),
                    ]);
                    (ok(result), Disposition::Continue)
                }
                Ok(None) => {
                    ingest.record_query();
                    (ok(Json::Null), Disposition::Continue)
                }
                Err(reason) => {
                    ingest.record_rpc_error();
                    (fail(reason), Disposition::Continue)
                }
            }
        }
        "zone_history" => match epc(&doc).and_then(|epc| ingest.zone_history(&epc)) {
            Ok(history) => {
                ingest.record_query();
                let rows = history
                    .into_iter()
                    .map(|(zone, name, time_s, inferred)| {
                        Json::Obj(vec![
                            ("zone".into(), num(zone as u64)),
                            ("name".into(), Json::Str(name)),
                            ("time_s".into(), Json::Num(time_s)),
                            ("inferred".into(), Json::Bool(inferred)),
                        ])
                    })
                    .collect();
                (ok(Json::Arr(rows)), Disposition::Continue)
            }
            Err(reason) => {
                ingest.record_rpc_error();
                (fail(reason), Disposition::Continue)
            }
        },
        "counters" => {
            ingest.record_query();
            // Aggregate rows plus per-shard `shard<N>_<name>` rows.
            let rows = ingest
                .counter_rows()
                .into_iter()
                .map(|(name, value)| (name, num(value)))
                .collect();
            (ok(Json::Obj(rows)), Disposition::Continue)
        }
        "shutdown" => {
            ingest.record_query();
            (ok(Json::Str("draining".into())), Disposition::Shutdown)
        }
        other => {
            ingest.record_rpc_error();
            (
                fail(format!("unknown method {other:?}")),
                Disposition::Continue,
            )
        }
    }
}

/// Why a query round-trip failed.
#[derive(Debug)]
pub enum RpcError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered, but not with the expected shape.
    Protocol(String),
    /// The server answered `{"ok":false,…}`.
    Denied(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(err) => write!(f, "query I/O failed: {err}"),
            RpcError::Protocol(detail) => write!(f, "query protocol violation: {detail}"),
            RpcError::Denied(reason) => write!(f, "query denied: {reason}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<io::Error> for RpcError {
    fn from(err: io::Error) -> Self {
        RpcError::Io(err)
    }
}

/// One row of a `zone_history` response.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Zone index.
    pub zone: usize,
    /// Zone display name.
    pub name: String,
    /// Observation time.
    pub time_s: f64,
    /// Whether the observation was inferred rather than read.
    pub inferred: bool,
}

/// A typed client for the query surface.
pub struct QueryClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    token: String,
}

impl QueryClient {
    /// Connects and remembers the auth token for every request.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: SocketAddr, token: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            token: token.to_owned(),
        })
    }

    fn call(&mut self, method: &str, params: Vec<(String, Json)>) -> Result<Json, RpcError> {
        let request = Json::Obj(vec![
            ("token".into(), Json::Str(self.token.clone())),
            ("method".into(), Json::Str(method.into())),
            ("params".into(), Json::Obj(params)),
        ]);
        let mut line = request
            .to_json()
            .map_err(|err| RpcError::Protocol(format!("unserializable request: {err}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(RpcError::Protocol("server closed the connection".into()));
        }
        let doc = Json::parse(response.trim_end_matches(['\r', '\n']))
            .map_err(|err| RpcError::Protocol(format!("unparseable response: {err}")))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc.get("result").cloned().unwrap_or(Json::Null)),
            Some(false) => Err(RpcError::Denied(
                doc.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_owned(),
            )),
            None => Err(RpcError::Protocol("response missing ok field".into())),
        }
    }

    /// Where is this EPC now? `None` means unseen or stale.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn location_of(&mut self, epc: &str) -> Result<Option<(usize, String)>, RpcError> {
        let result = self.call(
            "location_of",
            vec![("epc".into(), Json::Str(epc.to_owned()))],
        )?;
        match result {
            Json::Null => Ok(None),
            other => {
                let zone = other
                    .get("zone")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| RpcError::Protocol("location without zone".into()))?;
                let name = other
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| RpcError::Protocol("location without name".into()))?;
                Ok(Some((zone as usize, name.to_owned())))
            }
        }
    }

    /// Where was this EPC at historical time `time_s`? `None` means
    /// unseen or stale as of that instant.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors,
    /// and rejects a non-finite `time_s` client-side (the wire format
    /// cannot carry it).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn location_at(
        &mut self,
        epc: &str,
        time_s: f64,
    ) -> Result<Option<(usize, String)>, RpcError> {
        if !time_s.is_finite() {
            return Err(RpcError::Protocol(format!(
                "non-finite query time {time_s}"
            )));
        }
        let result = self.call(
            "location_at",
            vec![
                ("epc".into(), Json::Str(epc.to_owned())),
                ("time_s".into(), Json::Num(time_s)),
            ],
        )?;
        match result {
            Json::Null => Ok(None),
            other => {
                let zone = other
                    .get("zone")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| RpcError::Protocol("location without zone".into()))?;
                let name = other
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| RpcError::Protocol("location without name".into()))?;
                Ok(Some((zone as usize, name.to_owned())))
            }
        }
    }

    /// Full zone history of an EPC, oldest first.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn zone_history(&mut self, epc: &str) -> Result<Vec<HistoryRow>, RpcError> {
        let result = self.call(
            "zone_history",
            vec![("epc".into(), Json::Str(epc.to_owned()))],
        )?;
        let Json::Arr(rows) = result else {
            return Err(RpcError::Protocol("zone_history result not a list".into()));
        };
        rows.into_iter()
            .map(|row| {
                Ok(HistoryRow {
                    zone: row
                        .get("zone")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| RpcError::Protocol("history row without zone".into()))?
                        as usize,
                    name: row
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                    time_s: row
                        .get("time_s")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| RpcError::Protocol("history row without time".into()))?,
                    inferred: row.get("inferred").and_then(Json::as_bool).unwrap_or(false),
                })
            })
            .collect()
    }

    /// Counter snapshot as `(name, value)` rows.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn counters(&mut self) -> Result<Vec<(String, u64)>, RpcError> {
        let result = self.call("counters", Vec::new())?;
        let Json::Obj(pairs) = result else {
            return Err(RpcError::Protocol("counters result not an object".into()));
        };
        Ok(pairs
            .into_iter()
            .map(|(name, value)| (name, value.as_f64().unwrap_or(0.0) as u64))
            .collect())
    }

    /// One named counter, 0 if the server does not report it.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    pub fn counter(&mut self, name: &str) -> Result<u64, RpcError> {
        Ok(self
            .counters()?
            .into_iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| v))
    }

    /// Asks the server to drain and exit gracefully.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    pub fn shutdown(&mut self) -> Result<(), RpcError> {
        self.call("shutdown", Vec::new()).map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::Epc96;
    use rfid_readerapi::WireEventAdapter;
    use rfid_track::{ObjectRegistry, Site};

    fn fixtures() -> (Site, ObjectRegistry, Vec<WireEventAdapter>, Epc96) {
        let mut site = Site::new();
        let dock = site.add_zone("dock");
        site.assign_portal(0, 0, dock);
        let mut registry = ObjectRegistry::new();
        let epc = Epc96::from_u128(0xFEED);
        let case = registry.register("case");
        registry.attach_tag(case, epc);
        let adapters = vec![WireEventAdapter::new(0, [epc])];
        (site, registry, adapters, epc)
    }

    #[test]
    fn location_at_dispatch_answers_queries_and_types_bad_params() {
        let (site, registry, adapters, epc) = fixtures();
        let ingest = SharedIngest::new(&site, &registry, &adapters, 3600.0, 1);
        let request =
            |params: &str| format!(r#"{{"token":"t","method":"location_at","params":{params}}}"#);

        // Unseen tag at any finite time: a null result, connection open.
        let (response, disposition) = dispatch(
            &request(&format!(r#"{{"epc":"{epc}","time_s":1.0}}"#)),
            &ingest,
            "t",
        );
        assert_eq!(response, r#"{"ok":true,"result":null}"#);
        assert_eq!(disposition, Disposition::Continue);

        // Missing time_s: a typed error, connection open.
        let (response, disposition) =
            dispatch(&request(&format!(r#"{{"epc":"{epc}"}}"#)), &ingest, "t");
        assert!(response.contains(r#""ok":false"#), "got: {response}");
        assert!(response.contains("time_s"), "got: {response}");
        assert_eq!(disposition, Disposition::Continue);

        // A non-finite literal in time_s dies in the JSON parser: the
        // daemon answers a malformed-request error instead of letting
        // NaN reach the tracker (the old panic path).
        let (response, disposition) = dispatch(
            &request(&format!(r#"{{"epc":"{epc}","time_s":1e999}}"#)),
            &ingest,
            "t",
        );
        assert!(response.contains(r#""ok":false"#), "got: {response}");
        assert_eq!(disposition, Disposition::Continue);
    }

    #[test]
    fn a_non_finite_response_document_downgrades_to_an_error_frame() {
        // If a handler ever produced a NaN (the json writer now refuses
        // to serialize it), the frame falls back to a parseable typed
        // error instead of emitting invalid JSON.
        let doc = Json::Obj(vec![
            ("ok".into(), Json::Bool(true)),
            ("result".into(), Json::Num(f64::NAN)),
        ]);
        let framed = frame(&doc);
        let parsed = Json::parse(&framed).expect("fallback frame parses");
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        let error = parsed
            .get("error")
            .and_then(Json::as_str)
            .expect("error text");
        assert!(error.contains("unserializable response"), "got: {error}");
    }
}
