//! The query/control surface: line-delimited JSON over TCP.
//!
//! One request per line, one response per line. Every request carries
//! the shared auth token:
//!
//! ```json
//! {"token":"s3cr3t","method":"location_of","params":{"epc":"00..AA"}}
//! ```
//!
//! Responses are `{"ok":true,"result":…}` or `{"ok":false,"error":"…"}`.
//! Methods: `location_of`, `zone_history`, `counters`, `shutdown`. A
//! request with a bad token gets one error response and the connection
//! is closed — the error text does not reveal whether the method or the
//! EPC was otherwise valid.
//!
//! [`QueryClient`] is the matching typed client used by the demo, the
//! benchmarks, and the integration tests.

use crate::ingest::SharedIngest;
use crate::json::Json;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// What the server should do after answering one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    /// Keep the connection open for the next request.
    Continue,
    /// Close the connection (auth failure).
    Close,
    /// Begin graceful shutdown (drain sessions, then exit).
    Shutdown,
}

fn ok(result: Json) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(true)),
        ("result".into(), result),
    ])
    .to_json()
}

fn fail(error: impl Into<String>) -> String {
    Json::Obj(vec![
        ("ok".into(), Json::Bool(false)),
        ("error".into(), Json::Str(error.into())),
    ])
    .to_json()
}

#[allow(clippy::cast_precision_loss)]
fn num(value: u64) -> Json {
    Json::Num(value as f64)
}

/// Answers one request line. Every failure path is a JSON error
/// response — hostile bytes can never panic the daemon.
pub(crate) fn dispatch(
    line: &str,
    ingest: &SharedIngest<'_>,
    token: &str,
) -> (String, Disposition) {
    let doc = match Json::parse(line) {
        Ok(doc) => doc,
        Err(err) => {
            ingest.record_rpc_error();
            return (
                fail(format!("malformed request: {err}")),
                Disposition::Continue,
            );
        }
    };
    // Constant shape: token first, before the request is looked at.
    if doc.get("token").and_then(Json::as_str) != Some(token) {
        ingest.record_auth_failure();
        return (fail("auth token rejected"), Disposition::Close);
    }
    let Some(method) = doc.get("method").and_then(Json::as_str) else {
        ingest.record_rpc_error();
        return (fail("missing method"), Disposition::Continue);
    };
    let epc = |doc: &Json| -> Result<String, String> {
        doc.get("params")
            .and_then(|p| p.get("epc"))
            .and_then(Json::as_str)
            .map(str::to_owned)
            .ok_or_else(|| "missing params.epc".to_owned())
    };
    match method {
        "location_of" => match epc(&doc).and_then(|epc| ingest.location_of(&epc)) {
            Ok(Some((zone, name))) => {
                ingest.record_query();
                let result = Json::Obj(vec![
                    ("zone".into(), num(zone as u64)),
                    ("name".into(), Json::Str(name)),
                ]);
                (ok(result), Disposition::Continue)
            }
            Ok(None) => {
                ingest.record_query();
                (ok(Json::Null), Disposition::Continue)
            }
            Err(reason) => {
                ingest.record_rpc_error();
                (fail(reason), Disposition::Continue)
            }
        },
        "zone_history" => match epc(&doc).and_then(|epc| ingest.zone_history(&epc)) {
            Ok(history) => {
                ingest.record_query();
                let rows = history
                    .into_iter()
                    .map(|(zone, name, time_s, inferred)| {
                        Json::Obj(vec![
                            ("zone".into(), num(zone as u64)),
                            ("name".into(), Json::Str(name)),
                            ("time_s".into(), Json::Num(time_s)),
                            ("inferred".into(), Json::Bool(inferred)),
                        ])
                    })
                    .collect();
                (ok(Json::Arr(rows)), Disposition::Continue)
            }
            Err(reason) => {
                ingest.record_rpc_error();
                (fail(reason), Disposition::Continue)
            }
        },
        "counters" => {
            ingest.record_query();
            // Aggregate rows plus per-shard `shard<N>_<name>` rows.
            let rows = ingest
                .counter_rows()
                .into_iter()
                .map(|(name, value)| (name, num(value)))
                .collect();
            (ok(Json::Obj(rows)), Disposition::Continue)
        }
        "shutdown" => {
            ingest.record_query();
            (ok(Json::Str("draining".into())), Disposition::Shutdown)
        }
        other => {
            ingest.record_rpc_error();
            (
                fail(format!("unknown method {other:?}")),
                Disposition::Continue,
            )
        }
    }
}

/// Why a query round-trip failed.
#[derive(Debug)]
pub enum RpcError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server answered, but not with the expected shape.
    Protocol(String),
    /// The server answered `{"ok":false,…}`.
    Denied(String),
}

impl fmt::Display for RpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpcError::Io(err) => write!(f, "query I/O failed: {err}"),
            RpcError::Protocol(detail) => write!(f, "query protocol violation: {detail}"),
            RpcError::Denied(reason) => write!(f, "query denied: {reason}"),
        }
    }
}

impl std::error::Error for RpcError {}

impl From<io::Error> for RpcError {
    fn from(err: io::Error) -> Self {
        RpcError::Io(err)
    }
}

/// One row of a `zone_history` response.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRow {
    /// Zone index.
    pub zone: usize,
    /// Zone display name.
    pub name: String,
    /// Observation time.
    pub time_s: f64,
    /// Whether the observation was inferred rather than read.
    pub inferred: bool,
}

/// A typed client for the query surface.
pub struct QueryClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    token: String,
}

impl QueryClient {
    /// Connects and remembers the auth token for every request.
    ///
    /// # Errors
    ///
    /// Propagates connect/configuration failures.
    pub fn connect(addr: SocketAddr, token: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            token: token.to_owned(),
        })
    }

    fn call(&mut self, method: &str, params: Vec<(String, Json)>) -> Result<Json, RpcError> {
        let request = Json::Obj(vec![
            ("token".into(), Json::Str(self.token.clone())),
            ("method".into(), Json::Str(method.into())),
            ("params".into(), Json::Obj(params)),
        ]);
        let mut line = request.to_json();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(RpcError::Protocol("server closed the connection".into()));
        }
        let doc = Json::parse(response.trim_end_matches(['\r', '\n']))
            .map_err(|err| RpcError::Protocol(format!("unparseable response: {err}")))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc.get("result").cloned().unwrap_or(Json::Null)),
            Some(false) => Err(RpcError::Denied(
                doc.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified")
                    .to_owned(),
            )),
            None => Err(RpcError::Protocol("response missing ok field".into())),
        }
    }

    /// Where is this EPC now? `None` means unseen or stale.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn location_of(&mut self, epc: &str) -> Result<Option<(usize, String)>, RpcError> {
        let result = self.call(
            "location_of",
            vec![("epc".into(), Json::Str(epc.to_owned()))],
        )?;
        match result {
            Json::Null => Ok(None),
            other => {
                let zone = other
                    .get("zone")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| RpcError::Protocol("location without zone".into()))?;
                let name = other
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| RpcError::Protocol("location without name".into()))?;
                Ok(Some((zone as usize, name.to_owned())))
            }
        }
    }

    /// Full zone history of an EPC, oldest first.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn zone_history(&mut self, epc: &str) -> Result<Vec<HistoryRow>, RpcError> {
        let result = self.call(
            "zone_history",
            vec![("epc".into(), Json::Str(epc.to_owned()))],
        )?;
        let Json::Arr(rows) = result else {
            return Err(RpcError::Protocol("zone_history result not a list".into()));
        };
        rows.into_iter()
            .map(|row| {
                Ok(HistoryRow {
                    zone: row
                        .get("zone")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| RpcError::Protocol("history row without zone".into()))?
                        as usize,
                    name: row
                        .get("name")
                        .and_then(Json::as_str)
                        .unwrap_or_default()
                        .to_owned(),
                    time_s: row
                        .get("time_s")
                        .and_then(Json::as_f64)
                        .ok_or_else(|| RpcError::Protocol("history row without time".into()))?,
                    inferred: row.get("inferred").and_then(Json::as_bool).unwrap_or(false),
                })
            })
            .collect()
    }

    /// Counter snapshot as `(name, value)` rows.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    pub fn counters(&mut self) -> Result<Vec<(String, u64)>, RpcError> {
        let result = self.call("counters", Vec::new())?;
        let Json::Obj(pairs) = result else {
            return Err(RpcError::Protocol("counters result not an object".into()));
        };
        Ok(pairs
            .into_iter()
            .map(|(name, value)| (name, value.as_f64().unwrap_or(0.0) as u64))
            .collect())
    }

    /// One named counter, 0 if the server does not report it.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    pub fn counter(&mut self, name: &str) -> Result<u64, RpcError> {
        Ok(self
            .counters()?
            .into_iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| v))
    }

    /// Asks the server to drain and exit gracefully.
    ///
    /// # Errors
    ///
    /// Returns [`RpcError`] on transport, protocol, or server errors.
    pub fn shutdown(&mut self) -> Result<(), RpcError> {
        self.call("shutdown", Vec::new()).map(|_| ())
    }
}
