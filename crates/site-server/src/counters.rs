//! Operational counters for the site server.
//!
//! One flat `u64` struct guarded by the ingest lock — no atomics, so a
//! snapshot is always internally consistent (e.g. `events_ingested ==
//! events_released` after a drain is a real invariant, not a race).

/// Ingest, session, and query tallies. Returned by the `counters` RPC
/// and embedded in the final [`crate::ServerReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestCounters {
    /// Sessions that successfully attached a portal lane.
    pub sessions_attached: u64,
    /// Sessions that detached cleanly (lane released).
    pub sessions_detached: u64,
    /// Attach attempts refused (unknown portal, lane already busy).
    pub session_rejects: u64,
    /// Sessions that ended in a transport or protocol error.
    pub session_errors: u64,
    /// Wire records drained from readers (before validation).
    pub records_drained: u64,
    /// Records the wire adapter refused (bad EPC, non-finite time, …).
    pub adapter_rejects: u64,
    /// Events the merge refused (out of order, behind the watermark).
    pub merge_rejects: u64,
    /// Events admitted into the merge.
    pub events_ingested: u64,
    /// Events released past the global watermark into the tracker.
    pub events_released: u64,
    /// Zone transitions the tracker emitted.
    pub transitions: u64,
    /// Queries answered successfully.
    pub queries_served: u64,
    /// Connections or requests with a bad auth token.
    pub auth_failures: u64,
    /// Malformed or unanswerable RPC requests.
    pub rpc_errors: u64,
    /// Observations recovered from the durable store at boot.
    pub store_recovered: u64,
    /// Observations appended to the durable store this run.
    pub store_appends: u64,
    /// Store append/flush/replay failures (durability degraded, run
    /// continues).
    pub store_errors: u64,
}

impl IngestCounters {
    /// The `(name, value)` rows, in a stable order — the `counters`
    /// RPC payload and the display format both derive from this, so
    /// the wire surface can never drift from the struct.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("sessions_attached", self.sessions_attached),
            ("sessions_detached", self.sessions_detached),
            ("session_rejects", self.session_rejects),
            ("session_errors", self.session_errors),
            ("records_drained", self.records_drained),
            ("adapter_rejects", self.adapter_rejects),
            ("merge_rejects", self.merge_rejects),
            ("events_ingested", self.events_ingested),
            ("events_released", self.events_released),
            ("transitions", self.transitions),
            ("queries_served", self.queries_served),
            ("auth_failures", self.auth_failures),
            ("rpc_errors", self.rpc_errors),
            ("store_recovered", self.store_recovered),
            ("store_appends", self.store_appends),
            ("store_errors", self.store_errors),
        ]
    }
}

impl std::fmt::Display for IngestCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (name, value) in self.rows() {
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{name}={value}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_cover_every_field_and_display_matches() {
        let counters = IngestCounters {
            sessions_attached: 1,
            sessions_detached: 2,
            session_rejects: 3,
            session_errors: 4,
            records_drained: 5,
            adapter_rejects: 6,
            merge_rejects: 7,
            events_ingested: 8,
            events_released: 9,
            transitions: 10,
            queries_served: 11,
            auth_failures: 12,
            rpc_errors: 13,
            store_recovered: 14,
            store_appends: 15,
            store_errors: 16,
        };
        let rows = counters.rows();
        assert_eq!(rows.len(), 16);
        let total: u64 = rows.iter().map(|(_, v)| v).sum();
        assert_eq!(total, (1..=16).sum::<u64>(), "every field appears once");
        let text = counters.to_string();
        assert!(text.starts_with("sessions_attached=1 "));
        assert!(text.ends_with("store_errors=16"));
    }
}
