//! The shared ingest plane: many sessions, one merge, sharded
//! application.
//!
//! Every reader session thread pushes its drained wire records here.
//! Wire conversion happens *outside* any lock; one short critical
//! section admits the batch into the watermark-keyed [`SessionMerge`],
//! stamps every released event with a global release sequence number,
//! and routes it to a shard by its object's stable partition key
//! ([`shard_of`] over the hash-free `mix64` map). The session thread
//! then applies its own shard batches — `ObservationStream →
//! LocationTracker` per shard — under per-shard locks, ordered by
//! tickets issued at routing time, so concurrent sessions drive K
//! tracker chains in parallel while each shard still consumes its
//! subsequence of the canonical stream in canonical order.
//!
//! Bit-replayability: objects are partitioned disjointly across
//! shards, and the tracker is per-object state, so every per-object
//! answer (location, history) is identical to the unsharded chain's.
//! At shutdown [`SharedIngest::into_report`] k-way merges the
//! per-shard observation logs by release sequence and rebuilds one
//! tracker that is **bit-identical** to a batch replay of the same
//! recorded reads — the same acceptance gate every prior PR held.
//!
//! Hostile input discipline: a record that fails conversion (garbage
//! EPC, non-finite time) or merge admission (out of order, behind the
//! watermark) is *counted and dropped* — one bad frame must never take
//! down the daemon or poison the tracker.

use crate::counters::IngestCounters;
use rfid_readerapi::{TagRecord, WireEventAdapter};
use rfid_sim::ReadEvent;
use rfid_track::store::Record;
use rfid_track::stream::{
    shard_of, MergeError, ObservationStream, Operator, SessionMerge, ShardCounters, ZoneTransition,
};
use rfid_track::{
    LocationTracker, ObjectRegistry, Site, StoreError, ZoneHistoryStore, ZoneObservation,
};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// What one `ingest_records` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestOutcome {
    /// Records accepted into the merge.
    pub accepted: usize,
    /// Records rejected (adapter or merge) and dropped.
    pub rejected: usize,
}

/// The final state a server run hands back, for bit-exact comparison
/// against a batch replay of the same recorded session set.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// The canonical tracker, rebuilt from the per-shard observation
    /// logs in release order — bit-identical to the batch pipeline.
    pub tracker: LocationTracker,
    /// Every zone transition, in canonical stream order.
    pub transitions: Vec<ZoneTransition>,
    /// Ingest/query counters at shutdown.
    pub counters: IngestCounters,
    /// Per-shard routing and application tallies.
    pub shard_counters: Vec<ShardCounters>,
}

/// The merge-side state: one short lock every drain passes through.
struct IngestState {
    merge: SessionMerge<ReadEvent>,
    counters: IngestCounters,
    /// Highest released event time: the "now" queries evaluate at.
    now_s: f64,
    /// Next global release sequence number.
    next_seq: u64,
    /// Application tickets issued per shard.
    issued: Vec<u64>,
    /// The durable zone-history log, when the daemon runs with
    /// `--store-dir`. Appends happen here, inside the release critical
    /// section, so the on-disk order *is* the canonical release order.
    store: Option<ZoneHistoryStore>,
}

/// One shard's application state: its slice of the operator chain.
struct ShardState<'a> {
    observe: ObservationStream<'a>,
    tracker: LocationTracker,
    /// `(release seq, observation)` — the shutdown rebuild log.
    log: Vec<(u64, ZoneObservation)>,
    transitions: Vec<(u64, ZoneTransition)>,
    counters: ShardCounters,
    /// Tickets applied so far; ticket N may apply only when this is N.
    applied_tickets: u64,
}

struct ShardSlot<'a> {
    state: Mutex<ShardState<'a>>,
    /// Signalled after every applied ticket; orders appliers and wakes
    /// queries waiting for their snapshot ticket.
    applied: Condvar,
}

/// One routed batch: shard `lane` must apply `events` when its ticket
/// comes up.
struct RoutedBatch {
    lane: usize,
    ticket: u64,
    events: Vec<(u64, ReadEvent)>,
    /// In durable mode, the time below which the shard tracker's
    /// history may be evicted after applying (everything older is
    /// already safe in the store).
    evict_before: Option<f64>,
}

/// The shared ingest plane. One per server run; borrow it from every
/// session and query thread.
pub struct SharedIngest<'a> {
    site: &'a Site,
    registry: &'a ObjectRegistry,
    adapters: &'a [WireEventAdapter],
    staleness_s: f64,
    state: Mutex<IngestState>,
    shards: Vec<ShardSlot<'a>>,
    /// Whether a [`ZoneHistoryStore`] backs this plane. In durable
    /// mode the shard observation logs are skipped (the store is the
    /// log), shard tracker history is evicted as it becomes durable,
    /// and history queries answer from the store.
    durable: bool,
}

impl<'a> SharedIngest<'a> {
    /// Creates the plane: one merge lane and one adapter per portal, a
    /// fresh per-shard tracker chain with the given staleness horizon.
    /// `shards` is the parallel application width; `0` selects the
    /// machine's available parallelism. Every shard count produces the
    /// same final report, bit for bit.
    #[must_use]
    pub fn new(
        site: &'a Site,
        registry: &'a ObjectRegistry,
        adapters: &'a [WireEventAdapter],
        staleness_s: f64,
        shards: usize,
    ) -> Self {
        let lanes = if shards == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            shards
        };
        Self {
            site,
            registry,
            adapters,
            staleness_s,
            state: Mutex::new(IngestState {
                merge: SessionMerge::new(adapters.len()),
                counters: IngestCounters::default(),
                now_s: f64::NEG_INFINITY,
                next_seq: 0,
                issued: vec![0; lanes],
                store: None,
            }),
            shards: (0..lanes)
                .map(|_| ShardSlot {
                    state: Mutex::new(ShardState {
                        observe: ObservationStream::new(site, registry),
                        tracker: LocationTracker::new(staleness_s),
                        log: Vec::new(),
                        transitions: Vec::new(),
                        counters: ShardCounters::default(),
                        applied_tickets: 0,
                    }),
                    applied: Condvar::new(),
                })
                .collect(),
            durable: false,
        }
    }

    /// Creates a durable plane backed by an opened
    /// [`ZoneHistoryStore`]: observations recovered from the store are
    /// replayed into the shard trackers (so live queries resume where
    /// the previous run stopped), new releases are appended to the
    /// store inside the release critical section, and shard history is
    /// evicted as it becomes durable — bounding resident memory.
    ///
    /// # Errors
    ///
    /// Propagates [`StoreError`] if the recovered log cannot be read
    /// back.
    pub fn with_store(
        site: &'a Site,
        registry: &'a ObjectRegistry,
        adapters: &'a [WireEventAdapter],
        staleness_s: f64,
        shards: usize,
        store: ZoneHistoryStore,
    ) -> Result<Self, StoreError> {
        let recovered = store.observations()?;
        let high_s = store.high_s();
        let mut ingest = Self::new(site, registry, adapters, staleness_s, shards);
        ingest.durable = true;
        let lanes = ingest.shards.len();
        for (seq, observation) in recovered.iter().enumerate() {
            let lane = shard_of(observation.object.index() as u64, lanes);
            let slot = &ingest.shards[lane];
            let mut shard = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            let emitted = shard.tracker.push(*observation);
            shard.transitions.extend(
                emitted
                    .into_iter()
                    .map(|transition| (seq as u64, transition)),
            );
        }
        // Evict replayed history immediately: it is already durable, and
        // the live estimate (`last`) survives eviction.
        if let Some(high) = high_s {
            for slot in &ingest.shards {
                let mut shard = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
                shard.tracker.evict_history_before(high);
            }
        }
        {
            let mut state = ingest.lock();
            state.counters.store_recovered = recovered.len() as u64;
            state.next_seq = recovered.len() as u64;
            if let Some(high) = high_s {
                state.now_s = high;
            }
            state.store = Some(store);
        }
        Ok(ingest)
    }

    /// Whether a durable store backs this plane.
    #[must_use]
    pub fn is_durable(&self) -> bool {
        self.durable
    }

    /// Maps one released read to its zone observation exactly as the
    /// shard-side [`ObservationStream`] will: reads from unassigned
    /// portals or unknown tags map to `None`.
    fn map_observation(&self, event: &ReadEvent) -> Option<ZoneObservation> {
        let zone = self.site.zone_of_portal(event.reader, event.antenna)?;
        let object = self.registry.object_of(event.epc)?;
        Some(ZoneObservation {
            object,
            zone,
            time_s: event.time_s,
            inferred: false,
        })
    }

    /// Number of portal lanes.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.adapters.len()
    }

    /// Number of parallel application shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    fn lock(&self) -> MutexGuard<'_, IngestState> {
        // A panicking session thread must not brick the daemon: the
        // state is counters + operator structs whose invariants hold
        // between pushes, so recover the guard and keep serving.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The stable partition key of a released event: its object's
    /// index. Unknown EPCs (which the observation stage drops anyway)
    /// collapse onto key 0 — deterministic, and immaterial to output.
    fn partition_key(&self, event: &ReadEvent) -> u64 {
        self.registry
            .object_of(event.epc)
            .map_or(0, |object| object.index() as u64)
    }

    /// Stamps released events with sequence numbers, partitions them
    /// by object key, and issues one application ticket per non-empty
    /// shard batch. Runs under the merge lock; the caller applies the
    /// returned batches after dropping it.
    ///
    /// In durable mode every mapped observation is appended to the
    /// store here, inside the critical section, so the on-disk append
    /// order is exactly the canonical release order. A failed append
    /// (disk fault) is counted and the event still flows to its shard:
    /// durability degrades, liveness does not.
    fn route(&self, state: &mut IngestState, released: Vec<ReadEvent>) -> Vec<RoutedBatch> {
        if released.is_empty() {
            return Vec::new();
        }
        let lanes = self.shards.len();
        let mut per_lane: Vec<Vec<(u64, ReadEvent)>> = vec![Vec::new(); lanes];
        let mut high_s: Option<f64> = None;
        for event in released {
            state.counters.events_released += 1;
            state.now_s = state.now_s.max(event.time_s);
            high_s = Some(high_s.map_or(event.time_s, |h: f64| h.max(event.time_s)));
            let seq = state.next_seq;
            state.next_seq += 1;
            if state.store.is_some() {
                if let Some(observation) = self.map_observation(&event) {
                    let appended = state
                        .store
                        .as_mut()
                        .map(|store| store.append(&Record::Observation(observation)));
                    match appended {
                        Some(Ok(_)) => state.counters.store_appends += 1,
                        Some(Err(_)) => state.counters.store_errors += 1,
                        None => {}
                    }
                }
            }
            per_lane[shard_of(self.partition_key(&event), lanes)].push((seq, event));
        }
        if let Some(store) = state.store.as_mut() {
            if store.flush().is_err() {
                state.counters.store_errors += 1;
            }
        }
        let evict_before = if self.durable { high_s } else { None };
        per_lane
            .into_iter()
            .enumerate()
            .filter(|(_, events)| !events.is_empty())
            .map(|(lane, events)| {
                let ticket = state.issued[lane];
                state.issued[lane] += 1;
                RoutedBatch {
                    lane,
                    ticket,
                    events,
                    evict_before,
                }
            })
            .collect()
    }

    /// Applies one routed batch on the calling (session) thread, in
    /// ticket order: tickets are issued under the merge lock in
    /// canonical release order, so each shard consumes its subsequence
    /// of the canonical stream exactly as the unsharded chain would.
    fn apply(&self, batch: RoutedBatch) {
        let slot = &self.shards[batch.lane];
        let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        let depth = (batch.ticket + 1).saturating_sub(state.applied_tickets);
        state.counters.max_queue_depth = state.counters.max_queue_depth.max(depth);
        if state.applied_tickets != batch.ticket {
            state.counters.merge_holds += 1;
            while state.applied_tickets != batch.ticket {
                state = slot
                    .applied
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        state.counters.watermarks_forwarded += 1;
        state.counters.events_routed += batch.events.len() as u64;
        for (seq, event) in batch.events {
            for observation in state.observe.push(event) {
                // In durable mode the store *is* the observation log;
                // duplicating it in memory would re-grow the unbounded
                // Vec this store exists to remove.
                if !self.durable {
                    state.log.push((seq, observation));
                }
                let emitted = state.tracker.push(observation);
                state
                    .transitions
                    .extend(emitted.into_iter().map(|transition| (seq, transition)));
            }
        }
        if let Some(cutoff_s) = batch.evict_before {
            // Everything strictly older than the release high-water is
            // already durable; drop it from the live index so resident
            // memory stays bounded by the in-flight window.
            state.tracker.evict_history_before(cutoff_s);
        }
        state.applied_tickets += 1;
        slot.applied.notify_all();
    }

    /// Locks shard `lane` once every ticket up to `target` has been
    /// applied, so a query observes everything routed before its
    /// snapshot. Bounded waiting: if an applier died mid-ticket the
    /// query answers from the freshest applied state rather than
    /// hanging the daemon.
    fn synced_shard(&self, lane: usize, target: u64) -> MutexGuard<'_, ShardState<'a>> {
        let slot = &self.shards[lane];
        let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mut patience = 0u32;
        while state.applied_tickets < target && patience < 50 {
            let (guard, _) = slot
                .applied
                .wait_timeout(state, Duration::from_millis(100))
                .unwrap_or_else(PoisonError::into_inner);
            state = guard;
            patience += 1;
        }
        state
    }

    /// Claims a portal lane for a live session.
    ///
    /// # Errors
    ///
    /// Propagates [`MergeError::UnknownSession`] /
    /// [`MergeError::SessionBusy`]; both are counted.
    pub fn attach(&self, session: usize) -> Result<(), MergeError> {
        let mut state = self.lock();
        match state.merge.attach(session) {
            Ok(()) => {
                state.counters.sessions_attached += 1;
                Ok(())
            }
            Err(err) => {
                state.counters.session_rejects += 1;
                Err(err)
            }
        }
    }

    /// Releases a portal lane (watermark and queue survive for the
    /// next session on the same portal).
    pub fn detach(&self, session: usize) {
        let mut state = self.lock();
        if state.merge.detach(session).is_ok() {
            state.counters.sessions_detached += 1;
        }
    }

    /// Ingests one drained batch of wire records for a session, then
    /// advances the session's watermark to the highest accepted time
    /// and applies whatever the merge releases.
    ///
    /// The whole drain is one batch: conversion runs before the merge
    /// lock, admission and routing inside it, and the per-shard tracker
    /// application after it under per-shard locks — so concurrent
    /// sessions contend only on the short admission section.
    pub fn ingest_records(&self, session: usize, records: &[TagRecord]) -> IngestOutcome {
        let mut outcome = IngestOutcome::default();
        let adapter = self.adapters.get(session);
        let mut adapter_rejects = 0u64;
        let mut unroutable = 0u64;
        let mut events = Vec::with_capacity(records.len());
        for record in records {
            match adapter {
                Some(adapter) => match adapter.convert(record) {
                    Ok(event) => events.push(event),
                    Err(_) => {
                        adapter_rejects += 1;
                        outcome.rejected += 1;
                    }
                },
                None => {
                    unroutable += 1;
                    outcome.rejected += 1;
                }
            }
        }
        let batches = {
            let mut state = self.lock();
            state.counters.records_drained += records.len() as u64;
            state.counters.adapter_rejects += adapter_rejects;
            state.counters.merge_rejects += unroutable;
            let mut high: Option<f64> = None;
            for event in events {
                match state.merge.push(session, event) {
                    Ok(()) => {
                        state.counters.events_ingested += 1;
                        outcome.accepted += 1;
                        high = Some(high.map_or(event.time_s, |h: f64| h.max(event.time_s)));
                    }
                    Err(_) => {
                        state.counters.merge_rejects += 1;
                        outcome.rejected += 1;
                    }
                }
            }
            let released = high.map_or_else(Vec::new, |watermark_s| {
                state
                    .merge
                    .advance(session, watermark_s)
                    .unwrap_or_default()
            });
            // audit:allow(guard-held-across-blocking, reason = "route flushes the store inside the merge lock on purpose: the on-disk append order must equal the canonical release order, and appliers wait on per-shard tickets, never on this lock, so the flush cannot deadlock — only lengthen the admission section")
            self.route(&mut state, released)
        };
        for batch in batches {
            self.apply(batch);
        }
        outcome
    }

    /// Ends every lane and flushes the remaining events through the
    /// sharded chains — the drain step of a graceful shutdown. Call
    /// once every session has detached.
    pub fn finish(&self) {
        let batches = {
            let mut state = self.lock();
            let released = state.merge.finish();
            // audit:allow(guard-held-across-blocking, reason = "same ticket-ordering argument as ingest_records: the drain must append to the store in canonical release order under the merge lock; every session has detached, so nothing else contends for it")
            self.route(&mut state, released)
        };
        for batch in batches {
            self.apply(batch);
        }
        // Flush each shard's chain tail. The observation stage is
        // stateless and the tracker holds no windows, so the tails are
        // empty today; the discipline stays so a future windowed stage
        // in the shard chain drains correctly (tails flush per shard,
        // in shard order, after every routed event).
        let mut tail_seq = {
            let state = self.lock();
            state.next_seq
        };
        for slot in &self.shards {
            let mut state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
            let tail: Vec<ZoneObservation> = state.observe.finish();
            for observation in tail {
                state.log.push((tail_seq, observation));
                let emitted = state.tracker.push(observation);
                state
                    .transitions
                    .extend(emitted.into_iter().map(|transition| (tail_seq, transition)));
                tail_seq += 1;
            }
            let last = state.tracker.finish();
            state
                .transitions
                .extend(last.into_iter().map(|transition| (tail_seq, transition)));
        }
    }

    /// Aggregate counter snapshot. The `transitions` tally is summed
    /// live from the shard states.
    #[must_use]
    pub fn counters(&self) -> IngestCounters {
        let mut counters = self.lock().counters;
        counters.transitions = self
            .shards
            .iter()
            .map(|slot| {
                let state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.transitions.len() as u64
            })
            .sum();
        counters
    }

    /// Per-shard counter snapshot, indexed by shard.
    #[must_use]
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards
            .iter()
            .map(|slot| {
                let state = slot.state.lock().unwrap_or_else(PoisonError::into_inner);
                state.counters
            })
            .collect()
    }

    /// The full `counters` RPC payload: every aggregate row, then the
    /// per-shard rows as `shard<N>_<name>`.
    #[must_use]
    pub fn counter_rows(&self) -> Vec<(String, u64)> {
        let mut rows: Vec<(String, u64)> = self
            .counters()
            .rows()
            .into_iter()
            .map(|(name, value)| (name.to_owned(), value))
            .collect();
        for (lane, counters) in self.shard_counters().into_iter().enumerate() {
            for (name, value) in counters.rows() {
                rows.push((format!("shard{lane}_{name}"), value));
            }
        }
        rows
    }

    /// Tallies a served query.
    pub fn record_query(&self) {
        self.lock().counters.queries_served += 1;
    }

    /// Tallies a rejected auth token.
    pub fn record_auth_failure(&self) {
        self.lock().counters.auth_failures += 1;
    }

    /// Tallies a malformed or unanswerable RPC request.
    pub fn record_rpc_error(&self) {
        self.lock().counters.rpc_errors += 1;
    }

    /// Tallies a session that ended in a transport error.
    pub fn record_session_error(&self) {
        self.lock().counters.session_errors += 1;
    }

    /// Resolves an EPC (24 hex digits) to its registered object.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason (bad hex, unknown tag).
    pub fn resolve(&self, epc_text: &str) -> Result<rfid_track::ObjectHandle, String> {
        let epc: rfid_gen2::Epc96 = epc_text
            .parse()
            .map_err(|err| format!("unparseable EPC {epc_text:?}: {err}"))?;
        self.registry
            .object_of(epc)
            .ok_or_else(|| format!("EPC {epc_text} is not a registered tag"))
    }

    /// Snapshots the query horizon for an object's shard: the ticket
    /// count the shard must reach and the canonical "now".
    fn query_snapshot(&self, lane: usize) -> (u64, f64) {
        let state = self.lock();
        (state.issued[lane], state.now_s)
    }

    /// Point-in-time location query at the canonical stream's "now"
    /// (the highest released event time): `(zone index, zone name)`,
    /// or `None` if the object is unseen or stale.
    ///
    /// The object's whole observation subsequence lives in one shard,
    /// so the per-object answer equals the unsharded chain's.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for an unresolvable EPC.
    pub fn location_of(&self, epc_text: &str) -> Result<Option<(usize, String)>, String> {
        let object = self.resolve(epc_text)?;
        let lane = shard_of(object.index() as u64, self.shards.len());
        let (target, now_s) = self.query_snapshot(lane);
        let state = self.synced_shard(lane, target);
        Ok(state
            .tracker
            .location_of(object, now_s)
            .map(|zone| (zone, self.site.zone_name(zone).to_owned())))
    }

    /// Full zone history of an object: `(zone index, zone name,
    /// time, inferred)` per observation, in canonical stream order.
    ///
    /// In durable mode the answer comes from the store (shard history
    /// is evicted as it becomes durable), read at the release
    /// snapshot; otherwise from the object's shard tracker.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for an unresolvable EPC or an
    /// unreadable store segment.
    #[allow(clippy::type_complexity)]
    pub fn zone_history(&self, epc_text: &str) -> Result<Vec<(usize, String, f64, bool)>, String> {
        let object = self.resolve(epc_text)?;
        if self.durable {
            let state = self.lock();
            let history = state
                .store
                .as_ref()
                .map_or_else(|| Ok(Vec::new()), |store| store.history_of(object))
                .map_err(|err| format!("store read failed: {err}"))?;
            return Ok(history
                .into_iter()
                .map(|obs| {
                    (
                        obs.zone,
                        self.site.zone_name(obs.zone).to_owned(),
                        obs.time_s,
                        obs.inferred,
                    )
                })
                .collect());
        }
        let lane = shard_of(object.index() as u64, self.shards.len());
        let (target, _) = self.query_snapshot(lane);
        let state = self.synced_shard(lane, target);
        Ok(state
            .tracker
            .history_of(object)
            .map(|obs| {
                (
                    obs.zone,
                    self.site.zone_name(obs.zone).to_owned(),
                    obs.time_s,
                    obs.inferred,
                )
            })
            .collect())
    }

    /// Point-in-time location query at an arbitrary historical time
    /// `at_s`: `(zone index, zone name)` as of `at_s` under the same
    /// staleness horizon as [`SharedIngest::location_of`], or `None`
    /// if the object was unseen or stale then.
    ///
    /// Durable mode answers from the store's segment index in
    /// `O(log n)`; otherwise the object's shard tracker answers from
    /// its in-memory time index.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for an unresolvable EPC, a
    /// non-finite query time, or an unreadable store segment.
    pub fn location_at(
        &self,
        epc_text: &str,
        at_s: f64,
    ) -> Result<Option<(usize, String)>, String> {
        if !at_s.is_finite() {
            return Err(format!("non-finite query time {at_s}"));
        }
        let object = self.resolve(epc_text)?;
        if self.durable {
            let state = self.lock();
            let found = state
                .store
                .as_ref()
                .map_or(Ok(None), |store| store.location_at(object, at_s))
                .map_err(|err| format!("store read failed: {err}"))?;
            return Ok(found.and_then(|(zone, time_s)| {
                (at_s - time_s <= self.staleness_s)
                    .then(|| (zone, self.site.zone_name(zone).to_owned()))
            }));
        }
        let lane = shard_of(object.index() as u64, self.shards.len());
        let (target, _) = self.query_snapshot(lane);
        let state = self.synced_shard(lane, target);
        Ok(state
            .tracker
            .location_of(object, at_s)
            .map(|zone| (zone, self.site.zone_name(zone).to_owned())))
    }

    /// The object's display name.
    #[must_use]
    pub fn name_of(&self, object: rfid_track::ObjectHandle) -> &str {
        self.registry.name_of(object)
    }

    /// Consumes the plane into its final report: the per-shard
    /// observation logs merge by release sequence into the canonical
    /// order, and one tracker is rebuilt from that order — bit-exact
    /// to a batch replay. In durable mode the store *is* the canonical
    /// log, so the tracker is rebuilt by replaying it — the recovery
    /// path and the report path are one code path, which is what makes
    /// "replay equals live run" a structural guarantee. Call after
    /// [`SharedIngest::finish`] once every session has detached.
    #[must_use]
    pub fn into_report(self) -> ServerReport {
        let mut state = self
            .state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        let mut counters = state.counters;
        if let Some(store) = state.store.as_mut() {
            if store.flush().is_err() {
                counters.store_errors += 1;
            }
        }
        let mut log: Vec<(u64, ZoneObservation)> = Vec::new();
        let mut transitions: Vec<(u64, ZoneTransition)> = Vec::new();
        let mut shard_counters = Vec::with_capacity(self.shards.len());
        for slot in self.shards {
            let shard = slot
                .state
                .into_inner()
                .unwrap_or_else(PoisonError::into_inner);
            log.extend(shard.log);
            transitions.extend(shard.transitions);
            shard_counters.push(shard.counters);
        }
        // Release sequence numbers are unique, so the sorts are total:
        // this *is* the k-way merge back into canonical stream order.
        log.sort_unstable_by_key(|&(seq, _)| seq);
        transitions.sort_by_key(|&(seq, _)| seq);
        counters.transitions = transitions.len() as u64;
        let mut tracker = LocationTracker::new(self.staleness_s);
        if let Some(store) = state.store.as_ref() {
            match store.observations() {
                Ok(observations) => {
                    for observation in observations {
                        // `push` drops non-finite times instead of
                        // erroring; stored times were validated at
                        // append, so nothing is dropped here.
                        let _ = tracker.push(observation);
                    }
                }
                Err(err) => {
                    counters.store_errors += 1;
                    eprintln!("store replay failed at shutdown: {err}");
                }
            }
        } else {
            for (_, observation) in log {
                let _ = tracker.push(observation);
            }
        }
        ServerReport {
            tracker,
            transitions: transitions
                .into_iter()
                .map(|(_, transition)| transition)
                .collect(),
            counters,
            shard_counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::Epc96;

    fn world() -> (Site, ObjectRegistry, Vec<Epc96>) {
        let mut site = Site::new();
        let dock = site.add_zone("dock");
        let aisle = site.add_zone("aisle");
        site.assign_portal(0, 0, dock);
        site.assign_portal(1, 0, aisle);
        let mut registry = ObjectRegistry::new();
        let epcs = vec![Epc96::from_u128(0xA1), Epc96::from_u128(0xB2)];
        for (index, epc) in epcs.iter().enumerate() {
            let object = registry.register(format!("case-{index}"));
            registry.attach_tag(object, *epc);
        }
        (site, registry, epcs)
    }

    fn record(epc: Epc96, time_s: f64) -> TagRecord {
        TagRecord {
            epc: epc.to_string(),
            antenna: 1,
            time_s,
        }
    }

    #[test]
    fn multi_session_ingest_matches_batch() {
        let (site, registry, epcs) = world();
        let adapters: Vec<_> = (0..2)
            .map(|r| WireEventAdapter::new(r, epcs.iter().copied()))
            .collect();
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 4);
        ingest.attach(0).expect("lane 0");
        ingest.attach(1).expect("lane 1");

        // Case 0 crosses dock (t=1) then aisle (t=3); case 1 only dock.
        let outcome = ingest.ingest_records(0, &[record(epcs[0], 1.0), record(epcs[1], 2.0)]);
        assert_eq!(outcome.accepted, 2);
        let outcome = ingest.ingest_records(1, &[record(epcs[0], 3.0)]);
        assert_eq!(outcome.accepted, 1);
        ingest.detach(0);
        ingest.detach(1);
        ingest.finish();

        let reads = vec![
            rfid_sim::ReadEvent {
                time_s: 1.0,
                reader: 0,
                antenna: 0,
                tag: 0,
                epc: epcs[0],
            },
            rfid_sim::ReadEvent {
                time_s: 2.0,
                reader: 0,
                antenna: 0,
                tag: 1,
                epc: epcs[1],
            },
            rfid_sim::ReadEvent {
                time_s: 3.0,
                reader: 1,
                antenna: 0,
                tag: 0,
                epc: epcs[0],
            },
        ];
        let mut batch = LocationTracker::new(100.0);
        batch
            .observe_all(site.observations(&registry, &reads))
            .expect("finite times");

        let report = ingest.into_report();
        assert_eq!(report.tracker, batch, "streamed state is the batch state");
        assert_eq!(report.transitions.len(), 3, "two first-sights + one move");
        assert_eq!(report.counters.events_ingested, 3);
        assert_eq!(report.counters.events_released, 3);
        assert_eq!(report.shard_counters.len(), 4);
        let routed: u64 = report.shard_counters.iter().map(|c| c.events_routed).sum();
        assert_eq!(routed, 3, "every released event lands on one shard");
    }

    /// Bit-identity across shard counts: the report any K produces is
    /// the report K=1 produces.
    #[test]
    fn report_is_shard_count_invariant() {
        let (site, registry, epcs) = world();
        let drains: Vec<(usize, Vec<TagRecord>)> = vec![
            (0, vec![record(epcs[0], 1.0), record(epcs[1], 2.0)]),
            (1, vec![record(epcs[0], 3.0), record(epcs[1], 3.5)]),
            (0, vec![record(epcs[1], 4.0)]),
            (1, vec![record(epcs[0], 5.0)]),
        ];
        let run = |shards: usize| {
            let adapters: Vec<_> = (0..2)
                .map(|r| WireEventAdapter::new(r, epcs.iter().copied()))
                .collect();
            let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, shards);
            ingest.attach(0).expect("lane 0");
            ingest.attach(1).expect("lane 1");
            for (session, records) in &drains {
                ingest.ingest_records(*session, records);
            }
            ingest.detach(0);
            ingest.detach(1);
            ingest.finish();
            let report = ingest.into_report();
            (report.tracker, report.transitions, report.counters)
        };
        let reference = run(1);
        for shards in [2, 3, 8] {
            assert_eq!(run(shards), reference, "shards = {shards}");
        }
    }

    #[test]
    fn hostile_records_are_counted_and_dropped() {
        let (site, registry, epcs) = world();
        let adapters = vec![WireEventAdapter::new(0, epcs.iter().copied())];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 2);
        ingest.attach(0).expect("lane 0");
        let hostile = [
            TagRecord {
                epc: "zz-not-hex".into(),
                antenna: 1,
                time_s: 1.0,
            },
            record(epcs[0], f64::NAN),
            record(epcs[0], f64::INFINITY),
            record(epcs[0], 5.0),
            record(epcs[0], 4.0), // out of order behind 5.0
        ];
        let outcome = ingest.ingest_records(0, &hostile);
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.rejected, 4);
        let counters = ingest.counters();
        assert_eq!(counters.adapter_rejects, 3, "bad hex + NaN + inf");
        assert_eq!(counters.merge_rejects, 1, "the out-of-order record");
        assert_eq!(counters.events_ingested, 1);
        ingest.detach(0);
        ingest.finish();
        let report = ingest.into_report();
        // Only the one clean record (t=5.0) reached the tracker.
        assert_eq!(report.counters.events_released, 1);
        assert_eq!(report.transitions.len(), 1);
    }

    #[test]
    fn queries_answer_from_released_state() {
        let (site, registry, epcs) = world();
        let adapters: Vec<_> = (0..2)
            .map(|r| WireEventAdapter::new(r, epcs.iter().copied()))
            .collect();
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 3);
        ingest.attach(0).expect("lane 0");
        ingest.attach(1).expect("lane 1");
        ingest.ingest_records(0, &[record(epcs[0], 1.0)]);
        // Lane 1 silent: nothing released yet.
        assert_eq!(ingest.location_of(&epcs[0].to_string()), Ok(None));
        ingest.ingest_records(1, &[record(epcs[0], 3.0)]);
        // Floor is now min(1.0, 3.0) = 1.0: still nothing strictly below.
        ingest.ingest_records(0, &[record(epcs[1], 2.5)]);
        // Lane 0 watermark 2.5, lane 1 watermark 3.0: t=1.0 released.
        let location = ingest.location_of(&epcs[0].to_string()).expect("known epc");
        assert_eq!(location, Some((0, "dock".to_owned())));
        assert!(ingest.location_of("junk").is_err());
        assert!(ingest
            .location_of("000000000000000000000FFF")
            .unwrap_err()
            .contains("not a registered tag"));
        let history = ingest.zone_history(&epcs[0].to_string()).expect("history");
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].1, "dock");
    }

    #[test]
    fn counter_rows_expose_every_shard() {
        let (site, registry, epcs) = world();
        let adapters = vec![WireEventAdapter::new(0, epcs.iter().copied())];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0, 2);
        ingest.attach(0).expect("lane 0");
        ingest.ingest_records(0, &[record(epcs[0], 1.0), record(epcs[1], 2.0)]);
        let rows = ingest.counter_rows();
        let aggregate = IngestCounters::default().rows().len();
        assert_eq!(rows.len(), aggregate + 2 * 4, "13 aggregate + 2 shards x 4");
        assert!(rows.iter().any(|(name, _)| name == "shard0_events_routed"));
        assert!(rows
            .iter()
            .any(|(name, _)| name == "shard1_max_queue_depth"));
        let routed: u64 = rows
            .iter()
            .filter(|(name, _)| name.ends_with("_events_routed"))
            .map(|&(_, value)| value)
            .sum();
        // The lane watermark is 2.0, so only t=1.0 has been released
        // and routed; t=2.0 still sits in the merge.
        assert_eq!(routed, 1);
    }
}
