//! The shared ingest plane: many sessions, one tracker, one lock.
//!
//! Every reader session thread pushes its drained wire records here.
//! Inside a single mutex the records convert through the session's
//! [`WireEventAdapter`], merge through the watermark-keyed
//! [`SessionMerge`] into the canonical event order, and flow through
//! `ObservationStream → LocationTracker` — the same operator chain the
//! batch pipeline is proven bit-identical to. Queries read the same
//! state under the same lock, so a query observes a prefix of the
//! canonical stream, never a torn interleaving.
//!
//! Hostile input discipline: a record that fails conversion (garbage
//! EPC, non-finite time) or merge admission (out of order, behind the
//! watermark) is *counted and dropped* — one bad frame must never take
//! down the daemon or poison the tracker.

use crate::counters::IngestCounters;
use rfid_readerapi::{TagRecord, WireEventAdapter};
use rfid_sim::ReadEvent;
use rfid_track::stream::{MergeError, ObservationStream, Operator, SessionMerge, ZoneTransition};
use rfid_track::{LocationTracker, ObjectRegistry, Site};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// What one `ingest_records` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestOutcome {
    /// Records accepted into the merge.
    pub accepted: usize,
    /// Records rejected (adapter or merge) and dropped.
    pub rejected: usize,
}

/// The final state a server run hands back, for bit-exact comparison
/// against a batch replay of the same recorded session set.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// The tracker exactly as the streaming chain left it.
    pub tracker: LocationTracker,
    /// Every zone transition, in canonical stream order.
    pub transitions: Vec<ZoneTransition>,
    /// Ingest/query counters at shutdown.
    pub counters: IngestCounters,
}

struct IngestState<'a> {
    merge: SessionMerge<ReadEvent>,
    observe: ObservationStream<'a>,
    tracker: LocationTracker,
    transitions: Vec<ZoneTransition>,
    counters: IngestCounters,
    /// Highest released event time: the "now" queries evaluate at.
    now_s: f64,
}

impl IngestState<'_> {
    /// Routes merge-released events through the operator chain.
    fn route(&mut self, released: Vec<ReadEvent>) {
        for event in released {
            self.now_s = self.now_s.max(event.time_s);
            self.counters.events_released += 1;
            for observation in self.observe.push(event) {
                let emitted = self.tracker.push(observation);
                self.counters.transitions += emitted.len() as u64;
                self.transitions.extend(emitted);
            }
        }
    }
}

/// The shared ingest plane. One per server run; borrow it from every
/// session and query thread.
pub struct SharedIngest<'a> {
    site: &'a Site,
    registry: &'a ObjectRegistry,
    adapters: &'a [WireEventAdapter],
    state: Mutex<IngestState<'a>>,
}

impl<'a> SharedIngest<'a> {
    /// Creates the plane: one merge lane and one adapter per portal,
    /// a fresh tracker with the given staleness horizon.
    #[must_use]
    pub fn new(
        site: &'a Site,
        registry: &'a ObjectRegistry,
        adapters: &'a [WireEventAdapter],
        staleness_s: f64,
    ) -> Self {
        Self {
            site,
            registry,
            adapters,
            state: Mutex::new(IngestState {
                merge: SessionMerge::new(adapters.len()),
                observe: ObservationStream::new(site, registry),
                tracker: LocationTracker::new(staleness_s),
                transitions: Vec::new(),
                counters: IngestCounters::default(),
                now_s: f64::NEG_INFINITY,
            }),
        }
    }

    /// Number of portal lanes.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.adapters.len()
    }

    fn lock(&self) -> MutexGuard<'_, IngestState<'a>> {
        // A panicking session thread must not brick the daemon: the
        // state is counters + operator structs whose invariants hold
        // between pushes, so recover the guard and keep serving.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Claims a portal lane for a live session.
    ///
    /// # Errors
    ///
    /// Propagates [`MergeError::UnknownSession`] /
    /// [`MergeError::SessionBusy`]; both are counted.
    pub fn attach(&self, session: usize) -> Result<(), MergeError> {
        let mut state = self.lock();
        match state.merge.attach(session) {
            Ok(()) => {
                state.counters.sessions_attached += 1;
                Ok(())
            }
            Err(err) => {
                state.counters.session_rejects += 1;
                Err(err)
            }
        }
    }

    /// Releases a portal lane (watermark and queue survive for the
    /// next session on the same portal).
    pub fn detach(&self, session: usize) {
        let mut state = self.lock();
        if state.merge.detach(session).is_ok() {
            state.counters.sessions_detached += 1;
        }
    }

    /// Ingests one drained batch of wire records for a session, then
    /// advances the session's watermark to the highest accepted time
    /// and routes whatever the merge releases.
    pub fn ingest_records(&self, session: usize, records: &[TagRecord]) -> IngestOutcome {
        let mut outcome = IngestOutcome::default();
        let mut state = self.lock();
        state.counters.records_drained += records.len() as u64;
        let mut high: Option<f64> = None;
        for record in records {
            let Some(adapter) = self.adapters.get(session) else {
                state.counters.merge_rejects += 1;
                outcome.rejected += 1;
                continue;
            };
            let event = match adapter.convert(record) {
                Ok(event) => event,
                Err(_) => {
                    state.counters.adapter_rejects += 1;
                    outcome.rejected += 1;
                    continue;
                }
            };
            match state.merge.push(session, event) {
                Ok(()) => {
                    state.counters.events_ingested += 1;
                    outcome.accepted += 1;
                    high = Some(high.map_or(event.time_s, |h: f64| h.max(event.time_s)));
                }
                Err(_) => {
                    state.counters.merge_rejects += 1;
                    outcome.rejected += 1;
                }
            }
        }
        if let Some(watermark_s) = high {
            if let Ok(released) = state.merge.advance(session, watermark_s) {
                state.route(released);
            }
        }
        outcome
    }

    /// Ends every lane and flushes the remaining events through the
    /// chain — the drain step of a graceful shutdown.
    pub fn finish(&self) {
        let mut state = self.lock();
        let released = state.merge.finish();
        state.route(released);
        let tail: Vec<_> = state.observe.finish();
        for observation in tail {
            let emitted = state.tracker.push(observation);
            state.counters.transitions += emitted.len() as u64;
            state.transitions.extend(emitted);
        }
        let last = state.tracker.finish();
        state.counters.transitions += last.len() as u64;
        state.transitions.extend(last);
    }

    /// Counter snapshot (also the `counters` RPC payload).
    #[must_use]
    pub fn counters(&self) -> IngestCounters {
        self.lock().counters
    }

    /// Tallies a served query.
    pub fn record_query(&self) {
        self.lock().counters.queries_served += 1;
    }

    /// Tallies a rejected auth token.
    pub fn record_auth_failure(&self) {
        self.lock().counters.auth_failures += 1;
    }

    /// Tallies a malformed or unanswerable RPC request.
    pub fn record_rpc_error(&self) {
        self.lock().counters.rpc_errors += 1;
    }

    /// Tallies a session that ended in a transport error.
    pub fn record_session_error(&self) {
        self.lock().counters.session_errors += 1;
    }

    /// Resolves an EPC (24 hex digits) to its registered object.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason (bad hex, unknown tag).
    pub fn resolve(&self, epc_text: &str) -> Result<rfid_track::ObjectHandle, String> {
        let epc: rfid_gen2::Epc96 = epc_text
            .parse()
            .map_err(|err| format!("unparseable EPC {epc_text:?}: {err}"))?;
        self.registry
            .object_of(epc)
            .ok_or_else(|| format!("EPC {epc_text} is not a registered tag"))
    }

    /// Point-in-time location query at the canonical stream's "now"
    /// (the highest released event time): `(zone index, zone name)`,
    /// or `None` if the object is unseen or stale.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for an unresolvable EPC.
    pub fn location_of(&self, epc_text: &str) -> Result<Option<(usize, String)>, String> {
        let object = self.resolve(epc_text)?;
        let state = self.lock();
        Ok(state
            .tracker
            .location_of(object, state.now_s)
            .map(|zone| (zone, self.site.zone_name(zone).to_owned())))
    }

    /// Full zone history of an object: `(zone index, zone name,
    /// time, inferred)` per observation, in canonical stream order.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason for an unresolvable EPC.
    #[allow(clippy::type_complexity)]
    pub fn zone_history(&self, epc_text: &str) -> Result<Vec<(usize, String, f64, bool)>, String> {
        let object = self.resolve(epc_text)?;
        let state = self.lock();
        Ok(state
            .tracker
            .history_of(object)
            .map(|obs| {
                (
                    obs.zone,
                    self.site.zone_name(obs.zone).to_owned(),
                    obs.time_s,
                    obs.inferred,
                )
            })
            .collect())
    }

    /// The object's display name.
    #[must_use]
    pub fn name_of(&self, object: rfid_track::ObjectHandle) -> &str {
        self.registry.name_of(object)
    }

    /// Consumes the plane into its final report. Call after
    /// [`SharedIngest::finish`] once every session has detached.
    #[must_use]
    pub fn into_report(self) -> ServerReport {
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        ServerReport {
            tracker: state.tracker,
            transitions: state.transitions,
            counters: state.counters,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_gen2::Epc96;

    fn world() -> (Site, ObjectRegistry, Vec<Epc96>) {
        let mut site = Site::new();
        let dock = site.add_zone("dock");
        let aisle = site.add_zone("aisle");
        site.assign_portal(0, 0, dock);
        site.assign_portal(1, 0, aisle);
        let mut registry = ObjectRegistry::new();
        let epcs = vec![Epc96::from_u128(0xA1), Epc96::from_u128(0xB2)];
        for (index, epc) in epcs.iter().enumerate() {
            let object = registry.register(format!("case-{index}"));
            registry.attach_tag(object, *epc);
        }
        (site, registry, epcs)
    }

    fn record(epc: Epc96, time_s: f64) -> TagRecord {
        TagRecord {
            epc: epc.to_string(),
            antenna: 1,
            time_s,
        }
    }

    #[test]
    fn multi_session_ingest_matches_batch() {
        let (site, registry, epcs) = world();
        let adapters: Vec<_> = (0..2)
            .map(|r| WireEventAdapter::new(r, epcs.iter().copied()))
            .collect();
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0);
        ingest.attach(0).expect("lane 0");
        ingest.attach(1).expect("lane 1");

        // Case 0 crosses dock (t=1) then aisle (t=3); case 1 only dock.
        let outcome = ingest.ingest_records(0, &[record(epcs[0], 1.0), record(epcs[1], 2.0)]);
        assert_eq!(outcome.accepted, 2);
        let outcome = ingest.ingest_records(1, &[record(epcs[0], 3.0)]);
        assert_eq!(outcome.accepted, 1);
        ingest.detach(0);
        ingest.detach(1);
        ingest.finish();

        let reads = vec![
            rfid_sim::ReadEvent {
                time_s: 1.0,
                reader: 0,
                antenna: 0,
                tag: 0,
                epc: epcs[0],
            },
            rfid_sim::ReadEvent {
                time_s: 2.0,
                reader: 0,
                antenna: 0,
                tag: 1,
                epc: epcs[1],
            },
            rfid_sim::ReadEvent {
                time_s: 3.0,
                reader: 1,
                antenna: 0,
                tag: 0,
                epc: epcs[0],
            },
        ];
        let mut batch = LocationTracker::new(100.0);
        batch.observe_all(site.observations(&registry, &reads));

        let report = ingest.into_report();
        assert_eq!(report.tracker, batch, "streamed state is the batch state");
        assert_eq!(report.transitions.len(), 3, "two first-sights + one move");
        assert_eq!(report.counters.events_ingested, 3);
        assert_eq!(report.counters.events_released, 3);
    }

    #[test]
    fn hostile_records_are_counted_and_dropped() {
        let (site, registry, epcs) = world();
        let adapters = vec![WireEventAdapter::new(0, epcs.iter().copied())];
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0);
        ingest.attach(0).expect("lane 0");
        let hostile = [
            TagRecord {
                epc: "zz-not-hex".into(),
                antenna: 1,
                time_s: 1.0,
            },
            record(epcs[0], f64::NAN),
            record(epcs[0], f64::INFINITY),
            record(epcs[0], 5.0),
            record(epcs[0], 4.0), // out of order behind 5.0
        ];
        let outcome = ingest.ingest_records(0, &hostile);
        assert_eq!(outcome.accepted, 1);
        assert_eq!(outcome.rejected, 4);
        let counters = ingest.counters();
        assert_eq!(counters.adapter_rejects, 3, "bad hex + NaN + inf");
        assert_eq!(counters.merge_rejects, 1, "the out-of-order record");
        assert_eq!(counters.events_ingested, 1);
        ingest.detach(0);
        ingest.finish();
        let report = ingest.into_report();
        // Only the one clean record (t=5.0) reached the tracker.
        assert_eq!(report.counters.events_released, 1);
        assert_eq!(report.transitions.len(), 1);
    }

    #[test]
    fn queries_answer_from_released_state() {
        let (site, registry, epcs) = world();
        let adapters: Vec<_> = (0..2)
            .map(|r| WireEventAdapter::new(r, epcs.iter().copied()))
            .collect();
        let ingest = SharedIngest::new(&site, &registry, &adapters, 100.0);
        ingest.attach(0).expect("lane 0");
        ingest.attach(1).expect("lane 1");
        ingest.ingest_records(0, &[record(epcs[0], 1.0)]);
        // Lane 1 silent: nothing released yet.
        assert_eq!(ingest.location_of(&epcs[0].to_string()), Ok(None));
        ingest.ingest_records(1, &[record(epcs[0], 3.0)]);
        // Floor is now min(1.0, 3.0) = 1.0: still nothing strictly below.
        ingest.ingest_records(0, &[record(epcs[1], 2.5)]);
        // Lane 0 watermark 2.5, lane 1 watermark 3.0: t=1.0 released.
        let location = ingest.location_of(&epcs[0].to_string()).expect("known epc");
        assert_eq!(location, Some((0, "dock".to_owned())));
        assert!(ingest.location_of("junk").is_err());
        assert!(ingest
            .location_of("000000000000000000000FFF")
            .unwrap_err()
            .contains("not a registered tag"));
        let history = ingest.zone_history(&epcs[0].to_string()).expect("history");
        assert_eq!(history.len(), 1);
        assert_eq!(history[0].1, "dock");
    }
}
