//! Reliability techniques for RFID-based object tracking — the primary
//! contribution of the DSN 2007 paper, as a reusable library.
//!
//! The paper's central idea is small: a tracked object is identified if
//! *any one* of its **read opportunities** succeeds, where a read
//! opportunity is one (tag, antenna) combination in the same portal. Under
//! an independence assumption the expected tracking reliability is
//!
//! ```text
//! R_C = 1 - (1 - P_1)(1 - P_2) ... (1 - P_n)
//! ```
//!
//! and redundancy — more tags per object, more antennas per portal — adds
//! opportunities. The library packages that model plus everything needed
//! to *use* it against measurements:
//!
//! * [`Probability`], [`ReadOpportunity`], [`combined_reliability`] — the
//!   analytical model itself,
//! * [`ReliabilityEstimate`] — Bernoulli estimation with Wilson intervals
//!   from repeated trials, and [`ModelComparison`] for the paper's
//!   R_M-vs-R_C tables,
//! * [`RedundancyPlan`] / [`cheapest_plan`] — search for the least-cost
//!   redundancy configuration meeting a target reliability,
//! * [`PlacementAdvisor`] — rank tag placements, avoid the worst locations
//!   (the paper's Table 1 guidance),
//! * [`min_safe_spacing`] — the minimum inter-tag distance from a measured
//!   spacing-reliability curve (the paper's Figure 4 guidance),
//! * [`tracking_outcome`] and friends — bridge helpers that turn raw
//!   simulator output into object/person tracking outcomes.
//!
//! # Examples
//!
//! ```
//! use rfid_core::{combined_reliability, Probability};
//!
//! // Table 3: one tag read at 80%; two tags (front 87%, side 83%)
//! // predict 1 - 0.13 * 0.17 = 97.8%.
//! let front = Probability::new(0.87)?;
//! let side = Probability::new(0.83)?;
//! let r_c = combined_reliability([front, side]);
//! assert!((r_c.value() - 0.9779).abs() < 1e-4);
//! # Ok::<(), rfid_core::ProbabilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod correlation;
mod estimate;
mod model;
mod placement;
mod planner;
mod probability;
mod spacing;
mod tracking;

pub use correlation::{CommonCauseModel, JointOutcomes};
pub use estimate::{ModelComparison, ReliabilityEstimate};
pub use model::{combined_reliability, k_of_n_reliability, ReadOpportunity};
pub use placement::{PlacementAdvisor, PlacementReport};
pub use planner::{
    cheapest_plan, cheapest_plan_conservative, CostModel, PlanLimits, RedundancyPlan,
};
pub use probability::{Probability, ProbabilityError};
pub use spacing::min_safe_spacing;
pub use tracking::{
    antenna_opportunity_outcome, estimate_over_trials, estimate_reliability_par, tracking_outcome,
};
