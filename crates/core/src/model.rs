//! The analytical reliability model (Section 4 of the paper).

use crate::Probability;
use serde::{Deserialize, Serialize};

/// One read opportunity: a (tag, antenna) combination in the same portal
/// area, with its single-opportunity read reliability.
///
/// "We define every combination of tag and antenna in the same area as a
/// read opportunity."
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadOpportunity {
    /// Human-readable label, e.g. "front tag x antenna 1".
    pub label: String,
    /// Probability this opportunity alone identifies the object.
    pub reliability: Probability,
}

impl ReadOpportunity {
    /// Creates a labelled opportunity.
    #[must_use]
    pub fn new(label: impl Into<String>, reliability: Probability) -> Self {
        Self {
            label: label.into(),
            reliability,
        }
    }
}

/// The paper's expected object-tracking reliability under independent read
/// opportunities:
///
/// `R_C = 1 - (1 - P_1)(1 - P_2)...(1 - P_n)`.
///
/// An empty opportunity set yields zero (no way to see the object).
///
/// # Examples
///
/// ```
/// use rfid_core::{combined_reliability, Probability};
///
/// let ps = [Probability::new(0.75)?, Probability::new(0.75)?];
/// assert!((combined_reliability(ps).value() - 0.9375).abs() < 1e-12);
/// # Ok::<(), rfid_core::ProbabilityError>(())
/// ```
#[must_use]
pub fn combined_reliability<I>(opportunities: I) -> Probability
where
    I: IntoIterator<Item = Probability>,
{
    let miss_all = opportunities
        .into_iter()
        .fold(1.0, |acc, p| acc * p.complement().value());
    Probability::clamped(1.0 - miss_all)
}

/// Probability that at least `k` of the independent opportunities succeed.
///
/// `k = 1` reduces to [`combined_reliability`]; higher `k` models voting
/// schemes (e.g. requiring two tag sightings before raising an alarm, a
/// false-positive counter-measure).
///
/// # Panics
///
/// Panics if `k == 0` (at least zero successes is trivially certain and
/// almost always a caller bug).
#[must_use]
pub fn k_of_n_reliability(k: usize, probabilities: &[Probability]) -> Probability {
    assert!(k > 0, "k must be at least 1");
    let n = probabilities.len();
    if k > n {
        return Probability::ZERO;
    }
    // Dynamic program over tags: dp[j] = P(exactly j successes so far).
    let mut dp = vec![0.0f64; n + 1];
    dp[0] = 1.0;
    for (i, p) in probabilities.iter().enumerate() {
        let p = p.value();
        for j in (0..=i + 1).rev() {
            let with = if j > 0 { dp[j - 1] * p } else { 0.0 };
            let without = dp[j] * (1.0 - p);
            dp[j] = with + without;
        }
    }
    Probability::clamped(dp[k..].iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn paper_table3_predictions() {
        // Table 3: front 87% + side(closer) 83% -> ~97.8%; the paper
        // reports R_C = 98% for "front + side (good)".
        let rc = combined_reliability([p(0.87), p(0.83)]);
        assert!((rc.value() - 0.9779).abs() < 1e-4);

        // Two antennas x one front tag at 87%: 1 - 0.13^2 = 98.3%.
        let rc2 = combined_reliability([p(0.87), p(0.87)]);
        assert!((rc2.value() - 0.9831).abs() < 1e-4);
    }

    #[test]
    fn paper_table4_four_tags_reach_near_certainty() {
        // Four tags per person (front/back/sides): 75%, 75%, 90%, 10%.
        let rc = combined_reliability([p(0.75), p(0.75), p(0.90), p(0.10)]);
        assert!(rc.value() > 0.994, "R_C = {rc}");
    }

    #[test]
    fn empty_set_has_zero_reliability() {
        assert_eq!(combined_reliability(std::iter::empty()), Probability::ZERO);
    }

    #[test]
    fn single_opportunity_is_itself() {
        assert_eq!(combined_reliability([p(0.63)]).value(), 0.63);
    }

    #[test]
    fn k_of_n_boundary_cases() {
        let ps = [p(0.9), p(0.8), p(0.7)];
        // k = 1 matches the union formula.
        assert!(
            (k_of_n_reliability(1, &ps).value() - combined_reliability(ps).value()).abs() < 1e-12
        );
        // k = n is the product.
        assert!((k_of_n_reliability(3, &ps).value() - 0.9 * 0.8 * 0.7).abs() < 1e-12);
        // k > n is impossible.
        assert_eq!(k_of_n_reliability(4, &ps), Probability::ZERO);
    }

    #[test]
    fn k_of_n_known_value() {
        // Three fair coins, at least two heads: 0.5.
        let ps = [p(0.5), p(0.5), p(0.5)];
        assert!((k_of_n_reliability(2, &ps).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn k_zero_panics() {
        let _ = k_of_n_reliability(0, &[]);
    }

    #[test]
    fn opportunity_labels_survive() {
        let opp = ReadOpportunity::new("front x ant-1", p(0.87));
        assert_eq!(opp.label, "front x ant-1");
    }

    proptest! {
        #[test]
        fn adding_an_opportunity_never_hurts(
            base in proptest::collection::vec(0.0f64..=1.0, 0..8),
            extra in 0.0f64..=1.0,
        ) {
            let ps: Vec<Probability> = base.iter().map(|&v| p(v)).collect();
            let before = combined_reliability(ps.clone());
            let mut more = ps;
            more.push(p(extra));
            let after = combined_reliability(more);
            prop_assert!(after.value() >= before.value() - 1e-12);
        }

        #[test]
        fn result_is_a_probability(values in proptest::collection::vec(0.0f64..=1.0, 0..12)) {
            let rc = combined_reliability(values.iter().map(|&v| p(v)));
            prop_assert!((0.0..=1.0).contains(&rc.value()));
        }

        #[test]
        fn dominates_the_best_single_opportunity(values in proptest::collection::vec(0.0f64..=1.0, 1..10)) {
            let best = values.iter().cloned().fold(0.0, f64::max);
            let rc = combined_reliability(values.iter().map(|&v| p(v)));
            prop_assert!(rc.value() >= best - 1e-12);
        }

        #[test]
        fn k_of_n_is_monotone_in_k(values in proptest::collection::vec(0.0f64..=1.0, 1..8)) {
            let ps: Vec<Probability> = values.iter().map(|&v| p(v)).collect();
            let mut last = 1.0;
            for k in 1..=ps.len() {
                let r = k_of_n_reliability(k, &ps).value();
                prop_assert!(r <= last + 1e-12);
                last = r;
            }
        }
    }
}
