//! Reliability estimation from repeated trials.

use crate::Probability;
use rfid_stats::{Interval, Proportion, StatsError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A measured reliability: successes over trials, with interval estimates.
///
/// This is the "R_M" of the paper's tables.
///
/// # Examples
///
/// ```
/// use rfid_core::ReliabilityEstimate;
///
/// // Table 1, "Top": read in 3.5 of 12 passes, about 29%.
/// let est = ReliabilityEstimate::from_counts(7, 24)?;
/// assert!((est.point().value() - 0.2917).abs() < 1e-3);
/// let ci = est.wilson_95();
/// assert!(ci.low > 0.1 && ci.high < 0.55);
/// # Ok::<(), rfid_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReliabilityEstimate {
    successes: u64,
    trials: u64,
}

impl ReliabilityEstimate {
    /// Builds an estimate from success/trial counts.
    ///
    /// # Errors
    ///
    /// Returns a [`StatsError`] if `trials == 0` or `successes > trials`.
    pub fn from_counts(successes: u64, trials: u64) -> Result<Self, StatsError> {
        // Validate through Proportion's rules.
        Proportion::new(successes, trials)?;
        Ok(Self { successes, trials })
    }

    /// Builds an estimate by running `trials` Bernoulli trials of `f`,
    /// passing each trial's index as a seed.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn from_trials<F: FnMut(u64) -> bool>(trials: u64, mut f: F) -> Self {
        assert!(trials > 0, "at least one trial is required");
        let successes = (0..trials).filter(|&i| f(i)).count() as u64;
        Self { successes, trials }
    }

    /// [`ReliabilityEstimate::from_trials`] fanned across the executor's
    /// threads. Trial `i` still receives seed `i`, so the estimate is
    /// identical to the serial path for any thread count — and the count
    /// is folded block-wise, so memory stays O(1) in `trials` instead of
    /// materializing a per-trial vector.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0`.
    pub fn from_trials_par<F>(executor: &rfid_sim::TrialExecutor, trials: u64, f: F) -> Self
    where
        F: Fn(u64) -> bool + Sync,
    {
        assert!(trials > 0, "at least one trial is required");
        let successes = executor.run_fold(
            trials,
            || 0u64,
            |acc, i| acc + u64::from(f(i)),
            |a, b| a + b,
        );
        Self { successes, trials }
    }

    /// Number of successes.
    #[must_use]
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate as a [`Probability`].
    #[must_use]
    pub fn point(&self) -> Probability {
        Probability::clamped(self.successes as f64 / self.trials as f64)
    }

    /// 95% Wilson score interval.
    #[must_use]
    pub fn wilson_95(&self) -> Interval {
        Proportion::new(self.successes, self.trials)
            .expect("counts validated at construction")
            .wilson_interval(0.95)
    }

    /// Pools this estimate with another measured under the same conditions.
    #[must_use]
    pub fn pooled(&self, other: &ReliabilityEstimate) -> ReliabilityEstimate {
        ReliabilityEstimate {
            successes: self.successes + other.successes,
            trials: self.trials + other.trials,
        }
    }
}

impl fmt::Display for ReliabilityEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0}% ({}/{})",
            self.point().value() * 100.0,
            self.successes,
            self.trials
        )
    }
}

/// A measured-vs-calculated pair, the row format of the paper's Tables 3-5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelComparison {
    /// Row label (e.g. "2 tags, front + side").
    pub label: String,
    /// Measured reliability R_M.
    pub measured: ReliabilityEstimate,
    /// Calculated (analytical) reliability R_C.
    pub calculated: Probability,
}

impl ModelComparison {
    /// Creates a comparison row.
    #[must_use]
    pub fn new(
        label: impl Into<String>,
        measured: ReliabilityEstimate,
        calculated: Probability,
    ) -> Self {
        Self {
            label: label.into(),
            measured,
            calculated,
        }
    }

    /// Measured minus calculated (negative when the independence model is
    /// optimistic, as the paper finds for antenna redundancy).
    #[must_use]
    pub fn gap(&self) -> f64 {
        self.measured.point().value() - self.calculated.value()
    }

    /// Whether the calculated value falls inside the measured estimate's
    /// 95% interval — i.e. the independence model is statistically
    /// consistent with the measurement.
    #[must_use]
    pub fn model_consistent(&self) -> bool {
        let ci = self.measured.wilson_95();
        ci.contains(self.calculated.value())
    }
}

impl fmt::Display for ModelComparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: R_M = {}, R_C = {}",
            self.label, self.measured, self.calculated
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_counts_validates() {
        assert!(ReliabilityEstimate::from_counts(5, 4).is_err());
        assert!(ReliabilityEstimate::from_counts(0, 0).is_err());
        assert!(ReliabilityEstimate::from_counts(0, 10).is_ok());
    }

    #[test]
    fn from_trials_counts_successes() {
        let est = ReliabilityEstimate::from_trials(10, |i| i % 2 == 0);
        assert_eq!(est.successes(), 5);
        assert_eq!(est.trials(), 10);
        assert_eq!(est.point().value(), 0.5);
    }

    #[test]
    fn trials_receive_distinct_seeds() {
        let mut seen = Vec::new();
        let _ = ReliabilityEstimate::from_trials(5, |i| {
            seen.push(i);
            true
        });
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pooling_adds() {
        let a = ReliabilityEstimate::from_counts(8, 10).unwrap();
        let b = ReliabilityEstimate::from_counts(9, 10).unwrap();
        let pooled = a.pooled(&b);
        assert_eq!(pooled.successes(), 17);
        assert_eq!(pooled.trials(), 20);
    }

    #[test]
    fn display_shows_counts() {
        let est = ReliabilityEstimate::from_counts(29, 100).unwrap();
        assert_eq!(est.to_string(), "29% (29/100)");
    }

    #[test]
    fn comparison_gap_and_consistency() {
        // Paper Table 3, antennas row: measured 86% (call it 86/100),
        // calculated 96% — the model is optimistic, gap negative.
        let measured = ReliabilityEstimate::from_counts(86, 100).unwrap();
        let calc = Probability::new(0.96).unwrap();
        let row = ModelComparison::new("2 antennas, 1 tag", measured, calc);
        assert!(row.gap() < 0.0);
        assert!(!row.model_consistent(), "96% lies outside Wilson(86/100)");

        // Tags row: measured 97%, calculated 97% — consistent.
        let measured = ReliabilityEstimate::from_counts(97, 100).unwrap();
        let calc = Probability::new(0.97).unwrap();
        let row = ModelComparison::new("1 antenna, 2 tags", measured, calc);
        assert!(row.model_consistent());
    }

    #[test]
    fn small_sample_intervals_are_wide() {
        // 12 trials, like the paper's object experiments: the interval is
        // honest about how little 12 passes pin down.
        let est = ReliabilityEstimate::from_counts(10, 12).unwrap();
        let ci = est.wilson_95();
        assert!(ci.width() > 0.2, "width = {}", ci.width());
    }
}
