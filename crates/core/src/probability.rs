//! A validated probability newtype.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error returned when constructing a [`Probability`] outside `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbabilityError {
    value: f64,
}

impl fmt::Display for ProbabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a probability in [0, 1]", self.value)
    }
}

impl Error for ProbabilityError {}

/// A probability, statically guaranteed to lie in `[0, 1]`.
///
/// # Examples
///
/// ```
/// use rfid_core::Probability;
///
/// let p = Probability::new(0.87)?;
/// assert_eq!(p.value(), 0.87);
/// assert!((p.complement().value() - 0.13).abs() < 1e-12);
/// assert!(Probability::new(1.2).is_err());
/// # Ok::<(), rfid_core::ProbabilityError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Probability(f64);

impl Probability {
    /// Certain failure.
    pub const ZERO: Probability = Probability(0.0);
    /// Certain success.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`ProbabilityError`] if `value` is NaN or outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, ProbabilityError> {
        if value.is_finite() && (0.0..=1.0).contains(&value) {
            Ok(Probability(value))
        } else {
            Err(ProbabilityError { value })
        }
    }

    /// Creates a probability, clamping out-of-range finite values into
    /// `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    #[must_use]
    pub fn clamped(value: f64) -> Self {
        assert!(!value.is_nan(), "probability must not be NaN");
        Probability(value.clamp(0.0, 1.0))
    }

    /// The underlying value.
    #[must_use]
    pub const fn value(self) -> f64 {
        self.0
    }

    /// `1 - p`.
    #[must_use]
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// Product of two probabilities (probability of both independent
    /// events).
    #[must_use]
    pub fn and(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// Probability of at least one of two independent events.
    #[must_use]
    pub fn or(self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }
}

impl fmt::Display for Probability {
    /// Renders as a percentage with one decimal, like the paper's tables.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl TryFrom<f64> for Probability {
    type Error = ProbabilityError;

    fn try_from(value: f64) -> Result<Self, Self::Error> {
        Probability::new(value)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_validates() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.01).is_err());
        assert!(Probability::new(1.01).is_err());
        assert!(Probability::new(f64::NAN).is_err());
        assert!(Probability::new(f64::INFINITY).is_err());
    }

    #[test]
    fn clamping_saturates() {
        assert_eq!(Probability::clamped(1.7), Probability::ONE);
        assert_eq!(Probability::clamped(-3.0), Probability::ZERO);
        assert_eq!(Probability::clamped(0.5).value(), 0.5);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn clamping_rejects_nan() {
        let _ = Probability::clamped(f64::NAN);
    }

    #[test]
    fn display_matches_paper_style() {
        assert_eq!(Probability::new(0.63).unwrap().to_string(), "63.0%");
        assert_eq!(Probability::ONE.to_string(), "100.0%");
    }

    #[test]
    fn or_is_the_independence_formula() {
        let a = Probability::new(0.8).unwrap();
        let b = Probability::new(0.5).unwrap();
        assert!((a.or(b).value() - 0.9).abs() < 1e-12);
        assert!((a.and(b).value() - 0.4).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn complement_involutes(v in 0.0f64..=1.0) {
            let p = Probability::new(v).unwrap();
            prop_assert!((p.complement().complement().value() - v).abs() < 1e-12);
        }

        #[test]
        fn or_never_decreases(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let pa = Probability::new(a).unwrap();
            let pb = Probability::new(b).unwrap();
            let or = pa.or(pb);
            prop_assert!(or.value() >= pa.value() - 1e-12);
            prop_assert!(or.value() >= pb.value() - 1e-12);
            prop_assert!(or.value() <= 1.0);
        }

        #[test]
        fn and_never_increases(a in 0.0f64..=1.0, b in 0.0f64..=1.0) {
            let pa = Probability::new(a).unwrap();
            let pb = Probability::new(b).unwrap();
            prop_assert!(pa.and(pb).value() <= pa.value() + 1e-12);
        }
    }
}
