//! Minimum safe inter-tag spacing.
//!
//! The paper's Figure 4 sweeps inter-tag distance against tags read and
//! concludes that "depending on orientation, tags require at least 20 to
//! 40 mm spacing between them to operate in a reliable fashion". This
//! module extracts that threshold from a measured spacing-reliability
//! curve.

use crate::Probability;

/// Finds the smallest spacing at which reliability reaches
/// `fraction_of_plateau` of the curve's plateau (the reliability at the
/// largest measured spacing).
///
/// The curve is a set of `(spacing_m, reliability)` samples in any order;
/// physically reliability is non-decreasing in spacing, but measurement
/// noise is tolerated by comparing against the plateau rather than
/// requiring monotonicity.
///
/// Returns `None` if the curve is empty, if `fraction_of_plateau` is not in
/// `(0, 1]`, or if no measured spacing reaches the threshold.
///
/// # Examples
///
/// ```
/// use rfid_core::{min_safe_spacing, Probability};
///
/// // A Figure 4-shaped curve: dead below 10 mm, healthy from 20 mm.
/// let curve = [
///     (0.0003, Probability::new(0.05).unwrap()),
///     (0.004, Probability::new(0.20).unwrap()),
///     (0.010, Probability::new(0.55).unwrap()),
///     (0.020, Probability::new(0.92).unwrap()),
///     (0.040, Probability::new(0.95).unwrap()),
/// ];
/// let safe = min_safe_spacing(&curve, 0.95).unwrap();
/// assert_eq!(safe, 0.020);
/// ```
#[must_use]
pub fn min_safe_spacing(curve: &[(f64, Probability)], fraction_of_plateau: f64) -> Option<f64> {
    if curve.is_empty() || !(0.0..=1.0).contains(&fraction_of_plateau) || fraction_of_plateau == 0.0
    {
        return None;
    }
    let mut sorted: Vec<(f64, Probability)> = curve.to_vec();
    sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("spacings are finite"));
    let plateau = sorted.last()?.1.value();
    let threshold = plateau * fraction_of_plateau;
    // The minimum safe spacing is the smallest spacing from which the curve
    // *stays* at or above the threshold (a single lucky low-spacing sample
    // must not qualify).
    let mut safe_from = None;
    for &(spacing, reliability) in sorted.iter().rev() {
        if reliability.value() >= threshold {
            safe_from = Some(spacing);
        } else {
            break;
        }
    }
    safe_from
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn paper_shaped_curve_gives_twenty_mm() {
        let curve = [
            (0.0003, p(0.1)),
            (0.004, p(0.3)),
            (0.010, p(0.6)),
            (0.020, p(0.93)),
            (0.040, p(0.95)),
        ];
        assert_eq!(min_safe_spacing(&curve, 0.95), Some(0.020));
    }

    #[test]
    fn stricter_threshold_needs_more_spacing() {
        let curve = [(0.010, p(0.6)), (0.020, p(0.90)), (0.040, p(0.95))];
        assert_eq!(min_safe_spacing(&curve, 0.99), Some(0.040));
        assert_eq!(min_safe_spacing(&curve, 0.90), Some(0.020));
    }

    #[test]
    fn unordered_input_is_sorted() {
        let curve = [(0.040, p(0.95)), (0.0003, p(0.1)), (0.020, p(0.93))];
        assert_eq!(min_safe_spacing(&curve, 0.95), Some(0.020));
    }

    #[test]
    fn a_lucky_low_sample_does_not_qualify() {
        // 4 mm happened to measure high once, but 10 mm is bad: the safe
        // spacing must be 20 mm, not 4 mm.
        let curve = [
            (0.004, p(0.96)),
            (0.010, p(0.40)),
            (0.020, p(0.94)),
            (0.040, p(0.95)),
        ];
        assert_eq!(min_safe_spacing(&curve, 0.9), Some(0.020));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(min_safe_spacing(&[], 0.9), None);
        let curve = [(0.02, p(0.9))];
        assert_eq!(min_safe_spacing(&curve, 0.0), None);
        assert_eq!(min_safe_spacing(&curve, 1.5), None);
        // A single point is its own plateau.
        assert_eq!(min_safe_spacing(&curve, 1.0), Some(0.02));
    }

    #[test]
    fn flat_curve_is_safe_from_the_start() {
        let curve = [(0.001, p(0.9)), (0.01, p(0.9)), (0.04, p(0.9))];
        assert_eq!(min_safe_spacing(&curve, 0.95), Some(0.001));
    }
}
