//! Redundancy planning: pick the cheapest configuration that meets a
//! reliability target.
//!
//! The paper evaluates three redundancy levers — tags per object, antennas
//! per portal, readers per portal — and finds tag-level redundancy the most
//! effective, antenna-level second, and reader-level *harmful* without
//! dense-reader mode. The planner encodes those semantics: reader
//! redundancy contributes opportunities only when dense mode is available.

use crate::{combined_reliability, Probability, ReliabilityEstimate};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A redundancy configuration for one tracking portal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RedundancyPlan {
    /// Tags attached to each object.
    pub tags_per_object: usize,
    /// Antennas per portal (driven by one reader in TDMA).
    pub antennas_per_portal: usize,
    /// Readers per portal.
    pub readers_per_portal: usize,
    /// Whether the readers support dense-reader mode.
    pub dense_reader_mode: bool,
}

impl RedundancyPlan {
    /// The paper's baseline: one tag, one antenna, one legacy reader.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            tags_per_object: 1,
            antennas_per_portal: 1,
            readers_per_portal: 1,
            dense_reader_mode: false,
        }
    }

    /// Number of *effective* read opportunities per object.
    ///
    /// Every (tag, antenna) pair is an opportunity; additional readers
    /// multiply opportunities only in dense mode. Without dense mode extra
    /// readers are worse than useless, which we model conservatively as
    /// zero effective opportunities beyond none at all — see
    /// [`RedundancyPlan::is_self_defeating`].
    #[must_use]
    pub fn opportunities(&self) -> usize {
        let readers = if self.dense_reader_mode {
            self.readers_per_portal
        } else {
            1
        };
        self.tags_per_object * self.antennas_per_portal * readers
    }

    /// Whether the plan actively harms reliability: multiple legacy
    /// (non-dense) readers jam each other, the paper's Section 4 finding.
    #[must_use]
    pub fn is_self_defeating(&self) -> bool {
        self.readers_per_portal > 1 && !self.dense_reader_mode
    }

    /// Predicted tracking reliability when every opportunity has the same
    /// single-opportunity reliability `p`.
    ///
    /// Self-defeating plans are scored at a fraction of `p` (interference
    /// takes reliability *below* the baseline, the direction the paper
    /// measured; the exact penalty depends on geometry and is refined by
    /// simulation).
    #[must_use]
    pub fn predicted_reliability(&self, p: Probability) -> Probability {
        if self.is_self_defeating() {
            return Probability::clamped(p.value() * 0.3);
        }
        combined_reliability(std::iter::repeat_n(p, self.opportunities()))
    }

    /// Predicted reliability with distinct per-placement reliabilities:
    /// tag `i` uses `placements[i]`, and every antenna (and dense-mode
    /// reader) replicates each tag's opportunity.
    ///
    /// # Panics
    ///
    /// Panics if `placements` has fewer entries than `tags_per_object`.
    #[must_use]
    pub fn predicted_reliability_with(&self, placements: &[Probability]) -> Probability {
        assert!(
            placements.len() >= self.tags_per_object,
            "need a reliability for each tag placement"
        );
        if self.is_self_defeating() {
            let best = placements[..self.tags_per_object]
                .iter()
                .map(|p| p.value())
                .fold(0.0, f64::max);
            return Probability::clamped(best * 0.3);
        }
        let readers = if self.dense_reader_mode {
            self.readers_per_portal
        } else {
            1
        };
        let replicas = self.antennas_per_portal * readers;
        let opportunities = placements[..self.tags_per_object]
            .iter()
            .flat_map(|&p| std::iter::repeat_n(p, replicas));
        combined_reliability(opportunities)
    }
}

impl fmt::Display for RedundancyPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} tag(s), {} antenna(s), {} reader(s){}",
            self.tags_per_object,
            self.antennas_per_portal,
            self.readers_per_portal,
            if self.dense_reader_mode {
                ", dense mode"
            } else {
                ""
            }
        )
    }
}

/// Unit costs for plan search.
///
/// Defaults reflect the paper's era: tags are nearly free ("$0.05 per EPC
/// Gen 2 tag in volumes"), antennas cost real money, readers much more.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost per tag *per object* — scale by expected object volume.
    pub tag_cost: f64,
    /// Cost per portal antenna.
    pub antenna_cost: f64,
    /// Cost per reader.
    pub reader_cost: f64,
    /// Number of objects that will be tagged (amortizes tag cost).
    pub objects: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            tag_cost: 0.05,
            antenna_cost: 200.0,
            reader_cost: 1500.0,
            objects: 2_000,
        }
    }
}

impl CostModel {
    /// Total cost of a plan.
    #[must_use]
    pub fn cost(&self, plan: &RedundancyPlan) -> f64 {
        self.tag_cost * plan.tags_per_object as f64 * self.objects as f64
            + self.antenna_cost * plan.antennas_per_portal as f64
            + self.reader_cost * plan.readers_per_portal as f64
    }
}

/// Search bounds for [`cheapest_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanLimits {
    /// Maximum tags per object (placement spots are finite).
    pub max_tags: usize,
    /// Maximum antennas per portal (the AR400 drives four).
    pub max_antennas: usize,
    /// Maximum readers per portal.
    pub max_readers: usize,
    /// Whether dense-reader-mode hardware is available to the deployment.
    pub dense_mode_available: bool,
}

impl Default for PlanLimits {
    fn default() -> Self {
        Self {
            max_tags: 4,
            max_antennas: 4,
            max_readers: 2,
            dense_mode_available: false,
        }
    }
}

/// Finds the least-cost plan whose predicted reliability (from per-placement
/// reliabilities, best placements first) meets `target`.
///
/// Returns `None` if no plan within `limits` reaches the target.
/// Self-defeating plans (multiple legacy readers) are never selected.
///
/// # Examples
///
/// ```
/// use rfid_core::{cheapest_plan, CostModel, PlanLimits, Probability};
///
/// // Placements measured like the paper's Table 1 (best first).
/// let placements = [
///     Probability::new(0.87).unwrap(),
///     Probability::new(0.83).unwrap(),
///     Probability::new(0.63).unwrap(),
///     Probability::new(0.29).unwrap(),
/// ];
/// let plan = cheapest_plan(
///     Probability::new(0.99).unwrap(),
///     &placements,
///     &CostModel::default(),
///     &PlanLimits::default(),
/// ).expect("a plan exists");
/// // Tags are cheap relative to antennas at this volume, so the plan
/// // leans on tag redundancy.
/// assert!(plan.tags_per_object >= 2);
/// ```
#[must_use]
pub fn cheapest_plan(
    target: Probability,
    placements: &[Probability],
    costs: &CostModel,
    limits: &PlanLimits,
) -> Option<RedundancyPlan> {
    let mut best: Option<(f64, RedundancyPlan)> = None;
    let max_tags = limits.max_tags.min(placements.len());
    for tags in 1..=max_tags {
        for antennas in 1..=limits.max_antennas {
            for readers in 1..=limits.max_readers {
                for dense in [false, true] {
                    if dense && !limits.dense_mode_available {
                        continue;
                    }
                    let plan = RedundancyPlan {
                        tags_per_object: tags,
                        antennas_per_portal: antennas,
                        readers_per_portal: readers,
                        dense_reader_mode: dense,
                    };
                    if plan.is_self_defeating() {
                        continue;
                    }
                    if plan.predicted_reliability_with(placements).value() < target.value() {
                        continue;
                    }
                    let cost = costs.cost(&plan);
                    if best.is_none_or(|(c, _)| cost < c) {
                        best = Some((cost, plan));
                    }
                }
            }
        }
    }
    best.map(|(_, plan)| plan)
}

/// Like [`cheapest_plan`], but plans against each placement's 95% Wilson
/// *lower bound* rather than its point estimate, so that small-sample
/// optimism (the paper's cells have as few as 12 trials) cannot select an
/// under-provisioned deployment. The returned plan meets `target` even if
/// every placement is at the pessimistic edge of its confidence interval.
#[must_use]
pub fn cheapest_plan_conservative(
    target: Probability,
    placements: &[ReliabilityEstimate],
    costs: &CostModel,
    limits: &PlanLimits,
) -> Option<RedundancyPlan> {
    let lower_bounds: Vec<Probability> = placements
        .iter()
        .map(|estimate| Probability::clamped(estimate.wilson_95().low))
        .collect();
    cheapest_plan(target, &lower_bounds, costs, limits)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn baseline_has_one_opportunity() {
        let plan = RedundancyPlan::baseline();
        assert_eq!(plan.opportunities(), 1);
        assert!(!plan.is_self_defeating());
        assert_eq!(plan.predicted_reliability(p(0.8)).value(), 0.8);
    }

    #[test]
    fn paper_configurations() {
        let two_tags = RedundancyPlan {
            tags_per_object: 2,
            ..RedundancyPlan::baseline()
        };
        // 1 - 0.2^2 = 0.96 for p = 0.8.
        assert!((two_tags.predicted_reliability(p(0.8)).value() - 0.96).abs() < 1e-12);

        let two_by_two = RedundancyPlan {
            tags_per_object: 2,
            antennas_per_portal: 2,
            ..RedundancyPlan::baseline()
        };
        assert_eq!(two_by_two.opportunities(), 4);
        assert!(two_by_two.predicted_reliability(p(0.8)).value() > 0.998);
    }

    #[test]
    fn legacy_reader_redundancy_is_self_defeating() {
        let plan = RedundancyPlan {
            readers_per_portal: 2,
            ..RedundancyPlan::baseline()
        };
        assert!(plan.is_self_defeating());
        assert!(
            plan.predicted_reliability(p(0.8)).value() < 0.8,
            "two legacy readers must score below the single-reader baseline"
        );
        let dense = RedundancyPlan {
            dense_reader_mode: true,
            ..plan
        };
        assert!(!dense.is_self_defeating());
        assert_eq!(dense.opportunities(), 2);
    }

    #[test]
    fn placement_aware_prediction_uses_best_first() {
        let plan = RedundancyPlan {
            tags_per_object: 2,
            ..RedundancyPlan::baseline()
        };
        let rc = plan.predicted_reliability_with(&[p(0.87), p(0.83)]);
        assert!((rc.value() - 0.9779).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "need a reliability for each tag placement")]
    fn placement_count_is_validated() {
        let plan = RedundancyPlan {
            tags_per_object: 3,
            ..RedundancyPlan::baseline()
        };
        let _ = plan.predicted_reliability_with(&[p(0.9)]);
    }

    #[test]
    fn cheapest_plan_prefers_cheap_tags_at_volume() {
        let placements = [p(0.87), p(0.83), p(0.63), p(0.29)];
        let plan = cheapest_plan(
            p(0.99),
            &placements,
            &CostModel::default(),
            &PlanLimits::default(),
        )
        .expect("achievable");
        assert!(plan.tags_per_object >= 2);
        assert_eq!(plan.readers_per_portal, 1);
    }

    #[test]
    fn expensive_tags_shift_to_antennas() {
        // If tags were absurdly expensive per object (e.g. hard-case
        // mounting), antennas win.
        let placements = [p(0.87), p(0.83)];
        let costs = CostModel {
            tag_cost: 50.0,
            antenna_cost: 200.0,
            objects: 2_000,
            ..CostModel::default()
        };
        let plan = cheapest_plan(p(0.98), &placements, &costs, &PlanLimits::default())
            .expect("achievable");
        assert_eq!(plan.tags_per_object, 1);
        assert!(plan.antennas_per_portal >= 2);
    }

    #[test]
    fn conservative_planning_never_under_provisions() {
        // 11/12 front, 10/12 side: points say ~92%/83%, but at n = 12 the
        // Wilson lower bounds are ~65%/55%.
        let measured = [
            ReliabilityEstimate::from_counts(11, 12).unwrap(),
            ReliabilityEstimate::from_counts(10, 12).unwrap(),
        ];
        let points: Vec<Probability> = measured.iter().map(|e| e.point()).collect();
        let costs = CostModel::default();
        let limits = PlanLimits::default();
        let target = p(0.99);
        let optimistic = cheapest_plan(target, &points, &costs, &limits).expect("achievable");
        let conservative =
            cheapest_plan_conservative(target, &measured, &costs, &limits).expect("achievable");
        assert!(
            conservative.opportunities() >= optimistic.opportunities(),
            "conservative {conservative} vs optimistic {optimistic}"
        );
        // And the conservative plan still meets the target at the lower
        // bounds.
        let lows: Vec<Probability> = measured
            .iter()
            .map(|e| Probability::clamped(e.wilson_95().low))
            .collect();
        assert!(conservative.predicted_reliability_with(&lows).value() >= 0.99);
    }

    #[test]
    fn conservative_converges_to_point_with_big_samples() {
        // At n = 10000 the interval is tight: same plan either way.
        let measured = [
            ReliabilityEstimate::from_counts(8700, 10000).unwrap(),
            ReliabilityEstimate::from_counts(8300, 10000).unwrap(),
        ];
        let points: Vec<Probability> = measured.iter().map(|e| e.point()).collect();
        let costs = CostModel::default();
        let limits = PlanLimits::default();
        let target = p(0.99);
        assert_eq!(
            cheapest_plan(target, &points, &costs, &limits),
            cheapest_plan_conservative(target, &measured, &costs, &limits)
        );
    }

    #[test]
    fn unreachable_target_returns_none() {
        let placements = [p(0.1)];
        let limits = PlanLimits {
            max_tags: 1,
            max_antennas: 1,
            max_readers: 1,
            dense_mode_available: false,
        };
        assert_eq!(
            cheapest_plan(p(0.999), &placements, &CostModel::default(), &limits),
            None
        );
    }

    #[test]
    fn dense_mode_unlocks_reader_redundancy() {
        let placements = [p(0.6)];
        let limits = PlanLimits {
            max_tags: 1,
            max_antennas: 1,
            max_readers: 3,
            dense_mode_available: true,
        };
        // Only reader redundancy can reach the target here.
        let plan = cheapest_plan(p(0.9), &placements, &CostModel::default(), &limits)
            .expect("achievable with dense readers");
        assert!(plan.dense_reader_mode);
        assert!(plan.readers_per_portal >= 2);
    }

    #[test]
    fn display_is_informative() {
        let plan = RedundancyPlan {
            tags_per_object: 2,
            antennas_per_portal: 2,
            readers_per_portal: 1,
            dense_reader_mode: false,
        };
        assert_eq!(plan.to_string(), "2 tag(s), 2 antenna(s), 1 reader(s)");
    }
}
