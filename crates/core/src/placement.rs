//! Tag-placement analysis.
//!
//! The paper's Table 1 shows a 3x spread between the best (front, 87%) and
//! worst (top, 29%) tag locations on the same object, and concludes that
//! "determining and avoiding the worst case locations can greatly improve
//! average reliability". This module turns a set of per-location
//! measurements into that guidance.

use crate::{combined_reliability, Probability, ReliabilityEstimate};
use serde::{Deserialize, Serialize};

/// Ranks measured tag placements and recommends which to use and avoid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PlacementAdvisor {
    placements: Vec<(String, ReliabilityEstimate)>,
}

/// The advisor's output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementReport {
    /// Placements ordered best to worst.
    pub ranked: Vec<(String, Probability)>,
    /// Mean reliability across all placements (random placement).
    pub average_all: Probability,
    /// Mean reliability after dropping the worst placement.
    pub average_avoiding_worst: Probability,
    /// The single best placement.
    pub best: String,
    /// The placement to avoid.
    pub worst: String,
    /// Recommended pair for two-tag redundancy (the two best placements)
    /// and its predicted combined reliability.
    pub recommended_pair: (String, String, Probability),
}

impl PlacementAdvisor {
    /// Creates an empty advisor.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a measured placement.
    pub fn add(&mut self, label: impl Into<String>, estimate: ReliabilityEstimate) -> &mut Self {
        self.placements.push((label.into(), estimate));
        self
    }

    /// Number of recorded placements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// Whether no placements have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Produces the ranking and recommendations.
    ///
    /// Returns `None` with fewer than two placements (there is nothing to
    /// rank or avoid).
    #[must_use]
    pub fn report(&self) -> Option<PlacementReport> {
        if self.placements.len() < 2 {
            return None;
        }
        let mut ranked: Vec<(String, Probability)> = self
            .placements
            .iter()
            .map(|(label, est)| (label.clone(), est.point()))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("probabilities are finite"));

        let n = ranked.len() as f64;
        let average_all = Probability::clamped(
            rfid_stats::ordered_sum(ranked.iter().map(|(_, p)| p.value())) / n,
        );
        let average_avoiding_worst = Probability::clamped(
            rfid_stats::ordered_sum(ranked[..ranked.len() - 1].iter().map(|(_, p)| p.value()))
                / (n - 1.0),
        );

        let pair_rc = combined_reliability([ranked[0].1, ranked[1].1]);
        Some(PlacementReport {
            best: ranked[0].0.clone(),
            worst: ranked[ranked.len() - 1].0.clone(),
            recommended_pair: (ranked[0].0.clone(), ranked[1].0.clone(), pair_rc),
            average_all,
            average_avoiding_worst,
            ranked,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table1_advisor() -> PlacementAdvisor {
        // Paper Table 1 (12 passes each; counts scaled to match the
        // reported percentages).
        let mut advisor = PlacementAdvisor::new();
        advisor
            .add("front", ReliabilityEstimate::from_counts(87, 100).unwrap())
            .add(
                "side (closer)",
                ReliabilityEstimate::from_counts(83, 100).unwrap(),
            )
            .add(
                "side (farther)",
                ReliabilityEstimate::from_counts(63, 100).unwrap(),
            )
            .add("top", ReliabilityEstimate::from_counts(29, 100).unwrap());
        advisor
    }

    #[test]
    fn ranks_match_the_paper() {
        let report = table1_advisor().report().expect("enough placements");
        assert_eq!(report.best, "front");
        assert_eq!(report.worst, "top");
        assert_eq!(
            report
                .ranked
                .iter()
                .map(|(l, _)| l.as_str())
                .collect::<Vec<_>>(),
            vec!["front", "side (closer)", "side (farther)", "top"]
        );
    }

    #[test]
    fn avoiding_the_worst_location_helps_substantially() {
        let report = table1_advisor().report().unwrap();
        // Average of all four locations: (87+83+63+29)/4 = 65.5%.
        assert!((report.average_all.value() - 0.655).abs() < 1e-9);
        // Dropping "top": (87+83+63)/3 = 77.7% — the paper's headline
        // improvement from avoiding worst-case locations.
        assert!((report.average_avoiding_worst.value() - 0.77666).abs() < 1e-4);
        assert!(report.average_avoiding_worst > report.average_all);
    }

    #[test]
    fn recommended_pair_is_front_plus_closer_side() {
        let report = table1_advisor().report().unwrap();
        let (a, b, rc) = report.recommended_pair;
        assert_eq!((a.as_str(), b.as_str()), ("front", "side (closer)"));
        assert!((rc.value() - 0.9779).abs() < 1e-4);
    }

    #[test]
    fn too_few_placements_yield_no_report() {
        let mut advisor = PlacementAdvisor::new();
        assert!(advisor.report().is_none());
        advisor.add("front", ReliabilityEstimate::from_counts(9, 10).unwrap());
        assert!(advisor.report().is_none());
        assert_eq!(advisor.len(), 1);
        assert!(!advisor.is_empty());
    }

    #[test]
    fn ties_are_handled_stably() {
        let mut advisor = PlacementAdvisor::new();
        advisor
            .add("a", ReliabilityEstimate::from_counts(5, 10).unwrap())
            .add("b", ReliabilityEstimate::from_counts(5, 10).unwrap());
        let report = advisor.report().unwrap();
        assert_eq!(report.average_all.value(), 0.5);
        assert_eq!(report.average_avoiding_worst.value(), 0.5);
    }
}
