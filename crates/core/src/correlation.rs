//! Correlated read opportunities.
//!
//! The paper's Table 3 shows the independence model `R_C` over-predicting
//! antenna redundancy (measured 86% vs. calculated 96%): a tag's dominant
//! failure causes — orientation, mounting, blockage, slow shadowing —
//! persist across both antennas of a portal, so the two opportunities
//! share a *common failure cause*. This module provides the simplest
//! model with that structure and an estimator for it:
//!
//! * with probability `c`, a common-cause state defeats *every*
//!   opportunity in the group (the badly-mounted tag, the fully-blocked
//!   pass);
//! * otherwise each opportunity succeeds independently with its residual
//!   probability `q_i`, chosen so the marginals still equal the measured
//!   single-opportunity reliabilities `p_i = (1 - c) q_i`.

use crate::{combined_reliability, Probability};
use rfid_stats::StatsError;
use serde::{Deserialize, Serialize};

/// The common-cause correlation model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct CommonCauseModel {
    /// Probability of the shared failure state, in `[0, 1)`.
    pub common_failure: Probability,
}

impl CommonCauseModel {
    /// An uncorrelated model (reduces to the paper's `R_C`).
    #[must_use]
    pub fn independent() -> Self {
        Self {
            common_failure: Probability::ZERO,
        }
    }

    /// Group reliability for opportunities with *marginal* reliabilities
    /// `p_i`.
    ///
    /// Each `p_i` is what a single-opportunity experiment measures; the
    /// model decomposes it into the common-cause survival `(1 - c)` and a
    /// residual independent success `q_i = p_i / (1 - c)`. A marginal
    /// exceeding `1 - c` is impossible under the model; it is clamped to
    /// a certain residual (`q_i = 1`), the closest representable point.
    #[must_use]
    pub fn reliability<I>(&self, marginals: I) -> Probability
    where
        I: IntoIterator<Item = Probability>,
    {
        let c = self.common_failure.value();
        if c >= 1.0 {
            return Probability::ZERO;
        }
        let residuals = marginals
            .into_iter()
            .map(|p| Probability::clamped(p.value() / (1.0 - c)));
        let independent_part = combined_reliability(residuals);
        Probability::clamped((1.0 - c) * independent_part.value())
    }

    /// The model's prediction for `n` identical opportunities at marginal
    /// `p` — the portal-with-`n`-antennas case.
    #[must_use]
    pub fn reliability_n(&self, p: Probability, n: usize) -> Probability {
        self.reliability(std::iter::repeat_n(p, n))
    }
}

/// Joint outcomes of two like opportunities observed over repeated trials
/// (the 2x2 contingency table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct JointOutcomes {
    /// Both opportunities succeeded.
    pub both: u64,
    /// Only the first succeeded.
    pub first_only: u64,
    /// Only the second succeeded.
    pub second_only: u64,
    /// Both failed.
    pub neither: u64,
}

impl JointOutcomes {
    /// Records one paired trial.
    pub fn record(&mut self, first: bool, second: bool) {
        match (first, second) {
            (true, true) => self.both += 1,
            (true, false) => self.first_only += 1,
            (false, true) => self.second_only += 1,
            (false, false) => self.neither += 1,
        }
    }

    /// Merges another contingency table in (cell-wise addition, exactly
    /// associative — safe inside block-merged trial folds).
    pub fn merge(&mut self, other: &JointOutcomes) {
        self.both += other.both;
        self.first_only += other.first_only;
        self.second_only += other.second_only;
        self.neither += other.neither;
    }

    /// Total trials.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.both + self.first_only + self.second_only + self.neither
    }

    /// Pooled marginal success probability (the two opportunities are
    /// treated as exchangeable, like a portal's two antennas).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::ZeroTrials`] with no trials.
    pub fn marginal(&self) -> Result<Probability, StatsError> {
        let trials = self.trials();
        if trials == 0 {
            return Err(StatsError::ZeroTrials);
        }
        let successes = 2 * self.both + self.first_only + self.second_only;
        Ok(Probability::clamped(successes as f64 / (2 * trials) as f64))
    }

    /// The phi (Pearson) correlation coefficient of the 2x2 table, in
    /// `[-1, 1]`; zero for independent opportunities.
    ///
    /// Returns `None` when a margin is degenerate (all successes or all
    /// failures on either side).
    #[must_use]
    pub fn phi(&self) -> Option<f64> {
        let (a, b, c, d) = (
            self.both as f64,
            self.first_only as f64,
            self.second_only as f64,
            self.neither as f64,
        );
        let denom = ((a + b) * (c + d) * (a + c) * (b + d)).sqrt();
        if denom == 0.0 {
            return None;
        }
        Some((a * d - b * c) / denom)
    }

    /// Fits the common-cause probability `c` by matching the observed
    /// both-fail frequency: under the model,
    /// `P(both fail) = c + (1 - c) (1 - q)^2` with `q = p / (1 - c)`.
    ///
    /// Returns `None` when no trials were recorded or when the observed
    /// table is *less* correlated than independence (fitted `c` would be
    /// negative — the model cannot represent negative correlation).
    #[must_use]
    pub fn fit_common_cause(&self) -> Option<CommonCauseModel> {
        let trials = self.trials();
        if trials == 0 {
            return None;
        }
        let p = self.marginal().ok()?.value();
        let observed_both_fail = self.neither as f64 / trials as f64;
        let independent_both_fail = (1.0 - p) * (1.0 - p);
        // Tolerance absorbs floating-point wobble at exact independence.
        if observed_both_fail <= independent_both_fail + 1e-9 {
            return None;
        }
        // Monotone in c on [0, 1 - p]: bisect.
        let both_fail = |c: f64| -> f64 {
            let q = (p / (1.0 - c)).min(1.0);
            c + (1.0 - c) * (1.0 - q) * (1.0 - q)
        };
        let (mut lo, mut hi) = (0.0f64, (1.0 - p).max(0.0));
        for _ in 0..60 {
            let mid = (lo + hi) / 2.0;
            if both_fail(mid) < observed_both_fail {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Some(CommonCauseModel {
            common_failure: Probability::clamped((lo + hi) / 2.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn p(v: f64) -> Probability {
        Probability::new(v).unwrap()
    }

    #[test]
    fn zero_common_cause_reduces_to_r_c() {
        let model = CommonCauseModel::independent();
        let marginals = [p(0.87), p(0.83)];
        let expected = combined_reliability(marginals);
        assert!((model.reliability(marginals).value() - expected.value()).abs() < 1e-12);
    }

    #[test]
    fn full_common_cause_caps_at_the_marginal() {
        // If every failure is common-cause (c = 1 - p, q = 1), redundancy
        // buys nothing: n opportunities are exactly as good as one.
        let marginal = p(0.8);
        let model = CommonCauseModel {
            common_failure: p(0.2),
        };
        for n in 1..=4 {
            let r = model.reliability_n(marginal, n).value();
            assert!((r - 0.8).abs() < 1e-12, "n = {n}: {r}");
        }
    }

    #[test]
    fn paper_table3_gap_is_representable() {
        // Paper: single antenna 80%, two antennas measured 86%, R_C 96%.
        // A common-cause share of ~14% reproduces the measured value.
        let model = CommonCauseModel {
            common_failure: p(0.14),
        };
        let two = model.reliability_n(p(0.80), 2).value();
        assert!((two - 0.86).abs() < 0.015, "two antennas: {two}");
    }

    #[test]
    fn joint_outcomes_record_and_marginal() {
        let mut joint = JointOutcomes::default();
        joint.record(true, true);
        joint.record(true, false);
        joint.record(false, true);
        joint.record(false, false);
        assert_eq!(joint.trials(), 4);
        assert!((joint.marginal().unwrap().value() - 0.5).abs() < 1e-12);
        assert_eq!(joint.phi(), Some(0.0), "this table is exactly independent");
    }

    #[test]
    fn empty_table_has_no_marginal_or_fit() {
        let joint = JointOutcomes::default();
        assert!(joint.marginal().is_err());
        assert!(joint.fit_common_cause().is_none());
        assert!(joint.phi().is_none());
    }

    #[test]
    fn fit_recovers_a_known_common_cause() {
        // Simulate the model exactly: c = 0.2, q = 0.9 -> p = 0.72.
        // P(both ok) = 0.8 * 0.81, P(one) = 0.8 * 2*0.9*0.1,
        // P(neither) = 0.2 + 0.8 * 0.01.
        let n = 100_000u64;
        let joint = JointOutcomes {
            both: (0.8 * 0.81 * n as f64) as u64,
            first_only: (0.8 * 0.09 * n as f64) as u64,
            second_only: (0.8 * 0.09 * n as f64) as u64,
            neither: (0.208 * n as f64) as u64,
        };
        let fitted = joint.fit_common_cause().expect("correlated table");
        assert!(
            (fitted.common_failure.value() - 0.2).abs() < 0.01,
            "fitted c = {}",
            fitted.common_failure
        );
    }

    #[test]
    fn independent_tables_fit_no_common_cause() {
        // p = 0.8 independent: both 0.64, each-only 0.16, neither 0.04.
        let joint = JointOutcomes {
            both: 640,
            first_only: 160,
            second_only: 160,
            neither: 40,
        };
        assert!(joint.fit_common_cause().is_none());
    }

    #[test]
    fn positively_correlated_tables_have_positive_phi() {
        let joint = JointOutcomes {
            both: 700,
            first_only: 50,
            second_only: 50,
            neither: 200,
        };
        assert!(joint.phi().unwrap() > 0.3);
        let model = joint.fit_common_cause().expect("correlated");
        assert!(model.common_failure.value() > 0.05);
    }

    proptest! {
        #[test]
        fn correlated_reliability_never_exceeds_independent(
            pv in 0.05f64..0.95,
            c in 0.0f64..0.5,
            n in 1usize..5,
        ) {
            prop_assume!(c < 1.0 - pv);
            let model = CommonCauseModel { common_failure: Probability::clamped(c) };
            let correlated = model.reliability_n(p(pv), n).value();
            let independent = CommonCauseModel::independent()
                .reliability_n(p(pv), n)
                .value();
            prop_assert!(correlated <= independent + 1e-12);
            // Marginal is preserved for n = 1.
            let single = model.reliability_n(p(pv), 1).value();
            prop_assert!((single - pv).abs() < 1e-9);
        }

        #[test]
        fn reliability_is_monotone_in_n(pv in 0.05f64..0.95, c in 0.0f64..0.4) {
            prop_assume!(c < 1.0 - pv);
            let model = CommonCauseModel { common_failure: Probability::clamped(c) };
            let mut last = 0.0;
            for n in 1..=5 {
                let r = model.reliability_n(p(pv), n).value();
                prop_assert!(r >= last - 1e-12);
                last = r;
            }
            // And bounded by the common-cause ceiling.
            prop_assert!(last <= 1.0 - c + 1e-12);
        }

        #[test]
        fn fit_round_trips_on_exact_tables(pv in 0.2f64..0.8, c in 0.02f64..0.3) {
            prop_assume!(c < 1.0 - pv - 0.05);
            let q = pv / (1.0 - c);
            let n = 1_000_000f64;
            let joint = JointOutcomes {
                both: ((1.0 - c) * q * q * n) as u64,
                first_only: ((1.0 - c) * q * (1.0 - q) * n) as u64,
                second_only: ((1.0 - c) * q * (1.0 - q) * n) as u64,
                neither: ((c + (1.0 - c) * (1.0 - q) * (1.0 - q)) * n) as u64,
            };
            if let Some(fitted) = joint.fit_common_cause() {
                prop_assert!((fitted.common_failure.value() - c).abs() < 0.02);
            }
        }
    }
}
