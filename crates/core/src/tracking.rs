//! Bridges from raw simulator output to tracking outcomes.
//!
//! The paper distinguishes *read* reliability (one tag, one antenna) from
//! *tracking* reliability (the system identifies the object while it is in
//! the designated area, via any of its tags at any antenna). These helpers
//! apply those definitions to a [`SimOutput`].

use crate::ReliabilityEstimate;
use rfid_sim::{Scenario, SimOutput};

/// Whether the system tracked an object: at least one of `object_tags`
/// (world tag indices) was read by any reader/antenna.
///
/// # Examples
///
/// ```no_run
/// # let scenario: rfid_sim::Scenario = unimplemented!();
/// let output = rfid_sim::run_scenario(&scenario, 1);
/// // The object carries tags 0 and 1 (front and side).
/// let tracked = rfid_core::tracking_outcome(&output, &[0, 1]);
/// ```
#[must_use]
pub fn tracking_outcome(output: &SimOutput, object_tags: &[usize]) -> bool {
    object_tags.iter().any(|&tag| output.tag_was_read(tag))
}

/// Whether a specific read opportunity succeeded: tag `tag` read by
/// antenna (`reader`, `antenna`).
///
/// Measuring these per-opportunity outcomes is how the paper obtains the
/// `P_i` values it feeds into the analytical model.
#[must_use]
pub fn antenna_opportunity_outcome(
    output: &SimOutput,
    tag: usize,
    reader: usize,
    antenna: usize,
) -> bool {
    output.tag_was_read_by(tag, reader, antenna)
}

/// Runs `trials` independent simulations of `scenario` (seeds
/// `seed0, seed0+1, ...`) and estimates the probability that `outcome`
/// holds — the generic engine behind every R_M in the reproduction.
///
/// # Panics
///
/// Panics if `trials == 0` or the scenario is invalid.
#[must_use]
pub fn estimate_over_trials<F>(
    scenario: &Scenario,
    trials: u64,
    seed0: u64,
    mut outcome: F,
) -> ReliabilityEstimate
where
    F: FnMut(&SimOutput) -> bool,
{
    ReliabilityEstimate::from_trials(trials, |i| {
        let output = rfid_sim::run_scenario(scenario, seed0.wrapping_add(i));
        outcome(&output)
    })
}

/// [`estimate_over_trials`] fanned across the executor's threads, with
/// one [`rfid_sim::ScenarioCache`] shared by every trial. Seeds and
/// results are identical to the serial path for any thread count.
///
/// # Panics
///
/// Panics if `trials == 0` or the scenario is invalid.
#[must_use]
pub fn estimate_reliability_par<F>(
    executor: &rfid_sim::TrialExecutor,
    scenario: &Scenario,
    trials: u64,
    seed0: u64,
    outcome: F,
) -> ReliabilityEstimate
where
    F: Fn(&SimOutput) -> bool + Sync,
{
    let cache = rfid_sim::ScenarioCache::new(scenario);
    ReliabilityEstimate::from_trials_par(executor, trials, |i| {
        let output = rfid_sim::run_scenario_with(scenario, &cache, seed0.wrapping_add(i));
        outcome(&output)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfid_geom::{Pose, Rotation, Vec3};
    use rfid_sim::{Motion, ScenarioBuilder};

    fn facing() -> Rotation {
        Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel")
    }

    fn two_tag_pass() -> Scenario {
        // Tag 0 passes close (readable); tag 1 is far out of range.
        ScenarioBuilder::new()
            .duration_s(3.0)
            .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1)
            .free_tag(Motion::linear(
                Pose::new(Vec3::new(-1.5, 1.0, 1.0), facing()),
                Vec3::new(1.0, 0.0, 0.0),
                0.0,
                3.0,
            ))
            .free_tag(Motion::Static(Pose::new(
                Vec3::new(0.0, 40.0, 1.0),
                facing(),
            )))
            .build()
    }

    #[test]
    fn any_tag_identifies_the_object() {
        let output = rfid_sim::run_scenario(&two_tag_pass(), 5);
        assert!(output.tag_was_read(0));
        assert!(!output.tag_was_read(1));
        // Object carrying both tags is tracked through tag 0 alone.
        assert!(tracking_outcome(&output, &[0, 1]));
        // An object carrying only the unreadable tag is missed.
        assert!(!tracking_outcome(&output, &[1]));
        // An untagged object is never tracked.
        assert!(!tracking_outcome(&output, &[]));
    }

    #[test]
    fn opportunity_outcomes_are_per_antenna() {
        let output = rfid_sim::run_scenario(&two_tag_pass(), 5);
        assert_eq!(
            antenna_opportunity_outcome(&output, 0, 0, 0),
            output.tag_was_read_by(0, 0, 0)
        );
        assert!(!antenna_opportunity_outcome(&output, 1, 0, 0));
    }

    #[test]
    fn estimation_over_trials_is_deterministic_and_sane() {
        let scenario = two_tag_pass();
        let est_a = estimate_over_trials(&scenario, 10, 100, |o| tracking_outcome(o, &[0]));
        let est_b = estimate_over_trials(&scenario, 10, 100, |o| tracking_outcome(o, &[0]));
        assert_eq!(est_a, est_b);
        assert!(est_a.point().value() > 0.5, "close pass should mostly read");
        let miss = estimate_over_trials(&scenario, 10, 100, |o| tracking_outcome(o, &[1]));
        assert_eq!(miss.point().value(), 0.0);
    }

    #[test]
    fn parallel_estimation_matches_serial_for_any_thread_count() {
        let scenario = two_tag_pass();
        let serial = estimate_over_trials(&scenario, 10, 100, |o| tracking_outcome(o, &[0]));
        for threads in [1, 2, 5] {
            let executor = rfid_sim::TrialExecutor::with_threads(threads);
            let parallel = estimate_reliability_par(&executor, &scenario, 10, 100, |o| {
                tracking_outcome(o, &[0])
            });
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }
}
