//! Badge-based access control: people walking through a doorway portal —
//! the paper's human-tracking application. Shows body blocking, the
//! two-abreast degradation, and the four-badge fix.
//!
//! ```text
//! cargo run --release --example access_control
//! ```

use rfid_repro::core::tracking_outcome;
use rfid_repro::experiments::scenarios::{human_pass_scenario, BadgeSpot, HumanPassConfig};
use rfid_repro::experiments::Calibration;
use rfid_repro::sim::run_scenario;
use rfid_repro::stats::BarChart;

const WALKS: u64 = 30;

fn reliability(cal: &Calibration, config: &HumanPassConfig, subject: usize, seed: u64) -> f64 {
    let (scenario, subject_tags) = human_pass_scenario(cal, config);
    let hits = (0..WALKS)
        .filter(|i| {
            let output = run_scenario(&scenario, seed + i);
            tracking_outcome(&output, &subject_tags[subject])
        })
        .count();
    hits as f64 / WALKS as f64
}

fn main() {
    let cal = Calibration::default();
    println!("doorway access control, {WALKS} walk-throughs per configuration\n");

    let mut chart = BarChart::new("badge configurations (detection probability)", 40);

    // One person, one badge in the worst and best spots.
    for (label, spot) in [
        ("1 badge, far hip (worst)", BadgeSpot::SideFarther),
        ("1 badge, front", BadgeSpot::Front),
        ("1 badge, near hip (best)", BadgeSpot::SideCloser),
    ] {
        let p = reliability(&cal, &HumanPassConfig::single(spot), 0, 1);
        chart.bar(label, p);
    }

    // Two badges and four badges.
    let two = HumanPassConfig {
        subjects: 1,
        spots: vec![BadgeSpot::Front, BadgeSpot::Back],
        antennas: 1,
    };
    chart.bar("2 badges front+back", reliability(&cal, &two, 0, 2));
    let four = HumanPassConfig {
        subjects: 1,
        spots: BadgeSpot::ALL.to_vec(),
        antennas: 1,
    };
    chart.bar("4 badges", reliability(&cal, &four, 0, 3));

    // Two people abreast: the farther one is shadowed by the closer one.
    let pair = HumanPassConfig {
        subjects: 2,
        spots: vec![BadgeSpot::Front],
        antennas: 1,
    };
    chart.bar("2 people: closer", reliability(&cal, &pair, 0, 4));
    chart.bar("2 people: farther", reliability(&cal, &pair, 1, 4));

    // The fix the paper recommends: tag redundancy plus a second antenna.
    let pair_fixed = HumanPassConfig {
        subjects: 2,
        spots: BadgeSpot::ALL.to_vec(),
        antennas: 2,
    };
    chart.bar(
        "2 people: farther, 4 badges + 2 ant",
        reliability(&cal, &pair_fixed, 1, 5),
    );

    println!("{chart}");
    println!(
        "the paper's conclusion in action: a single badge is a coin flip at best, \
         and redundancy — especially tag-level — pushes detection toward 100%"
    );
}
