//! The site tracking daemon, end to end: boots `rfid-site-server` on
//! ephemeral ports, dials in synthetic dock-door portals over real TCP,
//! drives the authenticated JSON query surface, shuts down gracefully —
//! and verifies the drained tracker is bit-identical to a batch replay
//! of the same recorded reads.
//!
//! ```text
//! cargo run --release --example site_server
//! ```

use rfid_repro::site_server::self_drive;

fn main() {
    let (portals, tags, steps) = (3, 6, 40);
    println!("booting a site server and {portals} portals over live TCP...");
    match self_drive(portals, tags, steps) {
        Ok(report) => {
            println!(
                "site-server: {} portal sessions drained, {} events, {} transitions",
                report.portals, report.events, report.transitions
            );
            println!("counters: {}", report.counters);
            println!("final zone history matches batch replay");
            println!("graceful shutdown complete");
        }
        Err(message) => {
            eprintln!("site_server example failed: {message}");
            std::process::exit(1);
        }
    }
}
