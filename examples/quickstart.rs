//! Quickstart: build a portal, pass a tagged object through it, and
//! compare the measured tracking reliability against the paper's
//! analytical model.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use rfid_repro::core::{combined_reliability, estimate_over_trials, tracking_outcome, Probability};
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::sim::{Motion, ScenarioBuilder};

fn main() {
    // A portal: one antenna at 1 m height, boresight across the lane.
    // One tag rides past at 1 m/s, 1 m from the antenna, facing it.
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("y and -y are antiparallel");
    let scenario = ScenarioBuilder::new()
        .duration_s(5.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .build();

    // Measure single-tag tracking reliability over 40 independent passes.
    let single = estimate_over_trials(&scenario, 40, 1, |output| tracking_outcome(output, &[0]));
    println!("single tag, single antenna: {single}");

    // The paper's model: a second, independent read opportunity.
    let p = single.point();
    let predicted_two = combined_reliability([p, p]);
    println!(
        "paper's model predicts two independent opportunities reach: {}",
        predicted_two
    );

    // Verify with a second tag on the pass (spaced far beyond coupling).
    let two_tag_scenario = ScenarioBuilder::new()
        .duration_s(5.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.3), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .build();
    let double = estimate_over_trials(&two_tag_scenario, 40, 1, |output| {
        tracking_outcome(output, &[0, 1])
    });
    println!("two tags, measured:         {double}");

    let gap = (double.point().value() - predicted_two.value()).abs();
    println!(
        "model vs measurement gap: {:.1} points — {}",
        gap * 100.0,
        if gap < 0.1 {
            "tag redundancy behaves like independent opportunities, as the paper found"
        } else {
            "correlated failures dominate here"
        }
    );
    let _: Probability = predicted_two;
}
