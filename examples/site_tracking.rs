//! A multi-portal site: a case travels dock door -> aisle gate -> storage
//! gate. Portals map to zones, reads become zone observations, a location
//! tracker answers "where is it now", and the route constraint recovers a
//! portal the case slipped past unread.
//!
//! ```text
//! cargo run --release --example site_tracking
//! ```

use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::sim::{run_scenario, Motion, ScenarioBuilder};
use rfid_repro::track::{LocationTracker, ObjectRegistry, RouteConstraint, Site};

fn main() {
    // Three portals along a 12 m travel path (y = 1 m lane), one reader
    // each. The middle portal's antenna is mounted badly (4 m from the
    // lane), so it misses most passes — the failure the route constraint
    // repairs.
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let mut builder = ScenarioBuilder::new().duration_s(14.0);
    for (x, y_offset) in [(0.0, 0.0), (5.0, -3.0), (10.0, 0.0)] {
        builder = builder.portal_reader(Pose::from_translation(Vec3::new(x, y_offset, 1.0)), 1);
    }
    let scenario = builder
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            14.0,
        ))
        .build();
    let output = run_scenario(&scenario, 12);
    println!("simulated {} reads across 3 portals", output.reads.len());

    // Site wiring: reader i observes zone i.
    let mut site = Site::new();
    let zones: Vec<usize> = ["dock door", "aisle gate", "storage gate"]
        .iter()
        .map(|name| site.add_zone(*name))
        .collect();
    for (reader, &zone) in zones.iter().enumerate() {
        site.assign_portal(reader, 0, zone);
    }

    let mut registry = ObjectRegistry::new();
    let case = registry.register("case-7");
    registry.attach_tag(case, scenario.world.tags[0].epc);

    // Raw observations, possibly with the aisle gate missing.
    let observations = site.observations(&registry, &output.reads);
    let mut seen_zones: Vec<usize> = observations.iter().map(|o| o.zone).collect();
    seen_zones.dedup();
    println!(
        "zones observed directly: {:?}",
        seen_zones
            .iter()
            .map(|&z| site.zone_name(z))
            .collect::<Vec<_>>()
    );

    // Route constraint: dock -> aisle -> storage. If the aisle read was
    // missed, it is inferred from the dock and storage sightings.
    let route = RouteConstraint::new(zones.clone());
    let corrected = route.correct(&observations);
    let inferred: Vec<_> = corrected.iter().filter(|o| o.inferred).collect();
    println!(
        "route constraint inferred {} missed sighting(s)",
        inferred.len()
    );
    for obs in &inferred {
        println!(
            "  inferred: {} at t = {:.1} s",
            site.zone_name(obs.zone),
            obs.time_s
        );
    }

    // Location tracking over the corrected stream.
    let mut tracker = LocationTracker::new(6.0);
    tracker.observe_all(corrected).expect("finite times");
    for t in [1.0, 7.0, 13.0] {
        match tracker.location_of(case, t) {
            Some(zone) => println!("t = {t:>4.1} s: case-7 is at the {}", site.zone_name(zone)),
            None => println!("t = {t:>4.1} s: case-7 location unknown"),
        }
    }
    println!(
        "full history: {} observations ({} direct, {} inferred)",
        tracker.history_of(case).count(),
        tracker.history_of(case).filter(|o| !o.inferred).count(),
        tracker.history_of(case).filter(|o| o.inferred).count(),
    );
}
