//! Drives the AR400-style emulated reader exactly like the paper's Java
//! harness: start buffered (continuous) mode, feed it a simulated portal
//! pass, poll the XML tag list, and post-process into object sightings.
//!
//! ```text
//! cargo run --release --example reader_emulation
//! ```

use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::readerapi::{InMemoryTransport, ReaderClient, ReaderEmulator};
use rfid_repro::sim::{run_scenario, Motion, ScenarioBuilder};
use rfid_repro::track::{ObjectRegistry, SightingPipeline};

fn main() {
    // Simulate a two-tag case passing the portal.
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let scenario = ScenarioBuilder::new()
        .duration_s(5.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 2)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.25), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .build();
    let output = run_scenario(&scenario, 9);
    println!("simulation produced {} raw reads", output.reads.len());

    // Feed the RF truth into the reader emulator and talk to it over the
    // XML wire format, like the paper's software did over HTTP.
    let mut emulator = ReaderEmulator::new();
    let mut client = ReaderClient::new(InMemoryTransport::new(emulator.clone()));
    client
        .start_buffered()
        .expect("reader accepts the mode change");
    client
        .transport_mut()
        .emulator_mut()
        .feed_simulation(&output);

    let status = client.status().expect("status round-trips");
    println!(
        "reader status: mode {:?}, power {} dBm, {} buffered reads",
        status.mode, status.power_dbm, status.buffered
    );

    let records = client.get_tags().expect("tag list round-trips");
    println!(
        "client fetched {} tag records over XML; first few:",
        records.len()
    );
    for record in records.iter().take(3) {
        println!(
            "  epc {} antenna {} at t = {:.2} s",
            record.epc, record.antenna, record.time_s
        );
    }

    // Back-end processing: EPC -> object, burst of reads -> one sighting.
    let mut registry = ObjectRegistry::new();
    let case = registry.register("case-0042");
    for tag in &scenario.world.tags {
        registry.attach_tag(case, tag.epc);
    }
    let sightings = SightingPipeline::new(1.0).process(&registry, &output.reads);
    for sighting in &sightings {
        println!(
            "sighting: {} seen {:.2}-{:.2} s ({} reads, {} antennas, {} tags)",
            registry.name_of(sighting.object),
            sighting.first_s,
            sighting.last_s,
            sighting.reads,
            sighting.antennas.len(),
            sighting.tags.len()
        );
    }

    // The polled path (the paper's read-range methodology).
    emulator.poll_window(Vec::new());
    println!("polled mode after stop-buffered serves an empty list until the next inventory");
}
