//! Streams a live reader session into tracking, end to end: two
//! AR400-style emulated readers served over real TCP sockets, one
//! buffered-mode client session per portal, and every drained XML tag
//! record converted straight into the streaming operator chain
//!
//! ```text
//! wire record -> WireEventAdapter -> ReorderBuffer -> ObservationStream -> LocationTracker
//! ```
//!
//! No intermediate `Vec<ReadEvent>` is ever materialized — zone
//! transitions print the moment the watermark lets them out, while the
//! cases are still mid-corridor. The same reads run through the batch
//! pipeline at the end to show the streamed zone history is identical.
//!
//! ```text
//! cargo run --release --example reader_emulation
//! ```

use rfid_repro::gen2::{ReaderRf, Session};
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::readerapi::{
    serve, BackoffPolicy, ReaderClient, ReaderEmulator, RetryingTransport, ServeOptions,
    TcpTransport, WireEventAdapter,
};
use rfid_repro::sim::{
    run_scenario, Antenna, Motion, ReadEvent, RngStream, ScenarioBuilder, SimReader,
};
use rfid_repro::track::stream::{ObservationStream, Operator, ReorderBuffer};
use rfid_repro::track::{LocationTracker, ObjectRegistry, Site};
use std::net::TcpListener;
use std::sync::Mutex;

/// A dense-mode portal on its own RF channel so the two portals can
/// inventory concurrently (legacy readers sharing a channel jam the
/// downstream portal).
fn dense_portal(x: f64, ports: usize, channel: u8) -> SimReader {
    let antennas = (0..ports)
        .map(|i| {
            let offset = (i as f64 - (ports as f64 - 1.0) / 2.0) * 2.0;
            Antenna::portal(Pose::from_translation(Vec3::new(x + offset, 0.0, 1.0)))
        })
        .collect();
    let mut reader = SimReader::ar400(antennas);
    reader.rf = ReaderRf::dense(channel);
    reader
}

fn main() {
    // Two cases carted down a two-portal corridor: dock then aisle.
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let scenario = ScenarioBuilder::new()
        .duration_s(8.0)
        .session(Session::S0)
        .reader(dense_portal(0.0, 2, 0))
        .reader(dense_portal(4.0, 1, 1))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-1.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            8.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-1.5, 1.0, 1.25), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            8.0,
        ))
        .build();
    let output = run_scenario(&scenario, 21);
    println!("simulation produced {} raw reads", output.reads.len());

    // The tracking world: one registered case per tag, two zones.
    let mut registry = ObjectRegistry::new();
    for (index, tag) in scenario.world.tags.iter().enumerate() {
        let case = registry.register(format!("case-{index}"));
        registry.attach_tag(case, tag.epc);
    }
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    let aisle = site.add_zone("aisle");
    site.assign_portal(0, 0, dock);
    site.assign_portal(0, 1, dock);
    site.assign_portal(1, 0, aisle);

    // One real TCP server per reader, exactly like the paper's harness
    // talking to two AR400s on the LAN.
    let emulators: Vec<Mutex<ReaderEmulator>> =
        (0..2).map(|_| Mutex::new(ReaderEmulator::new())).collect();
    let listeners: Vec<TcpListener> = (0..2)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<_> = listeners
        .iter()
        .map(|l| l.local_addr().expect("bound address"))
        .collect();

    std::thread::scope(|scope| {
        for (listener, emulator) in listeners.iter().zip(&emulators) {
            scope.spawn(move || {
                let options = ServeOptions {
                    max_connections: Some(1),
                    ..ServeOptions::default()
                };
                serve(listener, emulator, options).expect("serve the session");
            });
        }

        // One retrying client session per portal, in buffered mode.
        let mut clients: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(reader, addr)| {
                let tcp = TcpTransport::connect(addr).expect("connect to the reader");
                let mut client = ReaderClient::new(RetryingTransport::new(
                    tcp,
                    BackoffPolicy::immediate(4),
                    RngStream::new(400 + reader as u64),
                ));
                client.start_buffered().expect("enter buffered mode");
                client
            })
            .collect();
        let adapters: Vec<_> = (0..2)
            .map(|reader| WireEventAdapter::for_world(reader, &scenario.world))
            .collect();

        // The streaming data plane. Records drain off the wire, convert,
        // and flow straight through the operators — no batch anywhere.
        let mut reorder: ReorderBuffer<ReadEvent> = ReorderBuffer::new();
        let mut chain = ObservationStream::new(&site, &registry).then(LocationTracker::new(5.0));
        let mut emitted = 0usize;

        let step = 0.5;
        let windows = (scenario.duration_s / step).ceil() as usize + 1;
        let mut next = 0;
        for window in 1..=windows {
            let boundary = window as f64 * step;
            // RF truth reaching each reader during this polling window.
            while next < output.reads.len() && output.reads[next].time_s < boundary {
                let read = &output.reads[next];
                emulators[read.reader]
                    .lock()
                    .expect("feed the emulator")
                    .feed_sim_read(read);
                next += 1;
            }
            // Drain every session; a full drain licenses the watermark.
            for (reader, client) in clients.iter_mut().enumerate() {
                for record in client.get_tags().expect("drain the session") {
                    let event = adapters[reader].convert(&record).expect("wire record");
                    reorder.push(event);
                }
            }
            for event in reorder.advance_watermark(boundary) {
                for transition in chain.push(event) {
                    emitted += 1;
                    println!(
                        "t = {:.2} s  {} {} -> {}",
                        transition.time_s,
                        registry.name_of(transition.object),
                        transition
                            .from
                            .map_or("(new)".to_owned(), |z| site.zone_name(z).to_owned()),
                        site.zone_name(transition.to),
                    );
                }
            }
        }
        for event in reorder.finish() {
            emitted += chain.push(event).len();
        }
        chain.finish();

        // The streamed zone history is the batch pipeline's, exactly.
        let mut batch_tracker = LocationTracker::new(5.0);
        batch_tracker
            .observe_all(site.observations(&registry, &output.reads))
            .expect("finite times");
        assert_eq!(
            chain.second(),
            &batch_tracker,
            "streaming and batch zone histories must be identical"
        );
        println!(
            "{} zone transitions streamed over {} TCP sessions; final history matches batch",
            emitted,
            clients.len(),
        );
        drop(clients); // hang up so the serve threads exit
    });
}
