//! Drives the AR400-style emulated reader exactly like the paper's Java
//! harness: start buffered (continuous) mode, feed it a simulated portal
//! pass, poll the XML tag list, and post-process into object sightings.
//!
//! ```text
//! cargo run --release --example reader_emulation
//! ```

use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::readerapi::{
    counters, BackoffPolicy, FaultPlan, FaultTransport, InMemoryTransport, ReaderClient,
    ReaderEmulator, RetryingTransport,
};
use rfid_repro::sim::{run_scenario, Motion, RngStream, ScenarioBuilder};
use rfid_repro::track::{ObjectRegistry, SightingPipeline};

fn main() {
    // Simulate a two-tag case passing the portal.
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let scenario = ScenarioBuilder::new()
        .duration_s(5.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 2)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.5, 1.0, 1.25), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ))
        .build();
    let output = run_scenario(&scenario, 9);
    println!("simulation produced {} raw reads", output.reads.len());

    // Feed the RF truth into the reader emulator and talk to it over the
    // XML wire format, like the paper's software did over HTTP.
    let mut emulator = ReaderEmulator::new();
    let mut client = ReaderClient::new(InMemoryTransport::new(emulator.clone()));
    client
        .start_buffered()
        .expect("reader accepts the mode change");
    client
        .transport_mut()
        .emulator_mut()
        .feed_simulation(&output);

    let status = client.status().expect("status round-trips");
    println!(
        "reader status: mode {:?}, power {} dBm, {} buffered reads",
        status.mode, status.power_dbm, status.buffered
    );

    let records = client.get_tags().expect("tag list round-trips");
    println!(
        "client fetched {} tag records over XML; first few:",
        records.len()
    );
    for record in records.iter().take(3) {
        println!(
            "  epc {} antenna {} at t = {:.2} s",
            record.epc, record.antenna, record.time_s
        );
    }

    // Back-end processing: EPC -> object, burst of reads -> one sighting.
    let mut registry = ObjectRegistry::new();
    let case = registry.register("case-0042");
    for tag in &scenario.world.tags {
        registry.attach_tag(case, tag.epc);
    }
    let sightings = SightingPipeline::new(1.0).process(&registry, &output.reads);
    for sighting in &sightings {
        println!(
            "sighting: {} seen {:.2}-{:.2} s ({} reads, {} antennas, {} tags)",
            registry.name_of(sighting.object),
            sighting.first_s,
            sighting.last_s,
            sighting.reads,
            sighting.antennas.len(),
            sighting.tags.len()
        );
    }

    // The polled path (the paper's read-range methodology).
    emulator.poll_window(Vec::new());
    println!("polled mode after stop-buffered serves an empty list until the next inventory");

    // The paper's harness ran over a flaky network link to the AR400.
    // Reproduce that: the same session through a seed-deterministic
    // chaos transport (drops, disconnects, garbled and truncated
    // frames, delays), recovered by bounded retry with deterministic
    // backoff. The application code is identical — reliability lives in
    // the transport stack.
    counters::reset();
    let chaos = FaultTransport::new(
        InMemoryTransport::new(ReaderEmulator::new()),
        FaultPlan::noisy(),
        RngStream::new(3),
    );
    let mut hardened = ReaderClient::new(RetryingTransport::new(
        chaos,
        BackoffPolicy::default(),
        RngStream::new(400),
    ));
    hardened
        .start_buffered()
        .expect("retry rides out injected faults");
    // Poll in windows like the paper's harness did, so the chaos layer
    // gets a realistic stream of exchanges to fault.
    let mut recovered = Vec::new();
    for window in output.reads.chunks(1) {
        let emulator = hardened
            .transport_mut()
            .inner_mut()
            .inner_mut()
            .emulator_mut();
        for read in window {
            emulator.feed(rfid_repro::readerapi::TagRecord {
                epc: read.epc.to_string(),
                antenna: (read.antenna + 1) as u8,
                time_s: read.time_s,
            });
        }
        recovered.extend(
            hardened
                .get_tags()
                .expect("the faulted wire still drains every read"),
        );
    }
    let stats = hardened.transport_mut().inner_mut().stats();
    println!(
        "through a noisy wire ({} faults injected: {} drops, {} disconnects, \
         {} garbles, {} truncates, {} delays) the client still drained {} records",
        stats.total_faults(),
        stats.drops,
        stats.disconnects,
        stats.garbles,
        stats.truncates,
        stats.delays,
        recovered.len(),
    );
    assert_eq!(recovered.len(), records.len(), "no read lost to the wire");
    println!("wire counters: {}", counters::snapshot());
}
