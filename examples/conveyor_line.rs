//! Item-level tagging on a conveyor with tight inter-tag spacing: uses the
//! minimum-safe-spacing advisor on simulated Figure 4 curves, then cleans
//! the resulting read stream with the smoothing-window baselines.
//!
//! ```text
//! cargo run --release --example conveyor_line
//! ```

use rfid_repro::core::{min_safe_spacing, Probability};
use rfid_repro::experiments::scenarios::{spacing_scenario, OrientationCase, TAG_COUNT};
use rfid_repro::experiments::Calibration;
use rfid_repro::sim::run_scenario;
use rfid_repro::track::{AdaptiveSmoother, SmoothingWindow};

const PASSES: u64 = 10;

fn main() {
    let cal = Calibration::default();
    println!("conveyor line: 10 item tags per tote, sweeping inter-tag spacing\n");

    // Sweep spacing for the conveyor-realistic orientation (tags facing
    // the side antenna) and find the minimum safe spacing.
    let orientation = OrientationCase::Case6;
    let spacings = [0.002, 0.005, 0.010, 0.015, 0.020, 0.030, 0.040];
    let mut curve = Vec::new();
    for &spacing in &spacings {
        let scenario = spacing_scenario(&cal, spacing, orientation);
        let mean: f64 = (0..PASSES)
            .map(|seed| run_scenario(&scenario, seed).tags_read().len() as f64)
            .sum::<f64>()
            / PASSES as f64;
        println!(
            "  spacing {:>4.0} mm: {:>4.1}/{TAG_COUNT} items read",
            spacing * 1000.0,
            mean
        );
        curve.push((spacing, Probability::clamped(mean / TAG_COUNT as f64)));
    }
    match min_safe_spacing(&curve, 0.9) {
        Some(m) => println!(
            "\nadvisor: keep item tags at least {:.0} mm apart on this line",
            m * 1000.0
        ),
        None => println!("\nadvisor: no safe spacing found in the sweep"),
    }

    // Clean one pass's raw read stream: a tote dwelling in the read zone
    // produces intermittent reads that the smoothing window turns into
    // one presence interval per item.
    let scenario = spacing_scenario(&cal, 0.040, orientation);
    let output = run_scenario(&scenario, 3);
    println!("\nraw reads in one pass: {}", output.reads.len());
    let fixed = SmoothingWindow::new(0.5);
    let adaptive = AdaptiveSmoother::default();
    for tag in 0..3 {
        let times: Vec<f64> = output
            .reads
            .iter()
            .filter(|r| r.tag == tag)
            .map(|r| r.time_s)
            .collect();
        let fixed_intervals = fixed.smooth(&times);
        let adaptive_intervals = adaptive.smooth(&times);
        println!(
            "  item {tag}: {} reads -> {} presence interval(s) fixed, {} adaptive",
            times.len(),
            fixed_intervals.len(),
            adaptive_intervals.len()
        );
    }
    println!(
        "\nsoftware cleaning bridges dropouts but cannot conjure reads for a tag \
         that never powered up — which is why the paper reaches for physical \
         redundancy"
    );
}
