//! A dock-door portal for case-level shipment tracking — the paper's
//! warehouse motivation. Compares redundancy plans on the router-box
//! workload and uses the planner to pick the cheapest configuration
//! hitting a 99% target.
//!
//! ```text
//! cargo run --release --example warehouse_portal
//! ```

use rfid_repro::core::{
    cheapest_plan, tracking_outcome, CostModel, PlanLimits, Probability, ReliabilityEstimate,
};
use rfid_repro::experiments::scenarios::{object_pass_scenario, BoxFace, ObjectPassConfig};
use rfid_repro::experiments::Calibration;
use rfid_repro::sim::run_scenario;

const PASSES: u64 = 12;

fn measure(cal: &Calibration, config: &ObjectPassConfig, seed: u64) -> ReliabilityEstimate {
    let (scenario, box_tags) = object_pass_scenario(cal, config);
    let mut hits = 0;
    let mut total = 0;
    for i in 0..PASSES {
        let output = run_scenario(&scenario, seed + i);
        for tags in &box_tags {
            total += 1;
            if tracking_outcome(&output, tags) {
                hits += 1;
            }
        }
    }
    ReliabilityEstimate::from_counts(hits, total).expect("hits bounded by total")
}

fn main() {
    let cal = Calibration::default();
    println!("dock-door portal: 12 router boxes per pallet, {PASSES} passes per plan\n");

    let plans: [(&str, ObjectPassConfig); 4] = [
        (
            "1 antenna, 1 tag (front)",
            ObjectPassConfig::single(BoxFace::Front),
        ),
        (
            "2 antennas, 1 tag (front)",
            ObjectPassConfig {
                faces: vec![BoxFace::Front],
                antennas: 2,
                readers: 1,
                dense_mode: false,
            },
        ),
        (
            "1 antenna, 2 tags (front+side)",
            ObjectPassConfig {
                faces: vec![BoxFace::Front, BoxFace::SideCloser],
                antennas: 1,
                readers: 1,
                dense_mode: false,
            },
        ),
        (
            "2 antennas, 2 tags",
            ObjectPassConfig {
                faces: vec![BoxFace::Front, BoxFace::SideCloser],
                antennas: 2,
                readers: 1,
                dense_mode: false,
            },
        ),
    ];
    for (label, config) in &plans {
        let estimate = measure(&cal, config, 11);
        println!("  {label:32} {estimate}");
    }

    // Plan for a reliability target using measured per-placement rates.
    println!("\nplanning for a 99% target with measured placements...");
    let placements: Vec<Probability> = [BoxFace::Front, BoxFace::SideCloser, BoxFace::SideFarther]
        .iter()
        .map(|&face| measure(&cal, &ObjectPassConfig::single(face), 101).point())
        .collect();
    println!(
        "  measured placements (front, side, far side): {}",
        placements
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    );
    match cheapest_plan(
        Probability::new(0.99).expect("0.99 is a probability"),
        &placements,
        &CostModel::default(),
        &PlanLimits::default(),
    ) {
        Some(plan) => {
            println!(
                "  cheapest plan meeting 99%: {plan} (predicted {})",
                plan.predicted_reliability_with(&placements)
            );
            println!("  cost: ${:.0}", CostModel::default().cost(&plan));
        }
        None => println!("  no plan within limits reaches 99%"),
    }
}
