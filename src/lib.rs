//! # rfid-repro
//!
//! A full, from-scratch reproduction of *"Reliability Techniques for
//! RFID-Based Object Tracking Applications"* (Rahmati, Zhong, Hiltunen,
//! Jana — DSN 2007) as a Rust workspace: the paper's reliability
//! techniques as a reusable library, plus every substrate its experiments
//! needed — a UHF physical-layer model, an EPC Class-1 Gen-2 protocol
//! engine, a discrete-event portal simulator, a tracking back-end, and an
//! emulated reader control interface.
//!
//! This crate is the facade: it re-exports each member crate under a
//! short module name and hosts the runnable examples and cross-crate
//! integration tests. Depend on the member crates directly for finer
//! dependency control.
//!
//! | Module | Crate | What it is |
//! |---|---|---|
//! | [`core`] | `rfid-core` | The paper's contribution: read opportunities, `R_C`, redundancy planning, placement advice |
//! | [`sim`] | `rfid-sim` | Discrete-event portal simulator (world, motion, occlusion, channel) |
//! | [`phys`] | `rfid-phys` | Link budget, antennas, fading, materials, coupling |
//! | [`gen2`] | `rfid-gen2` | EPC C1G2 tag FSM, Q-algorithm inventory, interference |
//! | [`track`] | `rfid-track` | Object registry, sighting pipeline, smoothing, constraints |
//! | [`readerapi`] | `rfid-readerapi` | AR400-style reader emulation (XML wire format) and the hardened transport stack: typed errors, deadlines, deterministic retry, fault injection |
//! | [`site_server`] | `rfid-site-server` | Long-running site tracking daemon: concurrent reader sessions merged into one streaming tracker, JSON query surface |
//! | [`geom`] | `rfid-geom` | Vectors, rotations, rays, solids |
//! | [`stats`] | `rfid-stats` | Quantiles, Wilson intervals, tables, charts |
//! | [`experiments`] | `rfid-experiments` | The per-table/figure reproduction harness |
//!
//! # Quickstart
//!
//! ```
//! use rfid_repro::core::{combined_reliability, tracking_outcome, Probability};
//! use rfid_repro::geom::{Pose, Rotation, Vec3};
//! use rfid_repro::sim::{run_scenario, Motion, ScenarioBuilder};
//!
//! // A tag carted past a portal antenna at 1 m/s, 1 m away.
//! let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
//! let scenario = ScenarioBuilder::new()
//!     .duration_s(4.0)
//!     .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1)
//!     .free_tag(Motion::linear(
//!         Pose::new(Vec3::new(-2.0, 1.0, 1.0), facing),
//!         Vec3::new(1.0, 0.0, 0.0),
//!         0.0,
//!         4.0,
//!     ))
//!     .build();
//! let output = run_scenario(&scenario, 7);
//! assert!(tracking_outcome(&output, &[0]));
//!
//! // And the paper's analytical model.
//! let two_tags = combined_reliability([
//!     Probability::new(0.87)?,
//!     Probability::new(0.83)?,
//! ]);
//! assert!(two_tags.value() > 0.97);
//! # Ok::<(), rfid_repro::core::ProbabilityError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rfid_core as core;
pub use rfid_experiments as experiments;
pub use rfid_gen2 as gen2;
pub use rfid_geom as geom;
pub use rfid_phys as phys;
pub use rfid_readerapi as readerapi;
pub use rfid_sim as sim;
pub use rfid_site_server as site_server;
pub use rfid_stats as stats;
pub use rfid_track as track;
