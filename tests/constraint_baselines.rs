//! The software-correction baselines (Inoue et al. [6]) against physical
//! redundancy, end to end: a pallet group passes a portal, one case's tag
//! is weak, and the accompany constraint recovers what redundancy would
//! have prevented.

use rfid_repro::core::tracking_outcome;
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::phys::Db;
use rfid_repro::sim::{run_scenario, Motion, Scenario, ScenarioBuilder};
use rfid_repro::track::{AccompanyConstraint, ObjectRegistry, Site, ZoneObservation};

/// Four cases pass together; case 3's tag is badly detuned.
fn pallet_pass() -> Scenario {
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let mut builder = ScenarioBuilder::new()
        .duration_s(5.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1);
    for i in 0..4 {
        builder = builder.free_tag(Motion::linear(
            Pose::new(
                Vec3::new(-2.5 + 0.1 * i as f64, 1.0, 0.7 + 0.3 * i as f64),
                facing,
            ),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            5.0,
        ));
    }
    let mut scenario = builder.build();
    scenario.world.tags[3].chip = scenario.world.tags[3].chip.detuned_by(Db::new(30.0));
    scenario
}

#[test]
fn accompany_constraint_recovers_the_weak_case() {
    let scenario = pallet_pass();
    let output = run_scenario(&scenario, 8);

    // Raw tracking: the three healthy cases are seen; the weak one is not.
    for tag in 0..3 {
        assert!(output.tag_was_read(tag), "healthy case {tag} must be read");
    }
    assert!(
        !tracking_outcome(&output, &[3]),
        "the 30 dB-detuned tag must be missed"
    );

    // Back-end wiring: one portal zone, four registered cases.
    let mut registry = ObjectRegistry::new();
    let cases: Vec<_> = (0..4)
        .map(|i| {
            let handle = registry.register(format!("case-{i}"));
            registry.attach_tag(handle, scenario.world.tags[i].epc);
            handle
        })
        .collect();
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    site.assign_portal(0, 0, dock);
    let observations = site.observations(&registry, &output.reads);

    let seen_objects: std::collections::HashSet<_> =
        observations.iter().map(|o| o.object).collect();
    assert_eq!(seen_objects.len(), 3, "three of four seen directly");

    // The accompany constraint: the pallet group travels together; with
    // 3/4 seen, the fourth is inferred.
    let group = AccompanyConstraint::new(cases.clone(), 0.6);
    let corrected = group.correct(&observations, dock);
    let inferred: Vec<&ZoneObservation> = corrected.iter().filter(|o| o.inferred).collect();
    assert_eq!(inferred.len(), 1);
    assert_eq!(inferred[0].object, cases[3]);

    // All four cases are now accounted for at the dock.
    let final_objects: std::collections::HashSet<_> = corrected.iter().map(|o| o.object).collect();
    assert_eq!(final_objects.len(), 4);
}

#[test]
fn accompany_constraint_cannot_invent_a_missing_group() {
    // If the whole pallet is missed (e.g. portal outage), the constraint
    // must not fabricate sightings — the failure stays visible, which is
    // the paper's argument for *physical* redundancy as the primary fix.
    let mut scenario = pallet_pass();
    scenario.world.readers[0].antennas[0]
        .outages
        .push((0.0, 100.0));
    let output = run_scenario(&scenario, 8);
    assert!(output.reads.is_empty());

    let mut registry = ObjectRegistry::new();
    let cases: Vec<_> = (0..4)
        .map(|i| {
            let handle = registry.register(format!("case-{i}"));
            registry.attach_tag(handle, scenario.world.tags[i].epc);
            handle
        })
        .collect();
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    site.assign_portal(0, 0, dock);
    let observations = site.observations(&registry, &output.reads);
    let corrected = AccompanyConstraint::new(cases, 0.6).correct(&observations, dock);
    assert!(
        corrected.is_empty(),
        "no quorum, no inference: {corrected:?}"
    );
}
