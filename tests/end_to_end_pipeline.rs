//! Full-stack flow: physics simulation -> Gen-2 reads -> emulated reader
//! XML -> client -> tracking pipeline -> metrics, the way a deployment
//! would wire the crates together.

use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::readerapi::{InMemoryTransport, ReaderClient, ReaderEmulator};
use rfid_repro::sim::{run_scenario, Motion, Scenario, ScenarioBuilder};
use rfid_repro::track::{GroundTruthPass, ObjectRegistry, SightingPipeline, TrackingMetrics};

fn portal_with_two_cases() -> Scenario {
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let mut builder = ScenarioBuilder::new()
        .duration_s(8.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1);
    // Case A passes early, case B late; both well within range.
    for (start, z) in [(0.0, 1.0), (4.0, 1.0)] {
        builder = builder.free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, z), facing),
            Vec3::new(1.0, 0.0, 0.0),
            start,
            start + 4.0,
        ));
    }
    builder.build()
}

#[test]
fn simulation_to_metrics_round_trip() {
    let scenario = portal_with_two_cases();
    let output = run_scenario(&scenario, 4);
    assert!(output.tag_was_read(0) && output.tag_was_read(1));

    // Reader emulation: feed RF truth, fetch over the XML wire.
    let mut client = ReaderClient::new(InMemoryTransport::new(ReaderEmulator::new()));
    client.start_buffered().expect("mode change");
    client
        .transport_mut()
        .emulator_mut()
        .feed_simulation(&output);
    let records = client.get_tags().expect("tag list");
    assert_eq!(records.len(), output.reads.len());
    // EPCs survive serialization.
    for (record, read) in records.iter().zip(&output.reads) {
        assert_eq!(record.epc, read.epc.to_string());
        assert_eq!(record.antenna as usize, read.antenna + 1);
    }

    // Registry + pipeline: one sighting per case pass.
    let mut registry = ObjectRegistry::new();
    let case_a = registry.register("case-a");
    let case_b = registry.register("case-b");
    registry.attach_tag(case_a, scenario.world.tags[0].epc);
    registry.attach_tag(case_b, scenario.world.tags[1].epc);
    // Merge gap above the S1 inventoried-flag persistence (2 s): a tag
    // dwelling in the zone is re-read every ~2 s, and those re-reads
    // belong to the same pass.
    let sightings = SightingPipeline::new(2.5).process(&registry, &output.reads);
    assert_eq!(sightings.len(), 2, "{sightings:?}");

    // Metrics against ground truth.
    let truth = [
        GroundTruthPass {
            object: case_a,
            enter_s: 0.0,
            exit_s: 4.0,
        },
        GroundTruthPass {
            object: case_b,
            enter_s: 4.0,
            exit_s: 8.0,
        },
    ];
    let metrics = TrackingMetrics::score(&truth, &sightings, 0.5);
    assert_eq!(metrics.detected, 2);
    assert_eq!(metrics.missed, 0);
    assert_eq!(metrics.false_positives, 0);
    assert_eq!(metrics.reliability().unwrap().point().value(), 1.0);
}

#[test]
fn missed_pass_shows_up_as_a_false_negative() {
    let scenario = portal_with_two_cases();
    let output = run_scenario(&scenario, 4);

    let mut registry = ObjectRegistry::new();
    let case_a = registry.register("case-a");
    let ghost = registry.register("ghost");
    registry.attach_tag(case_a, scenario.world.tags[0].epc);
    // `ghost` has a tag that never existed in the field.
    registry.attach_tag(ghost, rfid_repro::gen2::Epc96::from_u128(0xDEAD));

    let sightings = SightingPipeline::new(2.5).process(&registry, &output.reads);
    let truth = [
        GroundTruthPass {
            object: case_a,
            enter_s: 0.0,
            exit_s: 4.0,
        },
        GroundTruthPass {
            object: ghost,
            enter_s: 0.0,
            exit_s: 4.0,
        },
    ];
    let metrics = TrackingMetrics::score(&truth, &sightings, 0.5);
    assert_eq!(metrics.detected, 1);
    assert_eq!(metrics.missed, 1);
    assert!(metrics.reliability().unwrap().point().value() < 1.0);
}

#[test]
fn multi_tag_objects_merge_into_one_sighting() {
    // One object carrying two tags: the pipeline must not double-count.
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let scenario = ScenarioBuilder::new()
        .duration_s(4.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            4.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, 1.3), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            4.0,
        ))
        .build();
    let output = run_scenario(&scenario, 6);

    let mut registry = ObjectRegistry::new();
    let pallet = registry.register("pallet");
    registry.attach_tag(pallet, scenario.world.tags[0].epc);
    registry.attach_tag(pallet, scenario.world.tags[1].epc);

    let sightings = SightingPipeline::new(2.0).process(&registry, &output.reads);
    assert_eq!(sightings.len(), 1, "{sightings:?}");
    assert!(!sightings[0].tags.is_empty());
    assert_eq!(sightings[0].reads, output.reads.len());
}
