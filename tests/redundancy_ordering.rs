//! The paper's qualitative orderings, verified end to end across seeds:
//! more tags never hurt, more antennas never hurt, more *legacy readers*
//! do hurt, and dense-reader mode repairs them.

use rfid_repro::core::tracking_outcome;
use rfid_repro::experiments::scenarios::{object_pass_scenario, BoxFace, ObjectPassConfig};
use rfid_repro::experiments::Calibration;
use rfid_repro::sim::run_scenario;

const PASSES: u64 = 8;

fn hits(cal: &Calibration, config: &ObjectPassConfig, seed: u64) -> u64 {
    let (scenario, box_tags) = object_pass_scenario(cal, config);
    let mut hits = 0;
    for i in 0..PASSES {
        let output = run_scenario(&scenario, seed + i);
        hits += box_tags
            .iter()
            .filter(|tags| tracking_outcome(&output, tags))
            .count() as u64;
    }
    hits
}

#[test]
fn a_second_tag_helps() {
    let cal = Calibration::default();
    let one = hits(&cal, &ObjectPassConfig::single(BoxFace::Front), 100);
    let two = hits(
        &cal,
        &ObjectPassConfig {
            faces: vec![BoxFace::Front, BoxFace::SideCloser],
            antennas: 1,
            readers: 1,
            dense_mode: false,
        },
        100,
    );
    assert!(two > one, "two tags {two} vs one {one}");
}

#[test]
fn a_second_antenna_helps() {
    let cal = Calibration::default();
    let one = hits(&cal, &ObjectPassConfig::single(BoxFace::Front), 200);
    let two = hits(
        &cal,
        &ObjectPassConfig {
            faces: vec![BoxFace::Front],
            antennas: 2,
            readers: 1,
            dense_mode: false,
        },
        200,
    );
    assert!(two >= one, "two antennas {two} vs one {one}");
}

#[test]
fn a_second_legacy_reader_hurts_badly() {
    let cal = Calibration::default();
    let one = hits(&cal, &ObjectPassConfig::single(BoxFace::Front), 300);
    let two_legacy = hits(
        &cal,
        &ObjectPassConfig {
            faces: vec![BoxFace::Front],
            antennas: 1,
            readers: 2,
            dense_mode: false,
        },
        300,
    );
    assert!(
        two_legacy * 2 < one,
        "legacy pair {two_legacy} should collapse vs single {one}"
    );
}

#[test]
fn dense_reader_mode_repairs_the_pair() {
    let cal = Calibration::default();
    let legacy = hits(
        &cal,
        &ObjectPassConfig {
            faces: vec![BoxFace::Front],
            antennas: 1,
            readers: 2,
            dense_mode: false,
        },
        400,
    );
    let dense = hits(
        &cal,
        &ObjectPassConfig {
            faces: vec![BoxFace::Front],
            antennas: 1,
            readers: 2,
            dense_mode: true,
        },
        400,
    );
    assert!(dense > legacy * 2, "dense {dense} vs legacy {legacy}");
}

#[test]
fn tag_placement_ordering_matches_table_1() {
    let cal = Calibration::default();
    let front = hits(&cal, &ObjectPassConfig::single(BoxFace::Front), 500);
    let top = hits(&cal, &ObjectPassConfig::single(BoxFace::Top), 500);
    let farther = hits(&cal, &ObjectPassConfig::single(BoxFace::SideFarther), 500);
    assert!(top < farther, "top {top} < farther {farther}");
    assert!(farther < front, "farther {farther} < front {front}");
}
