//! The analytical model against the simulator: for *independent* read
//! opportunities, measured combined reliability matches `R_C`; for
//! *correlated* opportunities (two antennas seeing the same tag through a
//! shared slow-shadowing state), the measurement falls below `R_C` — the
//! paper's central Table 3 observation.
//!
//! Single static inventory rounds are used so each trial is one clean
//! Bernoulli draw of the channel state.

use rfid_repro::core::{combined_reliability, Probability};
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::sim::{run_single_round, ChannelParams, Motion, Scenario, ScenarioBuilder};

const TRIALS: u64 = 300;

fn facing() -> Rotation {
    Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel")
}

/// Static tags near the edge of the read range, where the channel draw
/// decides each read.
fn marginal_static(tags: usize, antennas: usize, params: ChannelParams) -> Scenario {
    let mut builder = ScenarioBuilder::new()
        .duration_s(1.0)
        .channel(params)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), antennas);
    for i in 0..tags {
        builder = builder.free_tag(Motion::Static(Pose::new(
            Vec3::new(i as f64 - (tags as f64 - 1.0) / 2.0, 6.0, 1.0),
            facing(),
        )));
    }
    builder.build()
}

fn independent_params() -> ChannelParams {
    ChannelParams {
        sigma_tag_db: 0.0, // no shared component
        sigma_link_db: 4.0,
        ..ChannelParams::default()
    }
}

/// P(tag read in a single round on (reader 0, port)).
fn p_tag(scenario: &Scenario, port: usize, tag: usize, seed: u64) -> f64 {
    (0..TRIALS)
        .filter(|i| {
            run_single_round(scenario, 0, port, 0.0, seed + i)
                .reads
                .iter()
                .any(|r| r.tag_index == tag)
        })
        .count() as f64
        / TRIALS as f64
}

#[test]
fn independent_tags_match_the_model() {
    let scenario = marginal_static(2, 1, independent_params());
    let p0 = p_tag(&scenario, 0, 0, 10);
    let p1 = p_tag(&scenario, 0, 1, 10);
    assert!((0.1..=0.9).contains(&p0), "tag 0 marginal: {p0}");
    assert!((0.1..=0.9).contains(&p1), "tag 1 marginal: {p1}");

    // Measured OR in the same rounds.
    let measured_or = (0..TRIALS)
        .filter(|i| {
            !run_single_round(&scenario, 0, 0, 0.0, 10 + i)
                .reads
                .is_empty()
        })
        .count() as f64
        / TRIALS as f64;
    let model_or =
        combined_reliability([Probability::clamped(p0), Probability::clamped(p1)]).value();
    assert!(
        (measured_or - model_or).abs() < 0.08,
        "measured {measured_or} vs model {model_or}"
    );
}

#[test]
fn shared_shadowing_breaks_antenna_independence() {
    let params = ChannelParams {
        sigma_tag_db: 5.0, // strong common cause across antennas
        sigma_link_db: 0.5,
        ..ChannelParams::default()
    };
    let scenario = marginal_static(1, 2, params);
    let p_a = p_tag(&scenario, 0, 0, 30);
    let p_b = p_tag(&scenario, 1, 0, 30);
    assert!((0.1..=0.9).contains(&p_a), "port 0 marginal: {p_a}");

    // Measured union across both antennas, same trial state.
    let measured_or = (0..TRIALS)
        .filter(|i| {
            let seed = 30 + i;
            !run_single_round(&scenario, 0, 0, 0.0, seed)
                .reads
                .is_empty()
                || !run_single_round(&scenario, 0, 1, 0.0, seed)
                    .reads
                    .is_empty()
        })
        .count() as f64
        / TRIALS as f64;
    let model_or =
        combined_reliability([Probability::clamped(p_a), Probability::clamped(p_b)]).value();
    assert!(
        measured_or < model_or - 0.04,
        "correlated antennas: measured {measured_or} should fall short of model {model_or}"
    );
}

#[test]
fn independent_links_do_match_the_antenna_model() {
    // Control for the test above: with the shared component OFF, two
    // antennas behave like independent opportunities.
    let params = ChannelParams {
        sigma_tag_db: 0.0,
        sigma_link_db: 5.0,
        ..ChannelParams::default()
    };
    let scenario = marginal_static(1, 2, params);
    let p_a = p_tag(&scenario, 0, 0, 50);
    let p_b = p_tag(&scenario, 1, 0, 50);
    let measured_or = (0..TRIALS)
        .filter(|i| {
            let seed = 50 + i;
            !run_single_round(&scenario, 0, 0, 0.0, seed)
                .reads
                .is_empty()
                || !run_single_round(&scenario, 0, 1, 0.0, seed)
                    .reads
                    .is_empty()
        })
        .count() as f64
        / TRIALS as f64;
    let model_or =
        combined_reliability([Probability::clamped(p_a), Probability::clamped(p_b)]).value();
    assert!(
        (measured_or - model_or).abs() < 0.08,
        "measured {measured_or} vs model {model_or}"
    );
}

#[test]
fn adding_opportunities_never_hurts_in_simulation() {
    let one = marginal_static(1, 1, independent_params());
    let two = marginal_static(2, 1, independent_params());
    let p1 = (0..TRIALS)
        .filter(|i| !run_single_round(&one, 0, 0, 0.0, 70 + i).reads.is_empty())
        .count();
    let p2 = (0..TRIALS)
        .filter(|i| !run_single_round(&two, 0, 0, 0.0, 70 + i).reads.is_empty())
        .count();
    assert!(
        p2 as f64 >= p1 as f64 * 0.9,
        "two-tag {p2} vs one-tag {p1} of {TRIALS}"
    );
}
