//! End-to-end: a recorded simulation, replayed over the fault-injected
//! reader wire, drives the streaming tracker to the *identical* zone
//! history the batch pipeline computes.
//!
//! The full production shape: one emulated reader session per physical
//! reader, each behind a chaos transport recovered by bounded retry;
//! drained wire records convert through [`WireEventAdapter`] and merge
//! through a watermark-keyed [`ReorderBuffer`] into the
//! `ObservationStream → LocationTracker` chain. Nothing downstream of
//! the wire ever sees a batch.

use rfid_gen2::{ReaderRf, Session};
use rfid_readerapi::{
    BackoffPolicy, FaultPlan, FaultTransport, InMemoryTransport, ReaderClient, ReaderEmulator,
    RetryingTransport, WireEventAdapter,
};
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_sim::{
    run_scenario, Antenna, Motion, ReadEvent, RngStream, Scenario, ScenarioBuilder, SimReader,
};
use rfid_track::stream::{ObservationStream, Operator, ReorderBuffer};
use rfid_track::{LocationTracker, ObjectRegistry, Site};

type FaultyClient = ReaderClient<RetryingTransport<FaultTransport<InMemoryTransport>>>;

fn faulty_client(fault_seed: u64, retry_seed: u64) -> FaultyClient {
    let chaos = FaultTransport::new(
        InMemoryTransport::new(ReaderEmulator::new()),
        FaultPlan::noisy(),
        RngStream::new(fault_seed),
    );
    ReaderClient::new(RetryingTransport::new(
        chaos,
        BackoffPolicy::immediate(8),
        RngStream::new(retry_seed),
    ))
}

/// A dense-mode portal reader on its own RF channel, so the two portals
/// can inventory concurrently instead of jamming each other (legacy
/// AR400s on one channel suppress the downstream portal entirely).
fn dense_portal(x: f64, ports: usize, channel: u8) -> SimReader {
    let antennas = (0..ports)
        .map(|i| {
            let offset = (i as f64 - (ports as f64 - 1.0) / 2.0) * 2.0;
            Antenna::portal(Pose::from_translation(Vec3::new(x + offset, 0.0, 1.0)))
        })
        .collect();
    let mut reader = SimReader::ar400(antennas);
    reader.rf = ReaderRf::dense(channel);
    reader
}

/// Two cases carted down a two-portal corridor: dock (reader 0, two
/// antennas) then aisle (reader 1, one antenna), in session S0 so the
/// aisle portal sees tags the dock portal just inventoried.
fn corridor_scenario() -> Scenario {
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    ScenarioBuilder::new()
        .duration_s(8.0)
        .session(Session::S0)
        .reader(dense_portal(0.0, 2, 0))
        .reader(dense_portal(4.0, 1, 1))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-1.5, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            8.0,
        ))
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-1.5, 1.0, 1.25), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            8.0,
        ))
        .build()
}

#[test]
fn wire_replay_reaches_the_batch_zone_history() {
    let scenario = corridor_scenario();
    let output = run_scenario(&scenario, 21);
    assert!(
        output.reads.iter().any(|r| r.reader == 0) && output.reads.iter().any(|r| r.reader == 1),
        "the corridor pass must exercise both readers"
    );

    let mut registry = ObjectRegistry::new();
    for (index, tag) in scenario.world.tags.iter().enumerate() {
        let case = registry.register(format!("case-{index}"));
        registry.attach_tag(case, tag.epc);
    }
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    let aisle = site.add_zone("aisle");
    site.assign_portal(0, 0, dock);
    site.assign_portal(0, 1, dock);
    site.assign_portal(1, 0, aisle);

    // The batch reference: sort-and-scan over the recorded reads.
    let batch_observations = site.observations(&registry, &output.reads);
    let mut batch_tracker = LocationTracker::new(5.0);
    let expected_transitions: Vec<_> = batch_observations
        .iter()
        .flat_map(|obs| batch_tracker.push(*obs))
        .collect();
    assert!(
        !expected_transitions.is_empty(),
        "the pass should move a case between zones"
    );

    // The streaming replay: one faulted session per reader, drained in
    // half-second windows like the paper's polling harness.
    let mut clients: Vec<FaultyClient> = (0..2)
        .map(|reader| faulty_client(0x5EED + reader, 0xACE + reader))
        .collect();
    let adapters: Vec<WireEventAdapter> = (0..2)
        .map(|reader| WireEventAdapter::for_world(reader, &scenario.world))
        .collect();
    for client in &mut clients {
        client.start_buffered().expect("retry rides out faults");
    }

    let mut reorder: ReorderBuffer<ReadEvent> = ReorderBuffer::new();
    let mut chain = ObservationStream::new(&site, &registry).then(LocationTracker::new(5.0));
    let mut recovered: Vec<ReadEvent> = Vec::new();
    let mut transitions = Vec::new();

    let step = 0.5;
    let windows = (scenario.duration_s / step).ceil() as usize + 1;
    let mut next = 0;
    for window in 1..=windows {
        let boundary = window as f64 * step;
        // Feed this window's RF truth to each read's own reader session.
        while next < output.reads.len() && output.reads[next].time_s < boundary {
            let read = &output.reads[next];
            clients[read.reader]
                .transport_mut()
                .inner_mut()
                .inner_mut()
                .emulator_mut()
                .feed_sim_read(read);
            next += 1;
        }
        // Drain every session through the chaos wire; a full drain is
        // what licenses advancing the watermark to the boundary.
        for (reader, client) in clients.iter_mut().enumerate() {
            for record in client.get_tags().expect("faulted drain recovers") {
                let event = adapters[reader]
                    .convert(&record)
                    .expect("emulator-served records convert cleanly");
                reorder.push(event);
            }
        }
        for event in reorder.advance_watermark(boundary) {
            recovered.push(event);
            transitions.extend(chain.push(event));
        }
        transitions.extend(chain.advance_watermark(boundary));
    }
    for event in reorder.finish() {
        recovered.push(event);
        transitions.extend(chain.push(event));
    }
    transitions.extend(chain.finish());

    // The wire + reorder stage recovered the recorded read sequence
    // bit-identically...
    assert_eq!(recovered, output.reads);
    // ...so the streaming tracker's final zone history is the batch
    // tracker's, transition for transition.
    assert_eq!(transitions, expected_transitions);
    assert_eq!(chain.second(), &batch_tracker);

    // And the run genuinely crossed a faulted wire.
    let faults: u64 = clients
        .iter_mut()
        .map(|client| client.transport_mut().inner_mut().stats().total_faults())
        .sum();
    assert!(faults > 0, "the chaos plan should have fired at least once");
}
