//! Cross-crate determinism guarantees: whole simulation runs are pure
//! functions of (scenario, seed).

use rfid_repro::experiments::scenarios::{
    human_pass_scenario, object_pass_scenario, BadgeSpot, BoxFace, HumanPassConfig,
    ObjectPassConfig,
};
use rfid_repro::experiments::Calibration;
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::sim::{run_scenario, Motion, ScenarioBuilder};

fn simple_pass() -> rfid_repro::sim::Scenario {
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    ScenarioBuilder::new()
        .duration_s(4.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 2)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            4.0,
        ))
        .build()
}

#[test]
fn identical_seeds_reproduce_identical_outputs() {
    let scenario = simple_pass();
    for seed in [0u64, 1, 42, u64::MAX] {
        let a = run_scenario(&scenario, seed);
        let b = run_scenario(&scenario, seed);
        assert_eq!(a, b, "seed {seed}");
    }
}

#[test]
fn seeds_actually_change_the_randomness() {
    let scenario = simple_pass();
    let outputs: Vec<_> = (0..10).map(|s| run_scenario(&scenario, s)).collect();
    let distinct = outputs.windows(2).filter(|pair| pair[0] != pair[1]).count();
    assert!(distinct >= 8, "only {distinct}/9 adjacent pairs differ");
}

#[test]
fn object_experiment_is_deterministic_end_to_end() {
    let cal = Calibration::default();
    let config = ObjectPassConfig::single(BoxFace::Front);
    let (scenario_a, tags_a) = object_pass_scenario(&cal, &config);
    let (scenario_b, tags_b) = object_pass_scenario(&cal, &config);
    assert_eq!(scenario_a, scenario_b, "scenario construction is pure");
    assert_eq!(tags_a, tags_b);
    assert_eq!(run_scenario(&scenario_a, 5), run_scenario(&scenario_b, 5));
}

#[test]
fn human_experiment_is_deterministic_end_to_end() {
    let cal = Calibration::default();
    let config = HumanPassConfig {
        subjects: 2,
        spots: vec![BadgeSpot::Front, BadgeSpot::SideCloser],
        antennas: 2,
    };
    let (scenario_a, _) = human_pass_scenario(&cal, &config);
    let (scenario_b, _) = human_pass_scenario(&cal, &config);
    assert_eq!(run_scenario(&scenario_a, 9), run_scenario(&scenario_b, 9));
}

#[test]
fn reads_are_time_ordered_and_within_duration() {
    let scenario = simple_pass();
    for seed in 0..5 {
        let output = run_scenario(&scenario, seed);
        for pair in output.reads.windows(2) {
            assert!(pair[0].time_s <= pair[1].time_s);
        }
        for read in &output.reads {
            assert!(read.time_s >= 0.0);
            // A round that started inside the window may finish slightly
            // after it.
            assert!(read.time_s <= scenario.duration_s + 1.0);
        }
    }
}
