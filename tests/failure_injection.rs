//! Failure injection across the stack: antenna outages, deaf tag chips,
//! and detuning neighbors all degrade the system the way field failures
//! do.

use rfid_repro::core::tracking_outcome;
use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::phys::Db;
use rfid_repro::sim::{run_scenario, Motion, Scenario, ScenarioBuilder};

fn facing() -> Rotation {
    Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel")
}

fn pass(antennas: usize) -> Scenario {
    let mut builder = ScenarioBuilder::new()
        .duration_s(4.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), antennas);
    builder = builder.free_tag(Motion::linear(
        Pose::new(Vec3::new(-2.0, 1.0, 1.0), facing()),
        Vec3::new(1.0, 0.0, 0.0),
        0.0,
        4.0,
    ));
    builder.build()
}

fn reliability(scenario: &Scenario, trials: u64, seed: u64) -> f64 {
    (0..trials)
        .filter(|i| tracking_outcome(&run_scenario(scenario, seed + i), &[0]))
        .count() as f64
        / trials as f64
}

#[test]
fn full_outage_blinds_the_portal() {
    let mut scenario = pass(1);
    scenario.world.readers[0].antennas[0]
        .outages
        .push((0.0, 100.0));
    assert_eq!(reliability(&scenario, 10, 1), 0.0);
}

#[test]
fn partial_outage_still_reads_via_the_other_window() {
    // Antenna dead during the first half of the pass only: the tag is
    // still read in the second half.
    let mut scenario = pass(1);
    scenario.world.readers[0].antennas[0]
        .outages
        .push((0.0, 2.0));
    let degraded = reliability(&scenario, 20, 2);
    assert!(
        degraded > 0.5,
        "second-half reads should survive: {degraded}"
    );
}

#[test]
fn redundant_antenna_masks_a_single_outage() {
    // With two antennas and one dead, the portal keeps most reliability.
    let healthy = reliability(&pass(2), 20, 3);
    let mut scenario = pass(2);
    scenario.world.readers[0].antennas[0]
        .outages
        .push((0.0, 100.0));
    let degraded = reliability(&scenario, 20, 3);
    assert!(
        degraded >= healthy - 0.2,
        "one of two antennas down: {degraded} vs healthy {healthy}"
    );
    assert!(degraded > 0.6);
}

#[test]
fn a_deaf_chip_is_never_read() {
    let mut scenario = pass(1);
    // Manufacturing outlier: 40 dB less sensitive.
    scenario.world.tags[0].chip = scenario.world.tags[0].chip.detuned_by(Db::new(40.0));
    assert_eq!(reliability(&scenario, 10, 4), 0.0);
}

#[test]
fn moderate_detuning_degrades_gracefully() {
    // A free tag at 1 m has roughly 8 dB of margin plus whatever the best
    // fade during the pass contributes; 15 dB of detuning pushes it into
    // the marginal regime without killing it outright.
    let baseline = reliability(&pass(1), 30, 5);
    let mut scenario = pass(1);
    scenario.world.tags[0].chip = scenario.world.tags[0].chip.detuned_by(Db::new(15.0));
    let detuned = reliability(&scenario, 30, 5);
    assert!(
        detuned < baseline,
        "15 dB detuning must cost something: {detuned} vs {baseline}"
    );
    assert!(detuned > 0.0, "but not everything");
}

#[test]
fn a_parasitic_neighbor_tag_detunes_the_link() {
    // A second tag glued 2 mm away (e.g. a mis-applied label) couples.
    let mut builder = ScenarioBuilder::new()
        .duration_s(4.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 1);
    for dz in [0.0, 0.002] {
        builder = builder.free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, 1.0 + dz), facing()),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            4.0,
        ));
    }
    let crowded = builder.build();
    let clean = pass(1);
    let p_clean = reliability(&clean, 20, 6);
    let p_crowded = reliability(&crowded, 20, 6);
    assert!(
        p_crowded < p_clean,
        "2 mm neighbor: {p_crowded} vs clean {p_clean}"
    );
}
