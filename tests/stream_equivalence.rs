//! Batch ≡ streaming: property tests pinning every batch API to its
//! streaming operator, bit-identically, under arbitrary event chunkings
//! and watermark schedules — and, for the simulator event stream,
//! across executor thread counts.
//!
//! Each batch entry point documents its ordering contract; these tests
//! are the proof that driving the underlying operator any legal way
//! (any chunk sizes, any valid watermark placement, any thread count)
//! yields the same output sequence.

use proptest::prelude::*;
use rfid_gen2::Epc96;
use rfid_geom::{Pose, Vec3};
use rfid_sim::{
    run_scenario_streaming_with, run_scenario_with, Motion, ReadEvent, ScenarioBuilder,
    ScenarioCache, SimOutput, SimStreamEvent, TrialExecutor,
};
use rfid_track::stream::{
    AccompanyStream, AdaptiveStream, ObservationStream, Operator, ReorderBuffer, RouteStream,
    SightingStream, SmoothingStream,
};
use rfid_track::{
    AccompanyConstraint, AdaptiveSmoother, LocationTracker, ObjectRegistry, RouteConstraint,
    SightingPipeline, Site, SmoothingWindow, ZoneObservation,
};

/// A streaming drive plan: `(chunk_len, watermark_frac)` pairs. Events
/// are pushed `chunk_len` at a time; between chunks the watermark
/// advances to `last + (next - last) * frac`, which is always legal for
/// time-sorted input (the next push is never behind it).
type Plan = Vec<(usize, f64)>;

fn plan_strategy() -> impl Strategy<Value = Plan> {
    proptest::collection::vec((1usize..4, 0.0f64..=1.0), 1..24)
}

/// Drives `op` over time-sorted `events` according to `plan`,
/// concatenating everything it emits; leftover events (plan exhausted)
/// are pushed unchunked, then the operator is finished.
fn drive<Op, F>(op: &mut Op, events: &[Op::In], plan: &Plan, time_of: F) -> Vec<Op::Out>
where
    Op: Operator,
    Op::In: Clone,
    F: Fn(&Op::In) -> f64,
{
    let mut out = Vec::new();
    let mut idx = 0;
    for &(len, frac) in plan {
        if idx >= events.len() {
            break;
        }
        let end = (idx + len).min(events.len());
        for event in &events[idx..end] {
            out.extend(op.push(event.clone()));
        }
        idx = end;
        if idx > 0 && idx < events.len() {
            let last = time_of(&events[idx - 1]);
            let next = time_of(&events[idx]);
            out.extend(op.advance_watermark(last + (next - last) * frac));
        }
    }
    for event in &events[idx..] {
        out.extend(op.push(event.clone()));
    }
    out.extend(op.finish());
    out
}

/// Quarter-second grid timestamps: sorted, with frequent exact ties.
fn sorted_times() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0u32..240, 0..40).prop_map(|raw| {
        let mut times: Vec<f64> = raw.into_iter().map(|t| f64::from(t) * 0.25).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("grid times are finite"));
        times
    })
}

/// Two objects with two tags each (EPCs 1-4); EPC 5 is a foreign tag.
fn registry() -> ObjectRegistry {
    let mut reg = ObjectRegistry::new();
    for obj in 0..2u128 {
        let handle = reg.register(format!("obj{obj}"));
        reg.attach_tag(handle, Epc96::from_u128(obj * 2 + 1));
        reg.attach_tag(handle, Epc96::from_u128(obj * 2 + 2));
    }
    reg
}

/// Raw reads on the quarter-second grid; tag index 4 is the foreign EPC.
fn reads_strategy(sorted: bool) -> impl Strategy<Value = Vec<ReadEvent>> {
    proptest::collection::vec((0u32..240, 0usize..5, 0usize..2, 0usize..2), 0..40).prop_map(
        move |raw| {
            let mut reads: Vec<ReadEvent> = raw
                .into_iter()
                .map(|(t, tag, antenna, reader)| ReadEvent {
                    time_s: f64::from(t) * 0.25,
                    reader,
                    antenna,
                    tag,
                    epc: Epc96::from_u128(tag as u128 + 1),
                })
                .collect();
            if sorted {
                reads.sort_by(|a, b| {
                    a.time_s
                        .partial_cmp(&b.time_s)
                        .expect("grid times are finite")
                });
            }
            reads
        },
    )
}

/// A site whose portals cover some but not all (reader, antenna) pairs.
fn site() -> Site {
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    let aisle = site.add_zone("aisle");
    site.assign_portal(0, 0, dock);
    site.assign_portal(0, 1, aisle);
    site.assign_portal(1, 0, aisle);
    site
}

/// Zone observations over three objects; zone 99 is off every route.
fn observations_strategy() -> impl Strategy<Value = Vec<ZoneObservation>> {
    let mut reg = ObjectRegistry::new();
    let handles: Vec<_> = (0..3).map(|i| reg.register(format!("o{i}"))).collect();
    proptest::collection::vec((0u32..240, 0usize..3, 0usize..5), 0..40).prop_map(move |raw| {
        let mut observations: Vec<ZoneObservation> = raw
            .into_iter()
            .map(|(t, obj, zone_idx)| ZoneObservation {
                object: handles[obj],
                zone: [1, 2, 3, 4, 99][zone_idx],
                time_s: f64::from(t) * 0.25,
                inferred: false,
            })
            .collect();
        observations.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("grid times are finite")
        });
        observations
    })
}

proptest! {
    #[test]
    fn fixed_smoothing_batch_equals_streaming(
        times in sorted_times(),
        plan in plan_strategy(),
        window in 0.1f64..5.0,
    ) {
        let batch = SmoothingWindow::new(window).smooth(&times);
        let mut op = SmoothingStream::new(window);
        let streamed = drive(&mut op, &times, &plan, |&t| t);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn adaptive_smoothing_batch_equals_streaming(
        times in sorted_times(),
        plan in plan_strategy(),
        history in 1usize..5,
    ) {
        let smoother = AdaptiveSmoother { history, ..AdaptiveSmoother::default() };
        let batch = smoother.smooth(&times);
        let mut op = AdaptiveStream::new(smoother);
        let streamed = drive(&mut op, &times, &plan, |&t| t);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn sightings_batch_equals_streaming(
        reads in reads_strategy(true),
        plan in plan_strategy(),
        gap in 0.1f64..5.0,
    ) {
        let reg = registry();
        let batch = SightingPipeline::new(gap).process(&reg, &reads);
        let mut op = SightingStream::new(&reg, gap);
        let streamed = drive(&mut op, &reads, &plan, |r| r.time_s);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn site_observations_and_tracker_batch_equal_streaming(
        reads in reads_strategy(true),
        plan in plan_strategy(),
    ) {
        let site = site();
        let reg = registry();
        let batch = site.observations(&reg, &reads);
        let mut op = ObservationStream::new(&site, &reg);
        let streamed = drive(&mut op, &reads, &plan, |r| r.time_s);
        prop_assert_eq!(&streamed, &batch);

        // Feeding the same reads through the chained tracker leaves it in
        // exactly the state batch observe_all produces.
        let mut batch_tracker = LocationTracker::new(5.0);
        batch_tracker.observe_all(batch).expect("finite times");
        let mut chain = ObservationStream::new(&site, &reg).then(LocationTracker::new(5.0));
        let transitions = drive(&mut chain, &reads, &plan, |r| r.time_s);
        prop_assert_eq!(chain.second(), &batch_tracker);
        // Transitions are exactly the zone changes visible in the stream.
        let mut replay = LocationTracker::new(5.0);
        let expected: Vec<_> = streamed.into_iter().flat_map(|o| replay.push(o)).collect();
        prop_assert_eq!(transitions, expected);
    }

    #[test]
    fn route_batch_equals_canonically_sorted_stream(
        observations in observations_strategy(),
        plan in plan_strategy(),
    ) {
        let route = RouteConstraint::new(vec![1, 2, 3, 4]);
        let batch = route.correct(&observations);
        let mut op = RouteStream::new(route);
        let mut streamed = drive(&mut op, &observations, &plan, |o| o.time_s);
        streamed.sort_by(ZoneObservation::canonical_cmp);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn accompany_batch_equals_streaming(
        observations in observations_strategy(),
        quorum in 0.1f64..=1.0,
    ) {
        let mut reg = ObjectRegistry::new();
        let group: Vec<_> = (0..3).map(|i| reg.register(format!("o{i}"))).collect();
        let constraint = AccompanyConstraint::new(group, quorum);
        let batch = constraint.correct(&observations, 2);
        let mut op = AccompanyStream::new(constraint, 2);
        let streamed = op.run_batch(observations);
        prop_assert_eq!(streamed, batch);
    }

    #[test]
    fn reorder_buffer_recovers_the_stable_time_sort(
        reads in reads_strategy(false),
    ) {
        let mut expected = reads.clone();
        expected.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("grid times are finite")
        });
        let mut op = ReorderBuffer::new();
        let streamed = op.run_batch(reads);
        prop_assert_eq!(streamed, expected);
    }

    #[test]
    fn reordered_wire_stream_equals_batch_sightings(
        reads in reads_strategy(false),
        gap in 0.1f64..5.0,
    ) {
        // Out-of-order arrivals, watermarked with the tightest promise a
        // producer could make (the minimum of everything still to come):
        // the reorder buffer must hand the sighting operator exactly the
        // batch pipeline's sorted order.
        let reg = registry();
        let batch = SightingPipeline::new(gap).process(&reg, &reads);
        let mut chain = ReorderBuffer::new().then(SightingStream::new(&reg, gap));
        let mut out = Vec::new();
        for (i, read) in reads.iter().enumerate() {
            out.extend(chain.push(*read));
            let remaining = reads[i + 1..]
                .iter()
                .map(|r| r.time_s)
                .fold(f64::INFINITY, f64::min);
            if remaining.is_finite() {
                out.extend(chain.advance_watermark(remaining));
            }
        }
        out.extend(chain.finish());
        prop_assert_eq!(out, batch);
    }
}

/// A two-reader portal pass, the scenario used for the simulator-side
/// equivalence checks.
fn two_reader_pass() -> rfid_sim::Scenario {
    ScenarioBuilder::new()
        .duration_s(3.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 2)
        .portal_reader(Pose::from_translation(Vec3::new(1.0, 0.0, 1.0)), 1)
        .free_tag(Motion::linear(
            Pose::from_translation(Vec3::new(-1.5, 1.0, 1.0)),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            3.0,
        ))
        .build()
}

#[test]
fn sim_event_stream_is_bit_identical_across_thread_counts() {
    let scenario = two_reader_pass();
    let cache = ScenarioCache::new(&scenario);
    let streamed_trial = |seed: u64| {
        let mut events = Vec::new();
        run_scenario_streaming_with(&scenario, &cache, seed, |event| events.push(event));
        events
    };
    let serial = TrialExecutor::serial().run_trials(4, |i| streamed_trial(300 + i));
    for threads in [2, 4] {
        let parallel =
            TrialExecutor::with_threads(threads).run_trials(4, |i| streamed_trial(300 + i));
        assert_eq!(serial, parallel, "threads = {threads}");
    }
    assert!(
        serial
            .iter()
            .any(|events| events.iter().any(|e| matches!(e, SimStreamEvent::Read(_)))),
        "the pass should produce at least one read in some trial"
    );
}

#[test]
fn sim_event_stream_rebuilds_the_batch_output() {
    let scenario = two_reader_pass();
    let cache = ScenarioCache::new(&scenario);
    for seed in 300..304 {
        let batch = run_scenario_with(&scenario, &cache, seed);
        let mut streamed = SimOutput {
            duration_s: scenario.duration_s,
            ..SimOutput::default()
        };
        // The watermark-keyed reorder buffer recovers the batch output's
        // stable time sort without ever holding the full read list.
        let mut reorder: ReorderBuffer<ReadEvent> = ReorderBuffer::new();
        run_scenario_streaming_with(&scenario, &cache, seed, |event| match event {
            SimStreamEvent::Watermark(t) => streamed.reads.extend(reorder.advance_watermark(t)),
            SimStreamEvent::Read(read) => {
                reorder.push(read);
            }
            SimStreamEvent::Round(round) => streamed.rounds.push(round),
        });
        streamed.reads.extend(reorder.finish());
        assert_eq!(streamed, batch, "seed {seed}");
    }
}
