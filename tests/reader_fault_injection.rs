//! Fault-injected soak of the reader wire path.
//!
//! The paper's reliability argument is that redundancy over unreliable
//! read opportunities recovers the information a single flaky channel
//! loses; `tests/failure_injection.rs` proves that for the RF layer.
//! This suite proves the same property for the *wire* layer: a
//! [`RetryingTransport`]-backed client, exchanging through a
//! seed-deterministic [`FaultTransport`] that drops, disconnects,
//! garbles, truncates, and delays exchanges, must drain the identical
//! tag-record sequence a clean client sees — and the wire counters must
//! report the retries and timeouts it took to get there.
//!
//! Everything here is seeded: a failure replays bit-identically.

use rfid_repro::geom::{Pose, Rotation, Vec3};
use rfid_repro::readerapi::{
    counters, BackoffPolicy, FaultPlan, FaultStats, FaultTransport, InMemoryTransport,
    ReaderClient, ReaderEmulator, RetryingTransport, TagRecord,
};
use rfid_repro::sim::{run_scenario, Motion, RngStream, ScenarioBuilder};

type FaultyClient = ReaderClient<RetryingTransport<FaultTransport<InMemoryTransport>>>;

/// A retrying client over a noisy chaos transport, all seeds fixed.
fn faulty_client(fault_seed: u64, retry_seed: u64) -> FaultyClient {
    let inner = InMemoryTransport::new(ReaderEmulator::new());
    let chaos = FaultTransport::new(inner, FaultPlan::noisy(), RngStream::new(fault_seed));
    let retrying = RetryingTransport::new(
        chaos,
        BackoffPolicy::immediate(8),
        RngStream::new(retry_seed),
    );
    ReaderClient::new(retrying)
}

fn clean_client() -> ReaderClient<InMemoryTransport> {
    ReaderClient::new(InMemoryTransport::new(ReaderEmulator::new()))
}

fn record(round: usize, slot: usize) -> TagRecord {
    TagRecord {
        epc: format!("AA{round:010X}{slot:012X}"),
        antenna: (slot % 4 + 1) as u8,
        time_s: round as f64 + slot as f64 * 0.01,
    }
}

/// Drives both clients through `rounds` buffered windows with identical
/// feeds and returns (clean sequence, faulty sequence, fault stats).
fn soak(
    rounds: usize,
    per_round: usize,
    fault_seed: u64,
    retry_seed: u64,
) -> (Vec<TagRecord>, Vec<TagRecord>, FaultStats) {
    let mut clean = clean_client();
    let mut faulty = faulty_client(fault_seed, retry_seed);
    clean.start_buffered().expect("clean start");
    faulty
        .start_buffered()
        .expect("faulty start rides out faults");

    let mut clean_seen = Vec::new();
    let mut faulty_seen = Vec::new();
    for round in 0..rounds {
        for slot in 0..per_round {
            let r = record(round, slot);
            clean.transport_mut().emulator_mut().feed(r.clone());
            faulty
                .transport_mut()
                .inner_mut()
                .inner_mut()
                .emulator_mut()
                .feed(r);
        }
        clean_seen.extend(clean.get_tags().expect("clean drain"));
        faulty_seen.extend(faulty.get_tags().expect("faulty drain rides out faults"));
    }
    let stats = faulty.transport_mut().inner_mut().stats();
    (clean_seen, faulty_seen, stats)
}

/// The acceptance criterion: through an injected-fault transport, a
/// retrying client drains the *identical* tag-record sequence a clean
/// transport yields, and the wire counters report the work it took.
#[test]
fn faulty_and_clean_clients_drain_identical_sequences() {
    let before = counters::snapshot();
    let (clean_seen, faulty_seen, stats) = soak(80, 5, 0xFA17, 0xBACC0FF);

    assert_eq!(clean_seen.len(), 400, "clean client saw every feed");
    assert_eq!(
        clean_seen, faulty_seen,
        "retry must make the faulted wire indistinguishable from clean"
    );

    // The soak genuinely exercised the chaos layer: every fault class
    // fired, yet nothing leaked to the application.
    assert!(stats.drops > 0, "{stats:?}");
    assert!(stats.disconnects > 0, "{stats:?}");
    assert!(stats.garbles > 0, "{stats:?}");
    assert!(stats.truncates > 0, "{stats:?}");
    assert!(stats.delays > 0, "{stats:?}");
    assert!(
        stats.total_faults() >= 15,
        "noisy plan should fault ~30% of ~110+ exchanges: {stats:?}"
    );

    // Wire counters report the recovery work. They are process-global
    // (other tests may add to them concurrently), so bound from below
    // by this soak's own per-instance stats.
    let delta = counters::snapshot().since(&before);
    let non_delay_faults = stats.total_faults() - stats.delays;
    assert!(
        delta.retries >= non_delay_faults,
        "every injected drop/disconnect/garble/truncate costs a retry: \
         {delta:?} vs {stats:?}"
    );
    assert!(
        delta.timeouts >= stats.drops,
        "every injected drop surfaces as a timeout: {delta:?} vs {stats:?}"
    );
    assert!(
        delta.faults_injected >= stats.total_faults(),
        "injected faults are tallied globally: {delta:?} vs {stats:?}"
    );
    assert!(
        delta.malformed_frames >= stats.garbles + stats.truncates,
        "garbled/truncated frames are tallied: {delta:?} vs {stats:?}"
    );
    assert!(
        delta.requests >= 80 + non_delay_faults,
        "each attempt counts as a request: {delta:?}"
    );
}

/// The fault schedule and the recovery are seed-deterministic: same
/// seeds replay bit-identically, different seeds fault differently.
#[test]
fn soak_replays_bit_identically_from_its_seeds() {
    let (clean_a, faulty_a, stats_a) = soak(15, 6, 77, 78);
    let (clean_b, faulty_b, stats_b) = soak(15, 6, 77, 78);
    assert_eq!(clean_a, clean_b);
    assert_eq!(faulty_a, faulty_b);
    assert_eq!(stats_a, stats_b, "same seeds, same fault schedule");

    let (_, faulty_c, stats_c) = soak(15, 6, 79, 78);
    assert_ne!(stats_a, stats_c, "different seed, different schedule");
    assert_eq!(
        faulty_a, faulty_c,
        "...but the drained sequence still matches"
    );
}

/// End-to-end with the paper's pipeline: reads from a simulated portal
/// pass, fed through the emulated reader, drain identically through a
/// clean and a chaos wire.
#[test]
fn simulated_portal_pass_survives_the_faulted_wire() {
    let facing = Rotation::between(Vec3::Y, -Vec3::Y).expect("antiparallel");
    let scenario = ScenarioBuilder::new()
        .duration_s(4.0)
        .portal_reader(Pose::from_translation(Vec3::new(0.0, 0.0, 1.0)), 2)
        .free_tag(Motion::linear(
            Pose::new(Vec3::new(-2.0, 1.0, 1.0), facing),
            Vec3::new(1.0, 0.0, 0.0),
            0.0,
            4.0,
        ))
        .build();
    let output = run_scenario(&scenario, 11);
    assert!(!output.reads.is_empty(), "portal pass must produce reads");

    let mut clean = clean_client();
    let mut faulty = faulty_client(0xC0FFEE, 0xD1CE);
    clean.start_buffered().expect("clean start");
    faulty.start_buffered().expect("faulty start");
    clean
        .transport_mut()
        .emulator_mut()
        .feed_simulation(&output);
    faulty
        .transport_mut()
        .inner_mut()
        .inner_mut()
        .emulator_mut()
        .feed_simulation(&output);

    let clean_records = clean.get_tags().expect("clean drain");
    let faulty_records = faulty.get_tags().expect("faulty drain");
    assert_eq!(clean_records.len(), output.reads.len());
    assert_eq!(clean_records, faulty_records);
}
