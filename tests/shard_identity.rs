//! Sharded ≡ serial: property tests pinning the EPC-partitioned
//! parallel data plane to the K=1 pipeline, bit-identically, for
//! arbitrary shard counts, event chunkings, and watermark schedules.
//!
//! `rfid_track::stream::shard` promises that running K instances of a
//! watermark-preserving operator chain over an object-partitioned
//! stream and k-way-merging the egress releases exactly the sequence
//! the single-instance chain releases. These tests are that proof, for
//! the real tracker chain (`ObservationStream → LocationTracker`), for
//! the non-preserving sighting chain, and for the shard-boundary edge
//! cases (duplicate timestamps straddling shards, empty shards, idle
//! shards under watermark advance, finish ordering).

use proptest::prelude::*;
use rfid_gen2::Epc96;
use rfid_sim::ReadEvent;
use rfid_track::stream::{
    ObservationStream, Operator, ShardCounters, ShardExecutor, ShardInput, ShardedChain,
    SightingStream, ZoneTransition,
};
use rfid_track::{LocationTracker, ObjectRegistry, Site};

/// A streaming drive plan: `(chunk_len, watermark_frac)` pairs, exactly
/// the schedule `tests/stream_equivalence.rs` drives single chains with.
type Plan = Vec<(usize, f64)>;

fn plan_strategy() -> impl Strategy<Value = Plan> {
    proptest::collection::vec((1usize..4, 0.0f64..=1.0), 1..24)
}

/// Two objects with two tags each (EPCs 1-4); EPC 5 is a foreign tag.
fn registry() -> ObjectRegistry {
    let mut reg = ObjectRegistry::new();
    for obj in 0..2u128 {
        let handle = reg.register(format!("obj{obj}"));
        reg.attach_tag(handle, Epc96::from_u128(obj * 2 + 1));
        reg.attach_tag(handle, Epc96::from_u128(obj * 2 + 2));
    }
    reg
}

/// Raw reads on the quarter-second grid (sorted, frequent exact ties);
/// tag index 4 is the foreign EPC.
fn reads_strategy() -> impl Strategy<Value = Vec<ReadEvent>> {
    proptest::collection::vec((0u32..240, 0usize..5, 0usize..2, 0usize..2), 0..40).prop_map(|raw| {
        let mut reads: Vec<ReadEvent> = raw
            .into_iter()
            .map(|(t, tag, antenna, reader)| ReadEvent {
                time_s: f64::from(t) * 0.25,
                reader,
                antenna,
                tag,
                epc: Epc96::from_u128(tag as u128 + 1),
            })
            .collect();
        reads.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("grid times are finite")
        });
        reads
    })
}

/// A site whose portals cover some but not all (reader, antenna) pairs.
fn site() -> Site {
    let mut site = Site::new();
    let dock = site.add_zone("dock");
    let aisle = site.add_zone("aisle");
    site.assign_portal(0, 0, dock);
    site.assign_portal(0, 1, aisle);
    site.assign_portal(1, 0, aisle);
    site
}

/// Renders time-sorted reads plus a drive plan into the interleaved
/// event/watermark input stream the executor consumes. Leftover events
/// (plan exhausted) arrive unwatermarked, like a producer going quiet.
fn shard_stream(reads: &[ReadEvent], plan: &Plan) -> Vec<ShardInput<ReadEvent>> {
    let mut inputs = Vec::new();
    let mut idx = 0;
    for &(len, frac) in plan {
        if idx >= reads.len() {
            break;
        }
        let end = (idx + len).min(reads.len());
        inputs.extend(reads[idx..end].iter().map(|r| ShardInput::Event(*r)));
        idx = end;
        if idx > 0 && idx < reads.len() {
            let last = reads[idx - 1].time_s;
            let next = reads[idx].time_s;
            inputs.push(ShardInput::Watermark(last + (next - last) * frac));
        }
    }
    inputs.extend(reads[idx..].iter().map(|r| ShardInput::Event(*r)));
    inputs
}

/// The partition key the site server uses: the object behind the EPC.
fn object_key(registry: &ObjectRegistry) -> impl Fn(&ReadEvent) -> u64 + '_ {
    |read| {
        registry
            .object_of(read.epc)
            .map_or(0, |object| object.index() as u64)
    }
}

/// Runs the tracker chain through the executor at shard count `k`.
fn run_tracker_chain(
    site: &Site,
    registry: &ObjectRegistry,
    inputs: &[ShardInput<ReadEvent>],
    k: usize,
) -> (Vec<ZoneTransition>, Vec<ShardCounters>) {
    ShardExecutor::with_shards(k).run(
        inputs.iter().cloned(),
        |_| ObservationStream::new(site, registry).then(LocationTracker::new(5.0)),
        object_key(registry),
        |transition: &ZoneTransition| transition.object.index() as u64,
    )
}

proptest! {
    /// The headline identity: the threaded, EPC-partitioned tracker
    /// chain releases exactly the K=1 sequence for every shard count,
    /// chunking, and watermark schedule.
    #[test]
    fn sharded_tracker_chain_is_bit_identical_to_serial(
        reads in reads_strategy(),
        plan in plan_strategy(),
        k in 2usize..=8,
    ) {
        let site = site();
        let reg = registry();
        let inputs = shard_stream(&reads, &plan);
        let (serial, serial_counters) = run_tracker_chain(&site, &reg, &inputs, 1);
        let (sharded, counters) = run_tracker_chain(&site, &reg, &inputs, k);
        prop_assert_eq!(&sharded, &serial, "k = {}", k);
        prop_assert_eq!(counters.len(), k);
        // Routing is conservative: every event lands on exactly one shard.
        let routed: u64 = counters.iter().map(|c| c.events_routed).sum();
        let serial_routed: u64 = serial_counters.iter().map(|c| c.events_routed).sum();
        prop_assert_eq!(routed, serial_routed);
    }

    /// No data is lost versus the unsharded chain: the K=1 release
    /// order is the plain chain's output stably re-sorted into the
    /// canonical `(time, object)` merge order.
    #[test]
    fn serial_shard_plane_is_the_canonical_sort_of_the_plain_chain(
        reads in reads_strategy(),
        plan in plan_strategy(),
    ) {
        let site = site();
        let reg = registry();
        let inputs = shard_stream(&reads, &plan);
        let (serial, _) = run_tracker_chain(&site, &reg, &inputs, 1);

        let mut chain = ObservationStream::new(&site, &reg).then(LocationTracker::new(5.0));
        let mut plain = Vec::new();
        for input in &inputs {
            match input {
                ShardInput::Event(read) => plain.extend(chain.push(*read)),
                ShardInput::Watermark(t) => plain.extend(chain.advance_watermark(*t)),
            }
        }
        plain.extend(chain.finish());
        plain.sort_by(|a, b| {
            a.time_s
                .partial_cmp(&b.time_s)
                .expect("grid times are finite")
                .then_with(|| a.object.index().cmp(&b.object.index()))
        });
        prop_assert_eq!(serial, plain);
    }

    /// The non-preserving sighting chain stays deterministic under
    /// sharding: nothing releases before finish (lane watermarks never
    /// advance), but the finished sequence is still the K=1 sequence.
    #[test]
    fn sharded_sighting_chain_is_bit_identical_to_serial(
        reads in reads_strategy(),
        plan in plan_strategy(),
        k in 2usize..=8,
        gap in 0.1f64..5.0,
    ) {
        let reg = registry();
        let inputs = shard_stream(&reads, &plan);
        let run = |shards: usize| {
            ShardExecutor::with_shards(shards).run(
                inputs.iter().cloned(),
                |_| SightingStream::new(&reg, gap),
                object_key(&reg),
                |sighting: &rfid_track::Sighting| sighting.object.index() as u64,
            )
        };
        let (serial, _) = run(1);
        let (sharded, _) = run(k);
        prop_assert_eq!(sharded, serial, "k = {}", k);
    }
}

/// Reads that put two objects at the same instant on different shards:
/// the duplicate timestamp must straddle the shard boundary and still
/// come out in the canonical `(time, order)` sequence.
fn straddling_reads() -> Vec<ReadEvent> {
    let read = |time_s: f64, tag: usize, reader: usize| ReadEvent {
        time_s,
        reader,
        antenna: 0,
        tag,
        epc: Epc96::from_u128(tag as u128 + 1),
    };
    vec![
        read(1.0, 0, 0), // object 0 at dock
        read(1.0, 2, 1), // object 1 at aisle, same instant
        read(2.0, 2, 0), // object 1 at dock
        read(2.0, 0, 1), // object 0 at aisle, same instant
        read(3.0, 0, 0),
        read(3.0, 2, 1),
    ]
}

#[test]
fn duplicate_timestamps_straddling_shards_keep_canonical_order() {
    let site = site();
    let reg = registry();
    let reads = straddling_reads();
    let mut inputs: Vec<ShardInput<ReadEvent>> =
        reads.iter().map(|r| ShardInput::Event(*r)).collect();
    inputs.insert(2, ShardInput::Watermark(1.5));
    inputs.insert(5, ShardInput::Watermark(2.5));
    for k in [2, 4, 8] {
        let (serial, _) = run_tracker_chain(&site, &reg, &inputs, 1);
        let (sharded, _) = run_tracker_chain(&site, &reg, &inputs, k);
        assert_eq!(sharded, serial, "k = {k}");
        // Ties released in order-key (object index) order, not arrival.
        let times: Vec<f64> = serial.iter().map(|t| t.time_s).collect();
        assert!(
            times.windows(2).all(|w| w[0] <= w[1]),
            "release order is time-sorted"
        );
    }
}

#[test]
fn zero_event_shards_do_not_stall_the_merge() {
    let site = site();
    let reg = registry();
    // Only object 0 is ever read: at K=8 most shards see nothing.
    let reads: Vec<ReadEvent> = (0..6)
        .map(|i| ReadEvent {
            time_s: f64::from(i),
            reader: i as usize % 2,
            antenna: 0,
            tag: 0,
            epc: Epc96::from_u128(1),
        })
        .collect();
    let mut inputs: Vec<ShardInput<ReadEvent>> =
        reads.iter().map(|r| ShardInput::Event(*r)).collect();
    inputs.push(ShardInput::Watermark(10.0));
    let (serial, _) = run_tracker_chain(&site, &reg, &inputs, 1);
    let (sharded, counters) = run_tracker_chain(&site, &reg, &inputs, 8);
    assert_eq!(sharded, serial);
    assert!(!serial.is_empty(), "the object does move between zones");
    let lanes_used = counters.iter().filter(|c| c.events_routed > 0).count();
    assert_eq!(lanes_used, 1, "one object routes to exactly one shard");
    // Idle shards still forwarded every watermark — that is what lets
    // the merge release without them.
    assert!(counters.iter().all(|c| c.watermarks_forwarded > 0));
}

#[test]
fn watermark_advance_with_idle_shard_releases_early() {
    // Drive the ShardedChain (the serial reference plane) directly as
    // an Operator: a watermark must release everything below it even
    // though most lanes hold no events at all.
    let site = site();
    let reg = registry();
    let mut chain = ShardedChain::new(
        4,
        |_| ObservationStream::new(&site, &reg).then(LocationTracker::new(5.0)),
        object_key(&reg),
        |transition: &ZoneTransition| transition.object.index() as u64,
    );
    let read = |time_s: f64, reader: usize| ReadEvent {
        time_s,
        reader,
        antenna: 0,
        tag: 0,
        epc: Epc96::from_u128(1),
    };
    assert!(chain.push(read(1.0, 0)).is_empty(), "held until watermark");
    assert!(chain.push(read(2.0, 1)).is_empty());
    let released = chain.advance_watermark(1.5);
    assert_eq!(released.len(), 1, "t=1.0 is below the floor, t=2.0 is not");
    assert_eq!(released[0].time_s, 1.0);
    let rest = chain.finish();
    assert_eq!(rest.len(), 1);
    assert_eq!(rest[0].time_s, 2.0);
}

#[test]
fn finish_flushes_unwatermarked_events_in_canonical_order() {
    // No watermark ever arrives (a producer that detaches abruptly):
    // finish alone must drain every lane and still emit the K=1 order.
    let site = site();
    let reg = registry();
    let reads = straddling_reads();
    let inputs: Vec<ShardInput<ReadEvent>> = reads.iter().map(|r| ShardInput::Event(*r)).collect();
    let (serial, _) = run_tracker_chain(&site, &reg, &inputs, 1);
    for k in [2, 4, 8] {
        let (sharded, counters) = run_tracker_chain(&site, &reg, &inputs, k);
        assert_eq!(sharded, serial, "k = {k}");
        let routed: u64 = counters.iter().map(|c| c.events_routed).sum();
        assert_eq!(routed, reads.len() as u64);
    }
    assert!(!serial.is_empty());
}
