#!/usr/bin/env bash
# Records a performance snapshot as JSON: the memoized hot path vs the
# unmemoized reference (moving cart pass + static read range), the
# streaming operator chains, the sharded data plane's K ∈ {1,2,4,8}
# scaling curve, and the site-server ingest/query load section.
#
#   scripts/bench-snapshot.sh                  # writes BENCH_<date>.json
#   scripts/bench-snapshot.sh out.json         # explicit output path
#   scripts/bench-snapshot.sh out.json --smoke # tiny trial counts (CI)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_$(date +%Y-%m-%d).json}"
shift || true
cargo run --release -q -p rfid-bench --bin bench_snapshot -- "$out" "$@"
