#!/usr/bin/env bash
# The workspace CI gate: static-analysis audit, formatting, lints
# (warnings denied), release build, and the full test suite. Run from
# anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

# Stage 1: the in-repo audit gate — token lints plus the syntax-aware
# concurrency and tier-contract passes. Its exit code is the finding
# count, so any determinism, robustness, or lock-discipline violation
# fails CI before a single crate compiles; the grep pins the literal
# zero-findings summary so a suppressed-by-baseline run can never pass
# silently (CI runs without `--baseline` on purpose). The allow list is
# printed so suppressions stay visible in every CI log (each carries a
# mandatory reason; the audit's own test suite fails on unused ones).
audit_out="$(mktemp)"
cargo run -q -p rfid-audit | tee "$audit_out"
grep -q "audit: 0 finding(s)" "$audit_out"
rm -f "$audit_out"
cargo run -q -p rfid-audit -- --list-allows

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo build --release --examples
cargo test --workspace -q

# Drive the runnable demos end-to-end under a wall-clock budget:
# `quickstart` is the front-door experience, and `reader_emulation`
# exercises the full streaming data plane (live TCP sessions through the
# wire adapter and reorder buffer into the location tracker, asserting
# the streamed zone history matches batch). A hang or panic in either
# fails the gate instead of wedging the runner.
timeout 120 cargo run --release -q --example quickstart >/dev/null
timeout 120 cargo run --release -q --example reader_emulation >/dev/null

# Boot the site tracking daemon end to end: a live server, two portal
# sessions dialing in over TCP, a query client, and a graceful drain.
# The run asserts the drained tracker is bit-identical to a batch
# replay; the greps pin the proof lines so a silent downgrade of the
# check fails CI. `timeout` guards against shutdown regressions that
# would otherwise wedge the runner.
site_out="$(mktemp)"
timeout 120 cargo run --release -q -p rfid-site-server -- \
    --self-drive --portals 2 --tags 4 --steps 30 | tee "$site_out"
grep -q "matches batch replay" "$site_out"
grep -q "graceful shutdown complete" "$site_out"
rm -f "$site_out"

# The sharded-plane identity suite under its own budget: these
# proptests prove the EPC-partitioned parallel chains bit-identical to
# K=1 for arbitrary shard counts, chunkings, and watermark schedules —
# a deadlocked merge would otherwise wedge the runner.
timeout 120 cargo test -q --test shard_identity

# The durable-store recovery suites under their own budget: crash
# recovery (torn tails, flipped checksum bytes, deleted segments) must
# be a typed error or a bit-exact prefix — never a panic or a hang on
# hostile segment files — and a daemon restarted on a store directory
# must replay to the exact live state.
timeout 120 cargo test -q -p rfid-track --test store_recovery
timeout 120 cargo test -q -p rfid-site-server --test store_replay

# Re-run the wire-path failure suites under a hard wall-clock budget.
# These tests exist to prove a stalled or faulted peer cannot hang the
# client; if a hang regression slips back in, `timeout` fails the gate
# fast instead of wedging CI until the runner is killed.
timeout 120 cargo test -q -p rfid-readerapi --test reader_error_paths
timeout 120 cargo test -q --test reader_fault_injection

# The campaign checkpoint recovery suite under its own budget: the
# exhaustive every-byte-offset torn-tail sweep plus resume-equals-
# uninterrupted proofs must stay typed-error-or-bit-exact, never a
# panic or a hang on hostile checkpoint files.
timeout 180 cargo test -q -p rfid-experiments --test campaign_recovery

# Kill-and-resume the campaign runner end to end through the CLI: a
# seeded smoke campaign halted at an instance boundary, resumed from
# its checkpoint, must print the same state digest as a fresh
# uncheckpointed run — the user-facing face of the bit-identical
# recovery contract. `timeout` guards against a resume loop regression.
campaign_dir="$(mktemp -d)"
halted_out="$campaign_dir/halted.txt"
resumed_out="$campaign_dir/resumed.txt"
fresh_out="$campaign_dir/fresh.txt"
timeout 120 cargo run --release -q -p rfid-experiments --bin campaign -- \
    --spec smoke --seed 11 --checkpoint "$campaign_dir/smoke.ckpt" \
    --halt-after 2 | tee "$halted_out"
grep -q "halted after 2 instance(s)" "$halted_out"
timeout 120 cargo run --release -q -p rfid-experiments --bin campaign -- \
    --spec smoke --seed 11 --checkpoint "$campaign_dir/smoke.ckpt" \
    | tee "$resumed_out"
grep -q "resumed from checkpoint at instance 2" "$resumed_out"
timeout 120 cargo run --release -q -p rfid-experiments --bin campaign -- \
    --spec smoke --seed 11 | tee "$fresh_out"
resumed_digest="$(grep "state digest" "$resumed_out")"
fresh_digest="$(grep "state digest" "$fresh_out")"
test -n "$resumed_digest"
test "$resumed_digest" = "$fresh_digest"
rm -rf "$campaign_dir"

# Smoke the benchmark snapshot tool: it must run, assert the memoized
# and reference paths bit-identical (and the campaign's streaming fold
# identical to batch, kill+resume identical to uninterrupted), and emit
# parseable JSON.
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
scripts/bench-snapshot.sh "$smoke_out" --smoke
grep -q '"speedup"' "$smoke_out"
grep -q '"events_per_sec"' "$smoke_out"
grep -q '"site_server"' "$smoke_out"
grep -q '"sharded_streaming"' "$smoke_out"
grep -q '"ingest_batch_speedup"' "$smoke_out"
grep -q '"store"' "$smoke_out"
grep -q '"append_events_per_sec"' "$smoke_out"
grep -q '"fleet_campaign"' "$smoke_out"
grep -q '"objects_per_sec"' "$smoke_out"
grep -q '"peak_accumulator_bytes"' "$smoke_out"
grep -q '"streaming_matches_batch": true' "$smoke_out"
grep -q '"resume_digest_matches": true' "$smoke_out"
