#!/usr/bin/env bash
# The workspace CI gate: formatting, lints (warnings denied), release
# build, and the full test suite. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --workspace --release
cargo test --workspace -q

# Re-run the wire-path failure suites under a hard wall-clock budget.
# These tests exist to prove a stalled or faulted peer cannot hang the
# client; if a hang regression slips back in, `timeout` fails the gate
# fast instead of wedging CI until the runner is killed.
timeout 120 cargo test -q -p rfid-readerapi --test reader_error_paths
timeout 120 cargo test -q --test reader_fault_injection

# Smoke the benchmark snapshot tool: it must run, assert the memoized
# and reference paths bit-identical, and emit parseable JSON.
smoke_out="$(mktemp)"
trap 'rm -f "$smoke_out"' EXIT
scripts/bench-snapshot.sh "$smoke_out" --smoke
grep -q '"speedup"' "$smoke_out"
